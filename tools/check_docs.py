"""Paper-to-code documentation checker.

Validates the pointers in ``docs/architecture.md`` and ``README.md`` so
the documentation layer cannot rot silently:

1. every backticked dotted path starting with ``repro.`` must import (as
   a module, or as an attribute of its parent module);
2. every backticked repo-relative file/directory reference
   (``src/...``, ``tests/...``, ``benchmarks/...``, ``examples/...``,
   ``docs/...``, ``tools/...``) must exist;
3. every package under ``src/repro`` must appear in
   ``docs/architecture.md`` at least once (the paper-to-code map must be
   total).

Run from the repo root (CI docs job)::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means every pointer resolves; failures are listed one per
line.  ``tests/test_docs.py`` runs the same checks in the tier-1 suite.
"""

from __future__ import annotations

import importlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_FILES = ("docs/architecture.md", "README.md")

#: Backticked dotted module/attribute path, e.g. `repro.engine.health`.
MODULE_RE = re.compile(r"`(repro(?:\.\w+)+)`")
#: Backticked repo-relative path, e.g. `benchmarks/bench_robustness.py`.
PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs|tools)/[\w./-]+)`"
)
#: Documented paths that are *generated* by running the benches and are
#: legitimately absent from a clean checkout.
GENERATED_PATHS = frozenset({"benchmarks/output/"})


def _read(relative: str) -> str:
    with open(os.path.join(REPO_ROOT, relative)) as handle:
        return handle.read()


def check_module_references(doc_files=DOC_FILES) -> list[str]:
    """Import every backticked ``repro.*`` dotted path; return failures."""
    failures = []
    for doc in doc_files:
        text = _read(doc)
        for dotted in sorted(set(MODULE_RE.findall(text))):
            if not _resolves(dotted):
                failures.append(f"{doc}: `{dotted}` does not import")
    return failures


def _resolves(dotted: str) -> bool:
    try:
        importlib.import_module(dotted)
        return True
    except ImportError:
        pass
    # Maybe a module attribute (repro.engine.FrameServer).
    parent, _, attribute = dotted.rpartition(".")
    try:
        module = importlib.import_module(parent)
    except ImportError:
        return False
    return hasattr(module, attribute)


def check_path_references(doc_files=DOC_FILES) -> list[str]:
    """Verify every backticked repo-relative path exists; return failures."""
    failures = []
    for doc in doc_files:
        text = _read(doc)
        for path in sorted(set(PATH_RE.findall(text))):
            if path in GENERATED_PATHS:
                continue
            if not os.path.exists(os.path.join(REPO_ROOT, path.rstrip("/"))):
                failures.append(f"{doc}: `{path}` does not exist")
    return failures


def check_package_coverage(doc: str = "docs/architecture.md") -> list[str]:
    """Every ``src/repro`` package needs at least one row in the map."""
    text = _read(doc)
    mentioned = set(MODULE_RE.findall(text))
    mentioned_packages = {dotted.split(".")[1] for dotted in mentioned}
    failures = []
    packages_dir = os.path.join(REPO_ROOT, "src", "repro")
    for name in sorted(os.listdir(packages_dir)):
        package_init = os.path.join(packages_dir, name, "__init__.py")
        if not os.path.isfile(package_init):
            continue
        if name not in mentioned_packages:
            failures.append(
                f"{doc}: package `repro.{name}` has no paper-to-code row"
            )
    return failures


def run_all_checks() -> list[str]:
    """Every check, concatenated failure list (empty = docs are sound)."""
    return (
        check_module_references()
        + check_path_references()
        + check_package_coverage()
    )


def main() -> int:
    failures = run_all_checks()
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"{len(failures)} broken documentation pointer(s)")
        return 1
    print("docs check: every module/path pointer resolves")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    sys.exit(main())
