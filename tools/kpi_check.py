"""KPI gate over the ``BENCH_*.json`` perf trajectory.

PR 5's :func:`repro.analysis.perf.write_bench` guard stops a CI smoke run
from *overwriting* a full-mode trajectory entry; this tool extends the
protection from "don't overwrite" to "don't regress": it compares each
freshly written ``BENCH_*.json`` in the working tree against the
committed trajectory (``git show <ref>:<path>``) and fails when a KPI
falls beyond its per-metric tolerance.

Two kinds of checks:

1. **invariants** — exact claims a payload must carry regardless of host
   speed (bit-identity flags, drop-free streams).  Checked on the fresh
   payload in full *and* quick mode — the smoke benches assert the same
   claims, so a quick payload that breaks one is a real regression.
2. **trajectory comparisons** — wall-clock-derived KPIs (speedups, FPS,
   ratios).  Compared only when *both* payloads are full-mode
   (``quick: false``): smoke numbers are noise by design.  A fresh value
   may fall below the baseline by up to ``rel_tol`` (relative) plus
   ``abs_slack`` (absolute) before the gate trips — timings are
   environment-dependent, so the tolerances are deliberately generous;
   the gate catches collapses, not jitter.  Some KPIs only mean anything
   on capable hosts (``min_cores``) — e.g. the process-backend fan-out
   speedup is honest IPC overhead on a 1-core container.

Run from the repo root (CI wires it after the bench smoke jobs)::

    PYTHONPATH=src python tools/kpi_check.py [--ref HEAD] [paths...]

Exit status 0 means every gated KPI holds; failures are listed one per
line.  A bench file with no committed baseline passes (first entry of a
new trajectory).  ``tests/test_tools_kpi.py`` unit-tests the comparison
logic.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Any

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@dataclass(frozen=True)
class Kpi:
    """One gated metric inside a bench payload.

    ``path`` is a dotted lookup into the payload.  ``kind`` is either
    ``"invariant_true"`` (the fresh value must be exactly ``True``) or
    ``"higher"`` (the fresh value must not fall below the baseline by
    more than the tolerances).
    """

    path: str
    kind: str = "higher"
    #: Allowed relative drop vs the baseline (0.5 = may halve).
    rel_tol: float = 0.5
    #: Allowed absolute drop on top of ``rel_tol`` (for small ratios).
    abs_slack: float = 0.0
    #: Compare only when both payloads report at least this many cores
    #: (``cores`` key; payloads without one always compare).
    min_cores: int = 0


#: Gated KPIs per ``bench`` payload name.
KPIS: dict[str, tuple[Kpi, ...]] = {
    "program_latency": (
        Kpi("cold_program.bit_identical", kind="invariant_true"),
        Kpi("cold_program.speedup"),
        Kpi("warm_install.speedup_vs_cold"),
        Kpi("engine.wall_clock_fps"),
    ),
    "warm_path": (
        Kpi("engine_limited.bit_identical", kind="invariant_true"),
        Kpi("compute_bound.bit_identical", kind="invariant_true"),
        Kpi("speedup_vs_baseline"),
        Kpi("wall_clock_fps"),
    ),
    "degraded_serving": (
        # Recovery is a simulated-time ratio, not a wall-clock number:
        # hold it tight.
        Kpi("recovery_ratio", rel_tol=0.05),
    ),
    "serving_policies": (
        # The SLO-vs-greedy deadline-hit gain is a small simulated-time
        # difference; gate on absolute slack rather than a ratio.
        Kpi("slo_vs_greedy_hit_gain", rel_tol=0.0, abs_slack=0.02),
    ),
    "parallel": (
        Kpi("zoo_warmup.bit_identical", kind="invariant_true"),
        Kpi("capacity_grid.bit_identical", kind="invariant_true"),
        # Schema 2 (persistent pools / shm transport / program store):
        # every alternative path must stay byte-identical, and a warm
        # store must never silently start re-programming.
        Kpi("pool_reuse.bit_identical", kind="invariant_true"),
        Kpi("shm_transport.bit_identical", kind="invariant_true"),
        Kpi("warm_store.bit_identical", kind="invariant_true"),
        Kpi("warm_store.warm_programs_zero", kind="invariant_true"),
        Kpi("warm_store.restored_bit_identical", kind="invariant_true"),
        # Fan-out speedups are meaningless below 4 cores (IPC overhead).
        Kpi("zoo_warmup.speedup", min_cores=4),
        Kpi("capacity_grid.speedup", min_cores=4),
        Kpi("pool_reuse.speedup", min_cores=4),
        Kpi("shm_transport.speedup", min_cores=4),
        # Store restore vs mapping chain is not a parallelism claim:
        # gate it on every host.
        Kpi("warm_store.speedup"),
    ),
    "chaos": (
        # The resilience layer's hard contracts: chaos replays are
        # seed-deterministic, and disabled failover leaves the default
        # serving path byte-identical to the golden.
        Kpi("default_bit_identical", kind="invariant_true"),
        Kpi("deterministic", kind="invariant_true"),
        # Simulated-time SLO outcomes, not wall-clock: hold them tight.
        Kpi("failover_interactive_hit_rate", rel_tol=0.02),
        Kpi("failover_availability", rel_tol=0.02),
        Kpi("failover_recovery_ratio", rel_tol=0.05),
    ),
    "controlplane": (
        # The control plane's hard contracts: the scaling-decision audit
        # trail is byte-deterministic, and a 1-shard autoscale-off plane
        # leaves the default serving path byte-identical to the golden.
        Kpi("default_bit_identical", kind="invariant_true"),
        Kpi("deterministic", kind="invariant_true"),
        # Simulated-time outcomes, not wall-clock: hold them tight.
        Kpi("autoscaled_interactive_hit_rate", rel_tol=0.01),
        Kpi("node_seconds_saved_frac", rel_tol=0.10),
    ),
}


def lookup(payload: dict[str, Any], dotted: str) -> Any:
    """Resolve a dotted path inside a payload (``None`` when absent)."""
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _reject_constant(name: str):
    raise ValueError(f"non-JSON constant {name!r}")


def load_strict(text: str) -> dict[str, Any]:
    """Parse a bench payload, rejecting NaN/Infinity constants."""
    return json.loads(text, parse_constant=_reject_constant)


def check_invariants(name: str, fresh: dict[str, Any]) -> list[str]:
    """Exact-claim failures in one fresh payload (any mode)."""
    failures = []
    for kpi in KPIS.get(name, ()):
        if kpi.kind != "invariant_true":
            continue
        value = lookup(fresh, kpi.path)
        if value is not True:
            failures.append(
                f"{name}: invariant {kpi.path} must be true, got {value!r}"
            )
    return failures


def compare_payloads(
    name: str, fresh: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Trajectory-regression failures of ``fresh`` against ``baseline``."""
    failures = []
    if fresh.get("quick", False) or baseline.get("quick", False):
        return failures  # smoke numbers are noise by design
    for kpi in KPIS.get(name, ()):
        if kpi.kind != "higher":
            continue
        if kpi.min_cores and (
            int(fresh.get("cores", 0)) < kpi.min_cores
            or int(baseline.get("cores", 0)) < kpi.min_cores
        ):
            continue
        fresh_value = lookup(fresh, kpi.path)
        base_value = lookup(baseline, kpi.path)
        if not isinstance(fresh_value, (int, float)) or not isinstance(
            base_value, (int, float)
        ):
            continue  # metric absent/null in one payload: nothing to gate
        floor = base_value * (1.0 - kpi.rel_tol) - kpi.abs_slack
        if fresh_value < floor:
            failures.append(
                f"{name}: {kpi.path} regressed to {fresh_value:.4g} "
                f"(baseline {base_value:.4g}, floor {floor:.4g})"
            )
    return failures


def core_gated_skips(
    name: str, fresh: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Explicit notes for KPIs a ``min_cores`` gate excused on this host.

    :func:`compare_payloads` silently passes over core-gated KPIs on
    small hosts (a 1-core container's fan-out "speedup" is honest IPC
    overhead, not a regression) — but a silent skip reads as "gated and
    held" in CI logs.  This mirrors the exact skip condition and returns
    one note per excused KPI so the CLI can print it as ``SKIP``.
    """
    skips = []
    if fresh.get("quick", False) or baseline.get("quick", False):
        return skips  # nothing was compared at all; core gates never ran
    for kpi in KPIS.get(name, ()):
        if kpi.kind != "higher" or not kpi.min_cores:
            continue
        fresh_cores = int(fresh.get("cores", 0))
        base_cores = int(baseline.get("cores", 0))
        if fresh_cores < kpi.min_cores or base_cores < kpi.min_cores:
            skips.append(
                f"{name}: {kpi.path} not gated (needs >= {kpi.min_cores} "
                f"cores; fresh host has {fresh_cores}, baseline "
                f"{base_cores})"
            )
    return skips


def baseline_text(ref: str, relpath: str) -> str | None:
    """The committed payload at ``ref`` (``None`` when absent)."""
    try:
        completed = subprocess.run(
            ["git", "show", f"{ref}:{relpath}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError:
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def check_file(
    path: str, ref: str, skips: list[str] | None = None
) -> list[str]:
    """All gate failures for one bench file in the working tree.

    When ``skips`` is given, notes for every core-gated KPI the host was
    too small to gate are appended to it (see :func:`core_gated_skips`).
    """
    relpath = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    with open(path) as handle:
        try:
            fresh = load_strict(handle.read())
        except ValueError as error:
            return [f"{relpath}: not strict JSON ({error})"]
    name = fresh.get("bench", "")
    if name not in KPIS:
        return []  # unknown bench: nothing gated yet
    failures = check_invariants(name, fresh)
    committed = baseline_text(ref, relpath)
    if committed is not None:
        try:
            baseline = load_strict(committed)
        except ValueError:
            baseline = None  # legacy NaN payload: no baseline to gate on
        if isinstance(baseline, dict):
            failures.extend(compare_payloads(name, fresh, baseline))
            if skips is not None:
                skips.extend(core_gated_skips(name, fresh, baseline))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate BENCH_*.json KPIs against the committed trajectory"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="bench files to gate (default: BENCH_*.json at the repo root)",
    )
    parser.add_argument(
        "--ref",
        default="HEAD",
        help="git ref holding the committed trajectory (default: HEAD)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or sorted(
        glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
    )
    failures = []
    skips: list[str] = []
    for path in paths:
        failures.extend(check_file(path, args.ref, skips))
        print(f"{os.path.relpath(path, REPO_ROOT)}: checked")
    for note in skips:
        print(f"SKIP {note}")
    for failure in failures:
        print(f"FAIL {failure}")
    if failures:
        print(f"{len(failures)} KPI regression(s) beyond tolerance")
        return 1
    print("kpi check: trajectory holds within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
