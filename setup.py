"""Setup shim for environments without PEP 517 build isolation.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on offline machines that lack the
``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OISA: Optical In-Sensor Accelerator for Efficient Visual Computing "
        "(DATE 2024) — full-system reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
