"""The paper's Fig. 7 flow: QAT training + optical first layer inference.

Trains a LeNet with a ternary input activation and a 3-bit quantized first
convolution on the MNIST-like synthetic dataset, then evaluates it three
ways:

1. pure software (fake-quantized weights, no hardware effects),
2. OISA hardware-in-the-loop (AWC mismatch + MR crosstalk + BPD noise),
3. an *ideal* OPC (no noise sources) as a sanity anchor.

Usage::

    python examples/first_layer_offload.py
"""

from dataclasses import replace

from repro.circuits.awc import AwcDesign
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.datasets import mnist_like
from repro.nn.models import FirstLayerConfig, build_lenet
from repro.nn.optim import SGD, CosineLR
from repro.nn.train import Trainer

WEIGHT_BITS = 3
EPOCHS = 3


def main() -> None:
    dataset = mnist_like(scale=1.0, seed=0)
    print(f"dataset: {dataset.name}, train {dataset.x_train.shape}, "
          f"test {dataset.x_test.shape}")

    model = build_lenet(
        num_classes=dataset.num_classes,
        in_channels=dataset.channels,
        input_size=dataset.image_size,
        first_layer=FirstLayerConfig(weight_bits=WEIGHT_BITS),
        seed=0,
    )
    trainer = Trainer(
        model,
        SGD(model.parameters(), momentum=0.9, weight_decay=1e-4),
        CosineLR(0.05, 5e-4),
        seed=0,
    )
    print(f"training QAT LeNet [{WEIGHT_BITS}:2] for {EPOCHS} epochs ...")
    history = trainer.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=EPOCHS,
        batch_size=64,
        x_val=dataset.x_test,
        y_val=dataset.y_test,
    )
    software = history.val_accuracy[-1]
    print(f"software accuracy (fake-quant): {software * 100:.2f}%")

    # Real behavioral hardware.
    config = OISAConfig().with_weight_bits(WEIGHT_BITS)
    opc = OpticalProcessingCore(config, seed=7)
    pipeline = HardwareFirstLayerPipeline(model, opc)
    hardware = pipeline.evaluate(dataset.x_test, dataset.y_test)
    report = pipeline.weight_error_report()
    print(f"OISA hardware accuracy        : {hardware * 100:.2f}%")
    print(f"  realized-weight rel. error  : {report['relative_error'] * 100:.2f}%")

    # Ideal optics: every noise source disabled.
    ideal_config = replace(
        config,
        awc_design=AwcDesign(
            num_bits=WEIGHT_BITS,
            mismatch_sigma=0.0,
            offset_sigma_a=0.0,
            compression_alpha=0.0,
        ),
    )
    ideal_opc = OpticalProcessingCore(
        ideal_config, seed=7, enable_crosstalk=False, enable_read_noise=False
    )
    ideal_pipeline = HardwareFirstLayerPipeline(model, ideal_opc)
    ideal = ideal_pipeline.evaluate(dataset.x_test, dataset.y_test)
    print(f"ideal-optics accuracy         : {ideal * 100:.2f}%  "
          f"(should match software: {software * 100:.2f}%)")

    print("\nhardware cost of the analog path: "
          f"{(software - hardware) * 100:+.2f} points")


if __name__ == "__main__":
    main()
