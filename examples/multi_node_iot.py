"""The paper's Fig. 2 setting: a multi-node IoT vision network.

Several OISA nodes each capture frames, compute the first CNN layer
in-sensor, and ship the (much smaller, already-convolved) feature maps to a
cloud aggregator — versus the conventional cloud-centric flow where every
node digitises and transmits raw 8-bit frames.

The example quantifies, per node and for the fleet:

* bytes on the wire (raw frames vs first-layer features),
* node-side energy (ADC-based capture vs OISA's ADC-less path),
* sustained frame rates.

Usage::

    python examples/multi_node_iot.py [num_nodes]
"""

import sys

import numpy as np

from repro.circuits.adc_dac import AdcModel
from repro.core.accelerator import OISAAccelerator
from repro.core.config import OISAConfig
from repro.util.tables import format_table

#: Per-byte radio energy for an edge IoT link (BLE/802.15.4 class) [J].
RADIO_ENERGY_PER_BYTE_J = 180e-9


def cloud_centric_node(config: OISAConfig) -> dict:
    """Conventional node: 8-bit ADC per pixel, raw frame to the cloud."""
    adc = AdcModel(bits=8)
    pixels = config.num_pixels * 3  # RGB planes
    capture_j = adc.energy_per_conversion_j() * pixels
    bytes_out = pixels  # 1 byte per pixel
    radio_j = RADIO_ENERGY_PER_BYTE_J * bytes_out
    return {
        "capture_j": capture_j,
        "bytes_out": bytes_out,
        "radio_j": radio_j,
        "total_j": capture_j + radio_j,
    }


def oisa_node(config: OISAConfig, oisa: OISAAccelerator, frame: np.ndarray) -> dict:
    """OISA node: ternary capture, photonic first layer, features out.

    Features are 2x2 average-pooled before transmission (the standard
    conv-pool front of the CNNs the paper evaluates), then packed at
    5 bits per value (4-bit magnitude + sign).
    """
    result = oisa.process_frame(frame)
    features = result.features
    channels, height, width = features.shape
    pooled = features[:, : height // 2 * 2, : width // 2 * 2]
    pooled = pooled.reshape(channels, height // 2, 2, width // 2, 2).mean(axis=(2, 4))
    bytes_out = int(np.ceil(pooled.size * 5 / 8))
    radio_j = RADIO_ENERGY_PER_BYTE_J * bytes_out
    return {
        "capture_j": result.energy.total,
        "bytes_out": bytes_out,
        "radio_j": radio_j,
        "total_j": result.energy.total + radio_j,
        "fps": result.timing.pipelined_fps,
    }


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = OISAConfig()
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(8, 3, 3, 3)) * 0.1

    rows = []
    fleet_oisa_j = 0.0
    fleet_cloud_j = 0.0
    for node in range(num_nodes):
        oisa = OISAAccelerator(config, seed=node)
        oisa.program_conv(weights, stride=2, padding=1)
        frame = rng.uniform(0.0, 1.0, (3, 128, 128))
        oisa.process_frame(frame)  # mapping frame
        edge = oisa_node(config, oisa, frame)
        cloud = cloud_centric_node(config)
        fleet_oisa_j += edge["total_j"]
        fleet_cloud_j += cloud["total_j"]
        rows.append(
            (
                f"node {node}",
                cloud["bytes_out"],
                edge["bytes_out"],
                cloud["total_j"] * 1e6,
                edge["total_j"] * 1e6,
                cloud["total_j"] / edge["total_j"],
            )
        )

    print(
        format_table(
            (
                "node",
                "raw bytes",
                "feature bytes",
                "cloud-centric [uJ/frame]",
                "OISA [uJ/frame]",
                "saving",
            ),
            rows,
            title=f"Multi-node IoT deployment ({num_nodes} nodes, Fig. 2 scenario)",
        )
    )
    print(
        f"\nfleet energy per frame: cloud-centric {fleet_cloud_j * 1e6:.1f} uJ "
        f"vs OISA {fleet_oisa_j * 1e6:.1f} uJ "
        f"({fleet_cloud_j / fleet_oisa_j:.1f}x reduction)"
    )
    print(
        "note: the thing-centric win comes from shipping stride-2 first-layer"
        "\nfeatures instead of raw pixels, and from skipping per-pixel ADCs."
    )


if __name__ == "__main__":
    main()
