"""Design-space exploration over the OISA architecture knobs.

Sweeps the structural parameters Section III discusses — bank count, arm
size, MR quality factor, weight bit-width — and reports their effect on
throughput, efficiency, area and realized-weight fidelity.  This is the
kind of study the paper's in-house simulator exists to support.

Usage::

    python examples/design_space_exploration.py
"""

from dataclasses import replace

import numpy as np

from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel
from repro.core.opc import OpticalProcessingCore
from repro.nn.quant import UniformWeightQuantizer
from repro.photonics.microring import MicroringDesign, MicroringResonator, solve_coupling_for_q
from repro.photonics.wdm import WdmGrid, effective_arm_transmission
from repro.util.tables import format_table


def sweep_banks() -> str:
    """Scale the OPC: throughput and area both track the bank count."""
    rows = []
    for banks in (20, 40, 80, 160):
        config = OISAConfig(num_banks=banks)
        model = OISAEnergyModel(config)
        rows.append(
            (
                banks,
                config.total_mrs,
                model.peak_throughput_ops() / 1e12,
                model.peak_power_w().total,
                model.efficiency_tops_per_watt(),
                model.area_mm2().total,
            )
        )
    return format_table(
        ("banks", "MRs", "TOp/s", "peak W", "TOp/s/W", "area mm^2"),
        rows,
        title="Bank-count sweep (paper design: 80 banks)",
    )


def sweep_q_factor() -> str:
    """Q-factor vs crosstalk: why the paper picks a *low* Q (~5000)."""
    rows = []
    grid = WdmGrid()
    weights = np.linspace(0.15, 0.9, grid.num_channels)
    # A lower-loss ring design unlocks the high-Q corner of the sweep.
    low_loss = MicroringDesign(round_trip_loss_db=0.06)
    for q in (2000, 5000, 10000, 20000):
        coupling = solve_coupling_for_q(q, design=low_loss)
        ring = MicroringResonator(
            MicroringDesign(round_trip_loss_db=0.06, self_coupling=coupling)
        )
        # Low-Q rings have a shallow notch: clip targets to what the
        # device can reach (part of the Q trade-off the paper discusses).
        reachable = np.clip(weights, ring.min_transmission + 1e-6, 1.0)
        effective = effective_arm_transmission(grid, reachable, ring=ring)
        crosstalk = float(np.max(np.abs(effective - reachable) / reachable))
        # Sensitivity: how far a thermal drift of 10 pm moves the weight.
        drift = abs(
            float(ring.lorentzian_transmission(10e-12))
            - float(ring.lorentzian_transmission(0.0))
        )
        rows.append((q, ring.fwhm_m * 1e9, crosstalk * 100, drift))
    return format_table(
        ("Q", "FWHM [nm]", "worst crosstalk [%]", "drift sens. (10 pm)"),
        rows,
        title="\nQ-factor sweep: sharp resonances cut crosstalk but amplify drift",
    )


def sweep_weight_bits() -> str:
    """Weight fidelity vs bit-width: the [4:2] saturation mechanism."""
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(16, 3, 3, 3)) * 0.1
    rows = []
    for bits in (1, 2, 3, 4):
        quantizer = UniformWeightQuantizer(bits)
        quantized = quantizer.quantize(weights)
        quant_err = float(np.sqrt(np.mean((quantized - weights) ** 2)))
        opc = OpticalProcessingCore(OISAConfig().with_weight_bits(bits), seed=3)
        programmed = opc.program(quantized, quantizer.scale(weights))
        hw_err = programmed.weight_error_rms
        total = float(np.sqrt(np.mean((programmed.realized - weights) ** 2)))
        rows.append((f"[{bits}:2]", quant_err, hw_err, total))
    return format_table(
        ("config", "quant RMS err", "hardware RMS err", "total RMS err"),
        rows,
        title=(
            "\nWeight-bit sweep: quantization error falls with bits while the"
            "\nanalog floor stays put — the reason OISA[4:2] stops improving"
        ),
    )


def sweep_arm_size() -> str:
    """Arm size: more MRs per arm host bigger kernels but add crosstalk."""
    rows = []
    for mrs in (6, 8, 10):
        grid = WdmGrid(num_channels=mrs, channel_spacing_m=16e-9 / mrs)
        weights = np.full(mrs, 0.8)
        effective = effective_arm_transmission(grid, weights)
        crosstalk = float(np.max(np.abs(effective - weights) / weights))
        config = OISAConfig(mrs_per_arm=mrs, wdm=grid)
        rows.append(
            (mrs, config.macs_per_arm, config.total_mrs, crosstalk * 100)
        )
    return format_table(
        ("MRs/arm", "MACs/arm", "total MRs", "worst crosstalk [%]"),
        rows,
        title="\nArm-size sweep at fixed FSR (denser arms -> more crosstalk)",
    )


def sweep_registry_platforms() -> str:
    """Cross-platform sweep: every registered platform, one call."""
    from repro.analysis.sweeps import render_platform_sweep, sweep_platforms

    return "\n" + render_platform_sweep(sweep_platforms(bit_configs=((1, 2), (4, 2))))


def main() -> None:
    print(sweep_banks())
    print(sweep_q_factor())
    print(sweep_weight_bits())
    print(sweep_arm_size())
    print(sweep_registry_platforms())


if __name__ == "__main__":
    main()
