"""Regenerate the paper's Table II at full fidelity.

Trains every (dataset, [W:A]) cell with the ``full`` settings preset
(larger synthetic datasets, wider networks, more epochs) and prints the
accuracy table next to the paper's reported rows.  Expect tens of minutes
on a laptop CPU; results are cached in ``.table2_full_cache.json`` so
interrupted runs resume.

For a quick look use the benchmark instead::

    pytest benchmarks/bench_table2_accuracy.py --benchmark-only

Usage::

    python examples/table2_full.py [fast|full]
"""

import sys

from repro.analysis.table2 import build_table2, ordering_checks, render_table2
from repro.sim.accuracy import Table2Settings


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "full"
    if preset == "fast":
        settings = Table2Settings.fast()
        cache = ".table2_fast_cache.json"
    else:
        settings = Table2Settings.full()
        cache = ".table2_full_cache.json"

    print(f"running Table II with the {preset!r} preset "
          f"(epochs={settings.epochs}, scale={settings.dataset_scale}) ...")
    data = build_table2(settings=settings, cache_path=cache)
    print(render_table2(data))

    print("\nqualitative checks (the paper's Table II claims):")
    for name, holds in ordering_checks(data).items():
        print(f"  {name:32s}: {'holds' if holds else 'VIOLATED'}")


if __name__ == "__main__":
    main()
