"""Batched frame serving: multi-tenant streams over simulated OISA nodes.

Two QAT models share a pool of OISA dies; requests alternate between them
mid-stream, exercising the weight-program cache (kernel swaps restore the
mapped weights instead of re-running the AWC chain) and the micro-batched
compute path.  Prints the drop/latency statistics a deployment study needs
plus the host-side serving throughput.

Usage::

    python examples/frame_serving.py [num_nodes]
"""

import sys

import numpy as np

from repro.engine import FrameRequest, FrameServer
from repro.nn.models import build_lenet


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    rng = np.random.default_rng(0)

    server = FrameServer(num_nodes=num_nodes, micro_batch=16, seed=0)
    server.register_model("tenant-a", build_lenet(seed=0))
    server.register_model("tenant-b", build_lenet(seed=1))

    frames = rng.uniform(0.0, 1.0, (96, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "tenant-a" if (i // 24) % 2 == 0 else "tenant-b")
        for i in range(len(frames))
    ]

    print(f"Frame serving on {num_nodes} simulated node(s)")
    for label, fps in (("at budget", 1000.0), ("oversubscribed", 2500.0)):
        report = server.serve(requests, offered_fps=fps)
        print(f"\n{label} ({fps:.0f} FPS offered):")
        print(f"  delivered        : {report.delivered}/{report.stream.frames}")
        print(f"  drop rate        : {report.stream.drop_rate:.3f}")
        print(f"  mean latency     : {report.stream.mean_latency_s * 1e3:.3f} ms")
        print(f"  sustained (sim)  : {report.stream.sustained_fps:.0f} FPS")
        print(f"  host throughput  : {report.wall_clock_fps:.0f} frames/s")
        print(f"  cache hits/misses: {report.cache_hits}/{report.cache_misses}")
        print(f"  frames per node  : {dict(sorted(report.node_frames.items()))}")
        print(f"  payload shipped  : {report.payload_bytes / 1e3:.1f} kB")

    print("\nsteady state: kernel swaps are cache hits, so a second pass")
    print("over the same tenants re-runs no AWC mapping at all.")

    # -- multi-tenant SLOs: the scheduling layer in one comparison -----
    from repro.engine import build_scenario

    scenario = build_scenario(
        "mixed-tenants", frames=120, offered_fps=2600.0, seed=0
    )
    print("\nMulti-tenant SLOs (mixed-tenants scenario, 2600 FPS offered):")
    for policy in ("greedy", "slo"):
        server = FrameServer(
            num_nodes=num_nodes, micro_batch=8, seed=0, policy=policy
        )
        report = server.serve_scenario(scenario)
        interactive = report.slo.classes["interactive"]
        batch = report.slo.classes["batch"]
        print(
            f"  {policy:6s}: interactive hit rate "
            f"{interactive.hit_rate:.3f} (p99 "
            f"{interactive.p99_latency_s * 1e3:.2f} ms) | batch hit rate "
            f"{batch.hit_rate:.3f}, shed {batch.shed}"
        )
    print("the SLO-aware policy queues interactive frames through the")
    print("burst and sheds batch traffic; greedy drops indiscriminately.")


if __name__ == "__main__":
    main()
