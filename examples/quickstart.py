"""Quickstart: program an OISA node and process a frame.

Runs the full sense -> ternary-modulate -> photonic-MAC -> report path on
the paper's default configuration (128x128 imager, 80 banks x 5 arms x 10
MRs) and prints the headline performance counters.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import OISAAccelerator


def main() -> None:
    # A 64-kernel 3x3 first layer, as in the paper's ResNet-18 scenario.
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(64, 3, 3, 3)) * 0.1

    oisa = OISAAccelerator(seed=0)
    programmed = oisa.program_conv(weights, stride=1, padding=1)
    print("programmed first layer onto the OPC")
    print(f"  mapping iterations : {programmed.mapping_iterations}")
    print(f"  realized-weight RMS error: {programmed.weight_error_rms:.5f}")
    print(f"  tuning energy      : {programmed.tuning.energy_j * 1e9:.2f} nJ")

    # Process two frames: the first pays the weight-mapping phase.
    frame = rng.uniform(0.0, 1.0, (3, 128, 128))
    first = oisa.process_frame(frame)
    steady = oisa.process_frame(frame)

    print("\nfirst frame (includes weight mapping):")
    print(f"  energy: {first.energy.total * 1e6:.3f} uJ")
    print("steady-state frame:")
    print(f"  features shape : {steady.features.shape}")
    print(f"  ternary symbols: {np.bincount(steady.symbols.ravel(), minlength=3)}")
    print(f"  energy         : {steady.energy.total * 1e6:.3f} uJ")
    print(f"  sustained FPS  : {steady.timing.pipelined_fps:.0f}")

    print("\nperformance summary:")
    for key, value in oisa.performance_summary().items():
        print(f"  {key:28s}: {value:.6g}")


if __name__ == "__main__":
    main()
