"""Published PIS/PNS/PIP designs — the comparison rows of Table I.

Every row reproduces the paper's Table I verbatim (these are *reported*
numbers from the cited publications, not simulated here); the OISA row is
generated live from our architecture model by
:func:`repro.analysis.table1.build_table1`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiteratureDesign:
    """One row of Table I."""

    key: str
    reference: str
    technology_nm: int | str
    purpose: str
    compute_scheme: str
    has_memory: bool
    has_nvm: bool
    pixel_size_um: float
    array_size: str
    frame_rate_fps: str
    power_mw: str
    efficiency_tops_per_watt: str

    def efficiency_upper(self) -> float:
        """Upper end of the reported TOp/s/W range (for ranking)."""
        text = self.efficiency_tops_per_watt.replace(" ", "")
        part = text.split("-")[-1]
        return float(part)


#: Table I rows for the cited designs (paper's reported values).
LITERATURE_DESIGNS: tuple[LiteratureDesign, ...] = (
    LiteratureDesign(
        key="park_optic_flow",
        reference="[31] Park et al., ISSCC 2014",
        technology_nm=180,
        purpose="2D optic flow est.",
        compute_scheme="row-wise",
        has_memory=True,
        has_nvm=False,
        pixel_size_um=28.8,
        array_size="64x64",
        frame_rate_fps="30",
        power_mw="0.029",
        efficiency_tops_per_watt="0.0041",
    ),
    LiteratureDesign(
        key="hsu_feature_extraction",
        reference="[8] Hsu et al., JSSC 2020",
        technology_nm=180,
        purpose="edge/blur/sharpen/1st-layer CNN",
        compute_scheme="row-wise",
        has_memory=False,
        has_nvm=False,
        pixel_size_um=7.6,
        array_size="128x128",
        frame_rate_fps="480",
        power_mw="sensing: 77 / processing: 91",
        efficiency_tops_per_watt="0.777",
    ),
    LiteratureDesign(
        key="yamazaki_stp",
        reference="[9] Yamazaki et al., ISSCC 2017",
        technology_nm="60/90",
        purpose="spatial-temporal processing",
        compute_scheme="row-wise",
        has_memory=True,
        has_nvm=False,
        pixel_size_um=3.5,
        array_size="1296x976",
        frame_rate_fps="1000",
        power_mw="sensing: 230 / processing: 363",
        efficiency_tops_per_watt="0.386",
    ),
    LiteratureDesign(
        key="macsen",
        reference="[2] Xu et al. (MACSEN), TCAS-II 2020",
        technology_nm=180,
        purpose="1st-layer BNN",
        compute_scheme="entire-array",
        has_memory=True,
        has_nvm=False,
        pixel_size_um=110.0,
        array_size="32x32",
        frame_rate_fps="1000",
        power_mw="0.0121",
        efficiency_tops_per_watt="1.32",
    ),
    LiteratureDesign(
        key="scamp_simd",
        reference="[32] Carey et al., VLSI 2013",
        technology_nm=180,
        purpose="edge/thresholding median filter",
        compute_scheme="row-wise",
        has_memory=True,
        has_nvm=False,
        pixel_size_um=32.6,
        array_size="256x256",
        frame_rate_fps="100000",
        power_mw="1230",
        efficiency_tops_per_watt="0.535",
    ),
    LiteratureDesign(
        key="pisa",
        reference="[3] Angizi et al. (PISA), TETC 2023",
        technology_nm=65,
        purpose="1st-layer BNN",
        compute_scheme="entire-array",
        has_memory=True,
        has_nvm=True,
        pixel_size_um=55.0,
        array_size="128x128",
        frame_rate_fps="1000",
        power_mw="sensing: 0.025 / processing: 0.0088",
        efficiency_tops_per_watt="1.745",
    ),
    LiteratureDesign(
        key="senputing",
        reference="[12] Xu et al. (Senputing), TCAS-I 2021",
        technology_nm=180,
        purpose="1st-layer BNN",
        compute_scheme="entire-array",
        has_memory=True,
        has_nvm=False,
        pixel_size_um=35.0,
        array_size="32x32",
        frame_rate_fps="156",
        power_mw="0.00014 - 0.00053",
        efficiency_tops_per_watt="9.4-34.6",
    ),
    LiteratureDesign(
        key="lefebvre_imager",
        reference="[21] Lefebvre et al., ISSCC 2021",
        technology_nm=65,
        purpose="2-64 conv / ROI detection",
        compute_scheme="row-wise",
        has_memory=False,
        has_nvm=False,
        pixel_size_um=9.0,
        array_size="160x128",
        frame_rate_fps="96 - 1072",
        power_mw="0.042 - 0.206",
        efficiency_tops_per_watt="0.15-3.64",
    ),
    LiteratureDesign(
        key="song_reconfigurable",
        reference="[1] Song et al., TCSVT 2022",
        technology_nm=180,
        purpose="1st-layer CNN",
        compute_scheme="entire-array",
        has_memory=False,
        has_nvm=False,
        pixel_size_um=10.0,
        array_size="128x128",
        frame_rate_fps="3840",
        power_mw="0.45 - 1.83",
        efficiency_tops_per_watt="1.41-3.37",
    ),
    LiteratureDesign(
        key="appcip",
        reference="[13] Tabrizchi et al. (AppCiP), JETCAS 2023",
        technology_nm=45,
        purpose="1st-layer CNN",
        compute_scheme="entire-array",
        has_memory=True,
        has_nvm=True,
        pixel_size_um=38.0,
        array_size="32x32",
        frame_rate_fps="3000",
        power_mw="0.00096 - 0.0028",
        efficiency_tops_per_watt="1.37-4.12",
    ),
)


def table1_rows() -> list[LiteratureDesign]:
    """All literature rows in the paper's print order."""
    return list(LITERATURE_DESIGNS)


#: The paper's OISA row, kept for paper-vs-measured comparison.
PAPER_OISA_ROW = {
    "technology_nm": 65,
    "purpose": "1st-layer CNN",
    "compute_scheme": "entire-array",
    "has_memory": True,
    "has_nvm": False,
    "pixel_size_um": 4.5,
    "array_size": "128x128",
    "frame_rate_fps": "1000",
    "power_mw": "0.00012 - 0.00034",
    "efficiency_tops_per_watt": "6.68",
}
