"""CrossLight-like silicon-photonic PIS baseline (paper reference [18]).

Rebuilt "from scratch using the proposed evaluation framework", as the
paper does: the same 80-bank x 5-arm x 10-MR geometry, the same VCSEL/BPD
technologies — but with CrossLight's two defining structural differences:

1. **Separate weight and activation banks** — half the MRs carry
   activations, halving the MAC capacity per cycle;
2. **Conventional converters** — every activation update needs a DAC in
   front of its MR, and every arm output needs an ADC, both absent in OISA.

These two differences are exactly what Fig. 9's breakdown attributes the
power gap to (ADC/DAC bars vs. OISA's AWC/VAM bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.adc_dac import AdcModel, DacModel
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, PowerBreakdown
from repro.core.mapping import ConvWorkload, plan_convolution
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class CrosslightConfig:
    """Structural knobs of the CrossLight-like platform."""

    base: OISAConfig = field(default_factory=OISAConfig)
    #: External CW comb laser electrical power while computing [W]
    #: (wall-plug limited; replaces OISA's per-pixel VCSELs).
    laser_power_w: float = 0.92
    #: ADC figure-of-merit [J per conversion step].
    adc_fom_j_per_step: float = 15e-15
    #: DAC update energy per bit-scaled update [J] at 8 bits.
    dac_energy_8bit_j: float = 0.95e-12
    #: Extra ADC resolution above the weight bit-width (dot-product growth).
    adc_headroom_bits: int = 1

    def __post_init__(self) -> None:
        check_positive("laser_power_w", self.laser_power_w)
        check_positive("adc_fom_j_per_step", self.adc_fom_j_per_step)
        check_positive("dac_energy_8bit_j", self.dac_energy_8bit_j)


class CrosslightAccelerator:
    """Analytical CrossLight-like platform on the shared framework."""

    name = "Crosslight"

    def __init__(self, config: CrosslightConfig | None = None) -> None:
        self.config = config or CrosslightConfig()
        self._oisa_energy = OISAEnergyModel(self.config.base)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def weight_arms(self) -> int:
        """Arms available for weights (half the array)."""
        return self.config.base.total_arms // 2

    def kernel_slots(self, kernel_size: int) -> int:
        """Kernel planes resident at once (half of OISA's)."""
        base = self.config.base
        from repro.core.mapping import kernels_per_bank

        return (base.num_banks // 2) * kernels_per_bank(base, kernel_size)

    def macs_per_cycle(self, kernel_size: int) -> int:
        """Per-cycle MAC capacity — half of OISA's (activation banks)."""
        from repro.core.mapping import macs_per_cycle

        return macs_per_cycle(self.config.base, kernel_size) // 2

    def compute_cycles(self, workload: ConvWorkload) -> int:
        """Cycles for one frame's first layer with halved slots."""
        import math

        planes = workload.num_kernels * workload.in_channels
        rounds = math.ceil(planes / self.kernel_slots(workload.kernel_size))
        return workload.windows_per_channel * rounds

    # ------------------------------------------------------------------
    # Converters
    # ------------------------------------------------------------------
    def adc(self, weight_bits: int, activation_bits: int = 2) -> AdcModel:
        """Output ADC sized for the dot-product precision."""
        bits = weight_bits + activation_bits + self.config.adc_headroom_bits
        return AdcModel(bits=bits, fom_j_per_step=self.config.adc_fom_j_per_step)

    def dac_update_energy_j(self, bits: int) -> float:
        """Energy of one DAC update at ``bits`` resolution."""
        check_in_range("bits", bits, 1, 12)
        return self.config.dac_energy_8bit_j * (1 << bits) / (1 << 8)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def average_power_w(
        self,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
        frame_rate_hz: float = 1000.0,
    ) -> PowerBreakdown:
        """Average power at a sustained frame rate, by component."""
        check_in_range("weight_bits", weight_bits, 1, 8)
        check_positive("frame_rate_hz", frame_rate_hz)
        base = self.config.base
        cycles = self.compute_cycles(workload)
        compute_s = cycles * base.mac_cycle_s

        # Optical path while computing: laser + both banks' tuning + BPDs.
        optics_peak = (
            self.config.laser_power_w
            + 2.0 * self._oisa_energy.tuning_hold_power_w() / 2.0  # both halves tuned
            + self._oisa_energy.bpd_power_w() / 2.0
            + OISAEnergyModel.CONTROL_POWER_W
        )
        energy = {
            "laser": self.config.laser_power_w * compute_s,
            "ted": self._oisa_energy.tuning_hold_power_w() * compute_s,
            "bpd": (self._oisa_energy.bpd_power_w() / 2.0) * compute_s,
            "control": OISAEnergyModel.CONTROL_POWER_W * compute_s,
        }
        del optics_peak  # folded into the explicit entries above

        # ADC: one conversion per weight-arm output per cycle.
        conversions = self.weight_arms * cycles
        adc = self.adc(weight_bits, activation_bits)
        energy["adc"] = adc.energy_per_conversion_j() * conversions

        # DAC: activations re-programmed every cycle (per active window
        # wavelength on the activation banks); weights amortized over the
        # mapping (one update per MR per kernel-set).
        activation_updates = (
            (base.num_banks // 2) * workload.kernel_size**2 * cycles
        )
        # Activation MRs are driven at an internal precision well above the
        # 2-bit symbol (CrossLight tunes analog transmission): 8-bit DACs.
        energy["dac"] = self.dac_update_energy_j(8) * activation_updates
        weight_updates = base.total_mrs // 2
        energy["dac"] += self.dac_update_energy_j(max(weight_bits + 4, 8)) * (
            weight_updates / 30.0  # kernel set reused across ~30 frames
        )

        energy["misc"] = 0.08e-6  # bias distribution, clocking residue [J]
        return PowerBreakdown(energy).scaled(frame_rate_hz)

    def peak_throughput_ops(self) -> float:
        """Arm-level results per second (half of OISA's arms do MACs)."""
        return self.weight_arms / self.config.base.mac_cycle_s
