"""DaDianNao-like ASIC baseline fed by a conventional image sensor.

The paper's third comparator: an 8x8-tile DaDianNao-class digital
accelerator (45 nm, synthesized with Design Compiler; eDRAM/SRAM via CACTI)
attached to a conventional 128x128 sensor whose every pixel is digitised by
column ADCs.  Its costs are the classic cloud-centric ones OISA's intro
attacks: full-frame conversion, data movement between sensor and
accelerator, and a digital MAC + memory hierarchy per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.adc_dac import AdcModel
from repro.core.energy import PowerBreakdown
from repro.core.mapping import ConvWorkload
from repro.memarch.cacti import EdramModel, SramModel
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class AsicConfig:
    """Component parameters of the ASIC + sensor platform (45 nm)."""

    num_tiles: int = 64  # 8 x 8
    #: Digital MAC energy at 8x8-bit, 45 nm [J].
    mac_energy_8x8_j: float = 0.32e-12
    #: Weight/activation SRAM buffers per tile.
    sram: SramModel = field(
        default_factory=lambda: SramModel(capacity_bytes=8192, technology_nm=45)
    )
    #: Central eDRAM holding activations/weights.
    edram: EdramModel = field(
        default_factory=lambda: EdramModel(
            capacity_bytes=2 * 1024 * 1024, technology_nm=45
        )
    )
    #: Sensor column ADC (8-bit, one conversion per pixel per frame).
    sensor_adc: AdcModel = field(default_factory=lambda: AdcModel(bits=8))
    #: Sensor-to-accelerator link energy per byte [J].
    link_energy_per_byte_j: float = 3.5e-12
    #: Accelerator clock/control static power [W].
    static_power_w: float = 6.0e-3
    #: Operand reuse factor: register files serve this many MACs per SRAM
    #: read (DaDianNao's NFU pipelines and wide fetches).
    sram_reuse_factor: float = 16.0
    #: Register-file access energy per MAC [J].
    rf_energy_per_mac_j: float = 60e-15

    def __post_init__(self) -> None:
        check_positive("num_tiles", self.num_tiles)
        check_positive("mac_energy_8x8_j", self.mac_energy_8x8_j)
        check_positive("link_energy_per_byte_j", self.link_energy_per_byte_j)
        check_positive("static_power_w", self.static_power_w)


class AsicAccelerator:
    """Analytical DaDianNao-like ASIC with a conventional sensor front-end."""

    name = "ASIC"

    def __init__(self, config: AsicConfig | None = None) -> None:
        self.config = config or AsicConfig()

    def mac_energy_j(self, weight_bits: int, activation_bits: int) -> float:
        """Digital MAC energy scaled by operand widths (multiplier area)."""
        scale = (weight_bits * activation_bits) / 64.0
        return self.config.mac_energy_8x8_j * max(scale, 1.0 / 64.0)

    def average_power_w(
        self,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
        frame_rate_hz: float = 1000.0,
    ) -> PowerBreakdown:
        """Average first-layer power by component at a frame rate."""
        check_in_range("weight_bits", weight_bits, 1, 8)
        check_positive("frame_rate_hz", frame_rate_hz)
        cfg = self.config

        num_pixels = (
            workload.image_height * workload.image_width * workload.in_channels
        )
        total_macs = workload.total_macs

        # Sensor: every pixel converted and shipped over the link.
        energy = {
            "adc": cfg.sensor_adc.energy_per_conversion_j() * num_pixels,
            "link": cfg.link_energy_per_byte_j * num_pixels,  # 1 B/pixel
        }

        # Datapath: one MAC per scalar op; operands staged through register
        # files with SRAM refills every ``sram_reuse_factor`` MACs.
        energy["mac"] = self.mac_energy_j(weight_bits, activation_bits) * total_macs
        energy["rf"] = cfg.rf_energy_per_mac_j * total_macs
        sram_reads_per_mac = 2.2 / cfg.sram_reuse_factor
        energy["sram"] = (
            cfg.sram.read_energy_j() * sram_reads_per_mac / 4.0
        ) * total_macs
        # eDRAM traffic: activations in, features out, weights once.
        outputs = workload.windows_per_channel * workload.num_kernels
        edram_words = (num_pixels + outputs) / 8.0  # 64-bit words
        energy["edram"] = cfg.edram.read_energy_j() * edram_words

        breakdown = PowerBreakdown(energy).scaled(frame_rate_hz)
        # Static/refresh power is rate-independent.
        return breakdown.merged(
            PowerBreakdown(
                {
                    "static": cfg.static_power_w,
                    "edram_refresh": cfg.edram.refresh_power_w(),
                }
            )
        )

    def peak_throughput_macs(self, clock_hz: float = 600e6, lanes_per_tile: int = 256) -> float:
        """Peak scalar MACs/s of the tile array (DaDianNao-class)."""
        check_positive("clock_hz", clock_hz)
        return self.config.num_tiles * lanes_per_tile * clock_hz
