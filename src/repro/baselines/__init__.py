"""Comparator accelerators the paper evaluates against.

* :mod:`repro.baselines.crosslight` — CrossLight-like optical PIS [18]:
  same MR core geometry but half the MRs carry activations, with per-cycle
  DAC updates and per-output ADC conversions.
* :mod:`repro.baselines.appcip` — AppCiP-like electronic PIS [13]:
  in-pixel analog convolution with folded ADC and non-volatile weights.
* :mod:`repro.baselines.asic` — DaDianNao-like ASIC [29] fed by a
  conventional image sensor with column ADCs.
* :mod:`repro.baselines.literature` — the published PIS/PNS rows of
  Table I.

All three models share the :class:`BaselinePlatform` protocol so the Fig. 9
harness can sweep them uniformly.
"""

from repro.baselines.appcip import AppCipAccelerator
from repro.baselines.asic import AsicAccelerator
from repro.baselines.crosslight import CrosslightAccelerator
from repro.baselines.literature import LITERATURE_DESIGNS, LiteratureDesign, table1_rows

__all__ = [
    "AppCipAccelerator",
    "AsicAccelerator",
    "CrosslightAccelerator",
    "LITERATURE_DESIGNS",
    "LiteratureDesign",
    "table1_rows",
]
