"""AppCiP-like electronic processing-in-pixel baseline (paper ref [13]).

AppCiP performs the first convolution layer with analog current-domain
circuits inside the pixel array, weights held in non-volatile memory, and a
*folded* ADC that shares comparators across columns to cut converter count.
The paper rebuilds it "in HSPICE and NVSIM from scratch"; we rebuild it on
our analytical substrate with the matching component inventory:

* analog in-pixel MAC energy (current-domain, per scalar MAC),
* NVM weight reads (per window, per resident kernel),
* folded ADC conversions on every output value,
* frame-wide pixel access/reset overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.adc_dac import AdcModel
from repro.core.energy import PowerBreakdown
from repro.core.mapping import ConvWorkload
from repro.memarch.nvsim import NvmModel
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class AppCipConfig:
    """Component energies of the AppCiP-like platform (45 nm class)."""

    #: Analog current-domain MAC energy per scalar multiply-accumulate [J].
    analog_mac_energy_j: float = 0.35e-12
    #: Pixel access/reset energy per pixel per frame [J].
    pixel_access_energy_j: float = 35e-15
    #: Folded-ADC figure of merit [J/step] (sharing lowers the static cost,
    #: not the per-step energy).
    adc_fom_j_per_step: float = 35e-15
    #: ADC resolution headroom above the weight bits.
    adc_headroom_bits: int = 2
    #: NVM bank holding the first-layer weights.
    nvm: NvmModel = field(
        default_factory=lambda: NvmModel(capacity_bytes=4096, technology_nm=45)
    )
    #: How many frames a programmed kernel set serves (write amortisation).
    frames_per_reprogram: int = 1000

    def __post_init__(self) -> None:
        check_positive("analog_mac_energy_j", self.analog_mac_energy_j)
        check_positive("pixel_access_energy_j", self.pixel_access_energy_j)
        check_positive("adc_fom_j_per_step", self.adc_fom_j_per_step)
        check_positive("frames_per_reprogram", self.frames_per_reprogram)


class AppCipAccelerator:
    """Analytical AppCiP-like platform."""

    name = "AppCip"

    def __init__(self, config: AppCipConfig | None = None) -> None:
        self.config = config or AppCipConfig()

    def adc(self, weight_bits: int) -> AdcModel:
        """Folded ADC sized for the output precision."""
        bits = weight_bits + self.config.adc_headroom_bits
        return AdcModel(bits=bits, fom_j_per_step=self.config.adc_fom_j_per_step)

    def average_power_w(
        self,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
        frame_rate_hz: float = 1000.0,
    ) -> PowerBreakdown:
        """Average first-layer power by component at a frame rate."""
        check_in_range("weight_bits", weight_bits, 1, 8)
        check_positive("frame_rate_hz", frame_rate_hz)
        cfg = self.config

        outputs = workload.windows_per_channel * workload.num_kernels
        total_macs = workload.total_macs

        # Analog compute scales sub-linearly with the bit product: wider
        # operands move more charge, but the fixed biasing floor dominates
        # at low precision (HSPICE-calibrated square-root trend).
        bit_scale = ((weight_bits * activation_bits) / (4.0 * 2.0)) ** 0.5
        energy = {
            "analog_mac": cfg.analog_mac_energy_j * total_macs * bit_scale,
            "pixel": cfg.pixel_access_energy_j
            * workload.image_height
            * workload.image_width
            * workload.in_channels,
            "adc": self.adc(weight_bits).energy_per_conversion_j() * outputs,
        }

        # NVM weight reads: each window re-reads the resident kernel row.
        weight_words = (
            workload.num_kernels * workload.in_channels * workload.kernel_size**2
        )
        reads_per_frame = weight_words * workload.windows_per_channel / 64.0
        # /64: AppCiP broadcasts one weight read across a 64-wide pixel row.
        energy["nvm_read"] = cfg.nvm.read_energy_j() * reads_per_frame

        # NVM writes amortised across the reprogram interval.
        energy["nvm_write"] = (
            cfg.nvm.write_energy_j() * weight_words / cfg.frames_per_reprogram
        )
        energy["misc"] = 0.2e-6  # bias DACs, references, clocking [J]
        return PowerBreakdown(energy).scaled(frame_rate_hz)

    def frame_rate_limit_hz(self, workload: ConvWorkload) -> float:
        """Analog settling limits AppCiP's frame rate (paper: ~3000 FPS)."""
        settle_per_window_s = 110e-9  # current-domain MAC settle + readout
        windows = workload.windows_per_channel
        # Rows of windows settle in parallel across the pixel array.
        sequential_windows = windows / workload.image_width
        return 1.0 / (sequential_windows * settle_per_window_s)
