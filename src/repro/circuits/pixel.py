"""3-transistor + photodiode active pixel (paper Fig. 3b).

Operating sequence modelled after Section III-A ("ADC-Less Imager"):

1. **Reset** — T1 pulls the photodiode node to ``VDD - V_th`` (we fold the
   threshold drop into ``reset_voltage_v``), fully charging the PD
   capacitance.
2. **Exposure** — with T1 off, the photocurrent (proportional to the scene
   illuminance) discharges the PD capacitance, so the source-follower gate
   voltage *drops* at a rate ``I_ph / C_pd``.
3. **Discharge** — T2 empties the node between frames.

The VAM thresholds the *voltage drop* ``V_drop = V_reset - V_pd`` at the end
of exposure, so a brighter pixel produces a larger drop and a larger ternary
symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.transient import TransientResult, rc_settle, time_grid
from repro.util.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class PixelDesign:
    """Electrical parameters of the 3T1PD pixel (45 nm-class defaults)."""

    vdd_v: float = 1.0
    reset_voltage_v: float = 0.78
    pd_capacitance_f: float = 10e-15
    dark_current_a: float = 2e-12
    photocurrent_per_lux_a: float = 30e-12
    reset_tau_s: float = 0.25e-9
    discharge_tau_s: float = 0.2e-9
    source_follower_gain: float = 0.85

    def __post_init__(self) -> None:
        check_positive("vdd_v", self.vdd_v)
        check_in_range("reset_voltage_v", self.reset_voltage_v, 0.0, self.vdd_v)
        check_positive("pd_capacitance_f", self.pd_capacitance_f)
        check_non_negative("dark_current_a", self.dark_current_a)
        check_positive("photocurrent_per_lux_a", self.photocurrent_per_lux_a)
        check_positive("reset_tau_s", self.reset_tau_s)
        check_positive("discharge_tau_s", self.discharge_tau_s)
        check_in_range("source_follower_gain", self.source_follower_gain, 0.0, 1.0)


class ThreeTransistorPixel:
    """Behavioral 3T pixel producing photodiode-node transients."""

    def __init__(self, design: PixelDesign | None = None) -> None:
        self.design = design or PixelDesign()

    def photocurrent_a(self, illuminance_lux: float) -> float:
        """Photocurrent [A] for a scene illuminance [lux]."""
        check_non_negative("illuminance_lux", illuminance_lux)
        return (
            self.design.dark_current_a
            + self.design.photocurrent_per_lux_a * illuminance_lux
        )

    def exposure_drop_v(self, illuminance_lux: float, exposure_s: float) -> float:
        """Voltage drop across the PD node after ``exposure_s`` of light.

        Linear discharge clipped at the full reset voltage (saturated
        pixel).
        """
        check_positive("exposure_s", exposure_s)
        drop = (
            self.photocurrent_a(illuminance_lux)
            * exposure_s
            / self.design.pd_capacitance_f
        )
        return min(drop, self.design.reset_voltage_v)

    def output_voltage_v(self, illuminance_lux: float, exposure_s: float) -> float:
        """Source-follower output voltage at the end of exposure.

        The VAM's sense amplifiers compare this value against their
        references; brighter scenes give *larger* outputs because the
        follower buffers the drop ``V_reset - V_pd``  (the paper's SA inputs
        rise with absorbed light, cf. Fig. 8 where Out1 > Out2 > Out3).
        """
        drop = self.exposure_drop_v(illuminance_lux, exposure_s)
        return self.design.source_follower_gain * drop

    def transient(
        self,
        illuminance_lux: float,
        duration_s: float = 40e-9,
        dt_s: float = 0.02e-9,
        reset_start_s: float = 1e-9,
        reset_width_s: float = 2e-9,
        discharge_start_s: float = 34e-9,
        discharge_width_s: float = 3e-9,
    ) -> TransientResult:
        """Full-frame transient: reset pulse, exposure ramp, discharge.

        Returns traces ``Rst``, ``Dcharge``, ``Vpd`` (photodiode node) and
        ``Out`` (source-follower view of the accumulated drop).
        """
        times = time_grid(duration_s, dt_s)
        design = self.design

        reset = np.where(
            (times >= reset_start_s) & (times < reset_start_s + reset_width_s),
            design.vdd_v,
            0.0,
        )
        discharge = np.where(
            (times >= discharge_start_s)
            & (times < discharge_start_s + discharge_width_s),
            design.vdd_v,
            0.0,
        )

        current = self.photocurrent_a(illuminance_lux)
        slope_v_per_s = current / design.pd_capacitance_f

        vpd = np.zeros_like(times)
        # Phase 1: before reset the node floats near 0 (previous discharge).
        # Phase 2: reset pulse charges the node.
        reset_end = reset_start_s + reset_width_s
        charging = rc_settle(
            times, 0.0, design.reset_voltage_v, design.reset_tau_s, reset_start_s
        )
        # Phase 3: exposure — linear discharge from the reset value.
        exposure = design.reset_voltage_v - slope_v_per_s * (times - reset_end)
        exposure = np.clip(exposure, 0.0, design.reset_voltage_v)
        # Phase 4: discharge pulse empties the node.
        v_at_discharge = float(
            np.interp(
                discharge_start_s,
                times,
                np.where(times < reset_end, charging, exposure),
            )
        )
        draining = rc_settle(
            times, v_at_discharge, 0.0, design.discharge_tau_s, discharge_start_s
        )

        vpd = np.where(times < reset_end, charging, exposure)
        vpd = np.where(times >= discharge_start_s, draining, vpd)

        out = design.source_follower_gain * (design.reset_voltage_v - vpd)
        # The follower output is only meaningful between reset and discharge.
        out = np.where(times < reset_end, 0.0, out)
        out = np.where(times >= discharge_start_s, 0.0, out)

        result = TransientResult(times_s=times)
        result.add("Rst", reset)
        result.add("Dcharge", discharge)
        result.add("Vpd", vpd)
        result.add("Out", out)
        return result

    def saturation_illuminance_lux(self, exposure_s: float) -> float:
        """Illuminance [lux] at which the pixel saturates for ``exposure_s``."""
        check_positive("exposure_s", exposure_s)
        saturating_current = (
            self.design.reset_voltage_v * self.design.pd_capacitance_f / exposure_s
        )
        photo = saturating_current - self.design.dark_current_a
        return max(photo, 0.0) / self.design.photocurrent_per_lux_a
