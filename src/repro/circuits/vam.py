"""VCSEL Activation Modulator circuit (paper Fig. 3a/3d, waveforms Fig. 8).

The VAM chains together:

* a :class:`~repro.circuits.pixel.ThreeTransistorPixel` whose output voltage
  encodes absorbed light,
* two :class:`~repro.circuits.sense_amp.SenseAmplifier` instances with
  references ``V_ref1 = 0.16 V`` and ``V_ref2 = 0.32 V`` producing outputs
  ``t1``/``t2``,
* a VCSEL driver in which ``t1``/``t2`` switch the S1/S2 current branches on
  top of an always-on bias branch (non-return-to-zero operation).

The ternary symbol is ``t1 + t2``: 0 (dark), 1 (mid), 2 (bright) — exactly
the three states enumerated in Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.pixel import PixelDesign, ThreeTransistorPixel
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.transient import TransientResult, clock_wave, integrate_rc
from repro.photonics.vcsel import TernaryVcselEncoder
from repro.util.validation import check_positive


@dataclass(frozen=True)
class VamDesign:
    """Reference voltages and timing of the VAM front-end."""

    vref_low_v: float = 0.16
    vref_high_v: float = 0.32
    clk_period_s: float = 8e-9
    driver_tau_s: float = 0.15e-9
    sa_energy_per_decision_j: float = 4e-15
    driver_energy_per_symbol_j: float = 12e-15

    def __post_init__(self) -> None:
        check_positive("vref_low_v", self.vref_low_v)
        if self.vref_high_v <= self.vref_low_v:
            raise ValueError(
                "vref_high_v must exceed vref_low_v "
                f"({self.vref_high_v} <= {self.vref_low_v})"
            )
        check_positive("clk_period_s", self.clk_period_s)
        check_positive("driver_tau_s", self.driver_tau_s)


@dataclass
class VamCircuit:
    """Behavioral VAM: pixel voltage -> ternary symbol -> VCSEL current."""

    design: VamDesign = field(default_factory=VamDesign)
    pixel: ThreeTransistorPixel = field(
        default_factory=lambda: ThreeTransistorPixel(PixelDesign())
    )
    encoder: TernaryVcselEncoder = field(default_factory=TernaryVcselEncoder)

    def __post_init__(self) -> None:
        self.sense_amp_low = SenseAmplifier(
            reference_v=self.design.vref_low_v,
            energy_per_decision_j=self.design.sa_energy_per_decision_j,
        )
        self.sense_amp_high = SenseAmplifier(
            reference_v=self.design.vref_high_v,
            energy_per_decision_j=self.design.sa_energy_per_decision_j,
        )

    # ------------------------------------------------------------------
    # Static (symbol-level) behaviour — used by the architecture model
    # ------------------------------------------------------------------
    def ternary_symbol(self, pixel_output_v: float) -> int:
        """Threshold a pixel output voltage into a ternary symbol {0,1,2}."""
        t1 = self.sense_amp_low.decide(pixel_output_v)
        t2 = self.sense_amp_high.decide(pixel_output_v)
        return t1 + t2

    def encode_frame(
        self, pixel_output_v: np.ndarray
    ) -> np.ndarray:
        """Vectorised ternary encoding of a whole pixel-voltage frame."""
        voltages = np.asarray(pixel_output_v, dtype=float)
        low = voltages > self.design.vref_low_v
        high = voltages > self.design.vref_high_v
        return low.astype(np.int8) + high.astype(np.int8)

    def optical_power_w(self, pixel_output_v: np.ndarray) -> np.ndarray:
        """Optical power [W] emitted for a frame of pixel voltages."""
        return self.encoder.optical_power_w(self.encode_frame(pixel_output_v))

    def symbol_energy_j(self, symbol_time_s: float) -> float:
        """Energy of producing one ternary optical symbol.

        Two SA decisions + driver switching + mean VCSEL electrical energy
        over a uniform symbol distribution.
        """
        sa = 2.0 * self.design.sa_energy_per_decision_j
        driver = self.design.driver_energy_per_symbol_j
        vcsel = self.encoder.mean_symbol_power_w() * symbol_time_s
        return sa + driver + vcsel

    # ------------------------------------------------------------------
    # Transient behaviour — reproduces the paper's Fig. 8
    # ------------------------------------------------------------------
    def threshold_transient(
        self,
        illuminances_lux: tuple[float, ...] = (13000.0, 6500.0, 2000.0),
        duration_s: float = 40e-9,
        dt_s: float = 0.02e-9,
        exposure_window_s: float = 30e-9,
    ) -> TransientResult:
        """Simulate Fig. 8: three pixels with distinct illuminations.

        Returns traces ``Rst``, ``Dcharge``, ``Clk`` plus, per pixel *k*
        (1-based), ``Out{k}`` (pixel voltage), ``Out{k}t1``/``Out{k}t2``
        (latched SA outputs) and ``I{k}`` (VCSEL drive current).
        """
        if not illuminances_lux:
            raise ValueError("need at least one pixel illuminance")
        base = self.pixel.transient(
            illuminances_lux[0],
            duration_s=duration_s,
            dt_s=dt_s,
            discharge_start_s=exposure_window_s + 4e-9,
        )
        times = base.times_s
        clk = clock_wave(times, self.design.clk_period_s, duty=0.875)

        result = TransientResult(times_s=times)
        result.add("Rst", base["Rst"])
        result.add("Dcharge", base["Dcharge"])
        result.add("Clk", clk)

        for pixel_index, lux in enumerate(illuminances_lux, start=1):
            pixel_result = self.pixel.transient(
                lux,
                duration_s=duration_s,
                dt_s=dt_s,
                discharge_start_s=exposure_window_s + 4e-9,
            )
            out = pixel_result["Out"]
            t1 = self.sense_amp_low.latch_trace(times, out, clk)
            t2 = self.sense_amp_high.latch_trace(times, out, clk)
            symbols = (t1 > 0.5).astype(int) + (t2 > 0.5).astype(int)
            target_current = self.encoder.drive_current_a(symbols)
            current = integrate_rc(
                times,
                target_current,
                self.design.driver_tau_s,
                initial_v=float(self.encoder.bias_current_a),
            )
            result.add(f"Out{pixel_index}", out)
            result.add(f"Out{pixel_index}t1", t1)
            result.add(f"Out{pixel_index}t2", t2)
            result.add(f"I{pixel_index}", current)
        return result

    def classify_transient(
        self, result: TransientResult, sample_time_s: float = 16.5e-9
    ) -> list[int]:
        """Read back the ternary symbols latched at ``sample_time_s``.

        Mirrors the paper's observation window (16–17 ns) where the Fig. 8
        outputs are valid.
        """
        symbols = []
        pixel_index = 1
        while f"Out{pixel_index}t1" in result:
            t1 = result.sample(f"Out{pixel_index}t1", sample_time_s)
            t2 = result.sample(f"Out{pixel_index}t2", sample_time_s)
            symbols.append(int(t1 > 0.5) + int(t2 > 0.5))
            pixel_index += 1
        return symbols
