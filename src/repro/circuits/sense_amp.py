"""Clocked sense amplifier / comparator (paper Fig. 3c).

The VAM uses two StrongARM-style sense amplifiers per pixel column, each
with its own reference voltage.  On every evaluation edge (``Clk`` low in
the paper's Fig. 8 convention) the SA regenerates and latches ``VDD`` when
the input exceeds the reference, otherwise 0.  Between evaluations the
output holds its last latched value.  A small input-referred offset models
comparator mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class SenseAmplifier:
    """Behavioral clocked comparator.

    Parameters
    ----------
    reference_v:
        Threshold the input is compared against.
    vdd_v:
        Logic-high output level.
    offset_v:
        Static input-referred offset (mismatch); added to the reference.
    regeneration_time_s:
        Delay between the evaluation edge and a valid output.
    energy_per_decision_j:
        Dynamic energy of one evaluation (used by the power model).
    """

    reference_v: float
    vdd_v: float = 1.0
    offset_v: float = 0.0
    regeneration_time_s: float = 50e-12
    energy_per_decision_j: float = 4e-15

    def __post_init__(self) -> None:
        check_non_negative("reference_v", self.reference_v)
        check_positive("vdd_v", self.vdd_v)
        check_positive("regeneration_time_s", self.regeneration_time_s)
        check_non_negative("energy_per_decision_j", self.energy_per_decision_j)

    def decide(self, input_v: float) -> int:
        """Single comparison: 1 when ``input_v`` exceeds the threshold."""
        return int(input_v > self.reference_v + self.offset_v)

    def latch_trace(
        self,
        times_s: np.ndarray,
        input_v: np.ndarray,
        clk_v: np.ndarray,
        clk_threshold_v: float = 0.5,
    ) -> np.ndarray:
        """Latched output waveform for an input/clock pair.

        The comparator evaluates while ``clk`` is *low* (matching the
        paper's Fig. 8 timing) and holds while ``clk`` is high.  Output
        transitions lag the evaluation edge by ``regeneration_time_s``.
        """
        times_s = np.asarray(times_s, dtype=float)
        input_v = np.asarray(input_v, dtype=float)
        clk_v = np.asarray(clk_v, dtype=float)
        if not (times_s.shape == input_v.shape == clk_v.shape):
            raise ValueError("times, input and clk traces must share a shape")

        output = np.zeros_like(input_v)
        state = 0.0
        pending_value: float | None = None
        pending_time = 0.0
        evaluating_prev = False
        for index, (t, vin, vclk) in enumerate(zip(times_s, input_v, clk_v)):
            evaluating = vclk < clk_threshold_v
            if evaluating and not evaluating_prev:
                # Falling clock edge: start a regeneration window.
                pending_value = self.vdd_v * self.decide(vin)
                pending_time = t + self.regeneration_time_s
            if evaluating:
                # Track the input during the low phase (transparent-ish
                # behaviour, re-evaluating as the input moves).
                refreshed = self.vdd_v * self.decide(vin)
                if pending_value is not None and refreshed != pending_value:
                    pending_value = refreshed
                    pending_time = t + self.regeneration_time_s
            if pending_value is not None and t >= pending_time:
                state = pending_value
                pending_value = None
            evaluating_prev = evaluating
            output[index] = state
        return output

    def decisions_per_second_power_w(self, rate_hz: float) -> float:
        """Average power [W] when evaluating at ``rate_hz``."""
        check_non_negative("rate_hz", rate_hz)
        return self.energy_per_decision_j * rate_hz
