"""Fixed-step transient simulation primitives.

A deliberately small toolkit: uniform time grids, ideal digital waveform
generators (clocks and pulses), first-order RC settling, and a result
container that behaves like a named bundle of traces.  The component models
(pixel, sense amp, VAM, AWC) build their transients from these pieces, which
keeps every waveform reproducible and fast enough for property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive


def time_grid(duration_s: float, dt_s: float) -> np.ndarray:
    """Uniform time axis from 0 to ``duration_s`` (inclusive of start).

    The grid contains ``floor(duration/dt) + 1`` points so that waveforms
    sampled on it cover the full window.
    """
    check_positive("duration_s", duration_s)
    check_positive("dt_s", dt_s)
    if dt_s > duration_s:
        raise ValueError(f"dt ({dt_s}) must not exceed duration ({duration_s})")
    steps = int(round(duration_s / dt_s))
    return np.arange(steps + 1) * dt_s


def clock_wave(
    times: np.ndarray,
    period_s: float,
    high_v: float = 1.0,
    low_v: float = 0.0,
    duty: float = 0.5,
    phase_s: float = 0.0,
) -> np.ndarray:
    """Ideal square clock sampled on ``times``."""
    check_positive("period_s", period_s)
    if not (0.0 < duty < 1.0):
        raise ValueError(f"duty must be in (0, 1), got {duty}")
    phase = np.mod(np.asarray(times, dtype=float) - phase_s, period_s) / period_s
    return np.where(phase < duty, high_v, low_v)


def pulse_wave(
    times: np.ndarray,
    start_s: float,
    stop_s: float,
    high_v: float = 1.0,
    low_v: float = 0.0,
) -> np.ndarray:
    """Single rectangular pulse active on ``[start_s, stop_s)``."""
    if stop_s <= start_s:
        raise ValueError(f"pulse stop ({stop_s}) must follow start ({start_s})")
    times = np.asarray(times, dtype=float)
    return np.where((times >= start_s) & (times < stop_s), high_v, low_v)


def periodic_pulse_wave(
    times: np.ndarray,
    period_s: float,
    start_s: float,
    width_s: float,
    high_v: float = 1.0,
    low_v: float = 0.0,
) -> np.ndarray:
    """Rectangular pulse of ``width_s`` repeated every ``period_s``."""
    check_positive("period_s", period_s)
    check_positive("width_s", width_s)
    if width_s > period_s:
        raise ValueError("pulse width must not exceed the period")
    phase = np.mod(np.asarray(times, dtype=float) - start_s, period_s)
    return np.where(phase < width_s, high_v, low_v)


def rc_settle(
    times: np.ndarray,
    initial_v: float,
    target_v: float,
    tau_s: float,
    start_s: float = 0.0,
) -> np.ndarray:
    """First-order exponential settling from ``initial_v`` to ``target_v``.

    Before ``start_s`` the trace holds ``initial_v``.
    """
    check_positive("tau_s", tau_s)
    times = np.asarray(times, dtype=float)
    elapsed = np.clip(times - start_s, 0.0, None)
    value = target_v + (initial_v - target_v) * np.exp(-elapsed / tau_s)
    return np.where(times < start_s, initial_v, value)


def integrate_rc(
    times: np.ndarray,
    target: np.ndarray,
    tau_s: float,
    initial_v: float = 0.0,
) -> np.ndarray:
    """Numerically track a time-varying target through an RC time constant.

    Forward-Euler integration of ``dv/dt = (target - v) / tau``; used when a
    node follows a waveform (e.g. the AWC output settling to a changing
    current level) rather than a single constant.
    """
    check_positive("tau_s", tau_s)
    times = np.asarray(times, dtype=float)
    target = np.asarray(target, dtype=float)
    if target.shape != times.shape:
        raise ValueError("target waveform must match the time grid shape")
    output = np.empty_like(target)
    value = initial_v
    previous_t = times[0]
    for index, (t, goal) in enumerate(zip(times, target)):
        dt = t - previous_t
        if dt > 0:
            alpha = 1.0 - np.exp(-dt / tau_s)
            value = value + (goal - value) * alpha
        output[index] = value
        previous_t = t
    return output


@dataclass
class TransientResult:
    """Named bundle of waveforms on a shared time grid."""

    times_s: np.ndarray
    signals: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, waveform: np.ndarray) -> None:
        """Attach a waveform; it must match the time-grid length."""
        waveform = np.asarray(waveform)
        if waveform.shape != self.times_s.shape:
            raise ValueError(
                f"waveform {name!r} has shape {waveform.shape}, "
                f"expected {self.times_s.shape}"
            )
        self.signals[name] = waveform

    def __getitem__(self, name: str) -> np.ndarray:
        return self.signals[name]

    def __contains__(self, name: str) -> bool:
        return name in self.signals

    def names(self) -> list[str]:
        """Signal names in insertion order."""
        return list(self.signals)

    def sample(self, name: str, time_s: float) -> float:
        """Value of ``name`` at the grid point nearest ``time_s``."""
        index = int(np.argmin(np.abs(self.times_s - time_s)))
        return float(self.signals[name][index])

    def window(self, name: str, start_s: float, stop_s: float) -> np.ndarray:
        """Slice of ``name`` over ``[start_s, stop_s)``."""
        mask = (self.times_s >= start_s) & (self.times_s < stop_s)
        return self.signals[name][mask]
