"""Behavioral CMOS circuit substrate (replaces Cadence Spectre / HSPICE).

The paper validates OISA's mixed-signal front-end with SPICE transients on
the 45 nm NCSU PDK.  This package reproduces the *behaviour* those
simulations demonstrate with first-order analytic device models driven by a
fixed-step transient engine:

* :mod:`repro.circuits.transient` — waveform sources, RC dynamics, traces.
* :mod:`repro.circuits.pixel` — 3T + photodiode active pixel (Fig. 3b).
* :mod:`repro.circuits.sense_amp` — clocked comparator (Fig. 3c).
* :mod:`repro.circuits.vam` — full VCSEL Activation Modulator (Fig. 3a/d)
  producing the Fig. 8 waveforms.
* :mod:`repro.circuits.awc` — Approximate Weight Converter current ladder
  producing the Fig. 4(b) staircase.
* :mod:`repro.circuits.adc_dac` — ADC/DAC energy/area models used only by
  the *baseline* accelerators (OISA's point is to eliminate them).
"""

from repro.circuits.adc_dac import AdcModel, DacModel
from repro.circuits.awc import AwcCircuit, AwcDesign
from repro.circuits.pixel import PixelDesign, ThreeTransistorPixel
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.transient import (
    TransientResult,
    clock_wave,
    pulse_wave,
    rc_settle,
    time_grid,
)
from repro.circuits.vam import VamCircuit, VamDesign

__all__ = [
    "AdcModel",
    "AwcCircuit",
    "AwcDesign",
    "DacModel",
    "PixelDesign",
    "SenseAmplifier",
    "ThreeTransistorPixel",
    "TransientResult",
    "VamCircuit",
    "VamDesign",
    "clock_wave",
    "pulse_wave",
    "rc_settle",
    "time_grid",
]
