"""Approximate Weight Converter circuit (paper Fig. 4).

The AWC replaces a per-weight DAC with four binary-width-ratioed PMOS
branches: weight bit ``w_i`` gates a transistor of width ``2^i * W_unit``,
and the branch currents sum at the source node, producing up to 16 current
levels (Fig. 4b) that tune an MR.

Two non-idealities matter to the architecture (and explain the paper's
observation that the [4:2] configuration is *not* more accurate than
[3:2]):

* **Branch mismatch** — Pelgrom-style width-dependent random mismatch,
  frozen per instance (a given chip's AWC always makes the same error).
* **Level compression** — the summed current saturates slightly at high
  codes because the shared source node's voltage headroom shrinks, modelled
  as a quadratic compression term.

Both shrink the usable separation between adjacent levels as the bit count
grows; at 4 bits neighbouring levels begin to overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.transient import TransientResult, integrate_rc, time_grid
from repro.util.rng import derive_rng
from repro.util.units import UA
from repro.util.validation import check_in_range, check_non_negative, check_positive

#: Maximum weight bit-width the AWC supports (paper: n <= 4).
MAX_WEIGHT_BITS = 4


@dataclass(frozen=True)
class AwcDesign:
    """Electrical design parameters of the AWC ladder.

    The MR tuning range pins the *full-scale* current: every bit-width
    configuration must span the same ~400 uA swing, so an ``n``-bit ladder
    divides that fixed range into ``2^n`` levels.  This is why higher bit
    counts are harder: the level spacing shrinks while the absolute error
    sources (``offset_sigma_a``: switch charge injection and settling
    residue; branch mismatch; compression) stay put.
    """

    full_scale_current_a: float = 397.5 * UA
    num_bits: int = MAX_WEIGHT_BITS
    mismatch_sigma: float = 0.03
    offset_sigma_a: float = 3.0 * UA
    compression_alpha: float = 0.05
    settle_tau_s: float = 0.18e-9
    vdd_v: float = 1.0
    static_power_w: float = 0.9e-6
    energy_per_update_j: float = 45e-15

    def __post_init__(self) -> None:
        check_positive("full_scale_current_a", self.full_scale_current_a)
        check_in_range("num_bits", self.num_bits, 1, MAX_WEIGHT_BITS)
        check_non_negative("mismatch_sigma", self.mismatch_sigma)
        check_non_negative("offset_sigma_a", self.offset_sigma_a)
        check_non_negative("compression_alpha", self.compression_alpha)
        check_positive("settle_tau_s", self.settle_tau_s)
        check_positive("vdd_v", self.vdd_v)
        check_non_negative("static_power_w", self.static_power_w)
        check_non_negative("energy_per_update_j", self.energy_per_update_j)

    @property
    def num_levels(self) -> int:
        """Number of distinct output levels (2^n)."""
        return 1 << self.num_bits

    @property
    def unit_current_a(self) -> float:
        """LSB current: the fixed full-scale split across 2^n - 1 steps."""
        return self.full_scale_current_a / (self.num_levels - 1)


class AwcCircuit:
    """One AWC instance with frozen per-branch mismatch.

    Parameters
    ----------
    design:
        Ladder design; ``num_bits`` branches with widths ``2^i``.
    seed:
        Seeds the mismatch pattern.  Two instances with the same seed are
        identical devices; different seeds model die-to-die variation.
    """

    def __init__(self, design: AwcDesign | None = None, seed: int | None = None) -> None:
        self.design = design or AwcDesign()
        rng = derive_rng(seed, "awc-branch-mismatch")
        widths = 2.0 ** np.arange(self.design.num_bits)
        # Pelgrom: sigma(dI/I) ~ 1/sqrt(W); wider branches match better.
        sigmas = self.design.mismatch_sigma / np.sqrt(widths)
        self._branch_gain = 1.0 + rng.normal(0.0, 1.0, self.design.num_bits) * sigmas
        self._branch_current_a = self.design.unit_current_a * widths * self._branch_gain
        # Per-code absolute error: charge injection / settling residue of
        # the specific switch pattern, frozen per device.  Code 0 draws no
        # current and has no switches toggling, so it stays exact.
        offsets = rng.normal(0.0, self.design.offset_sigma_a, self.design.num_levels)
        offsets[0] = 0.0
        self._level_offset_a = offsets

    # ------------------------------------------------------------------
    # Static levels
    # ------------------------------------------------------------------
    @property
    def branch_currents_a(self) -> np.ndarray:
        """Per-branch ON currents [A], including mismatch (LSB first)."""
        view = self._branch_current_a.view()
        view.flags.writeable = False
        return view

    def ideal_level_a(self, code: np.ndarray | int) -> np.ndarray:
        """Ideal (mismatch-free, uncompressed) level current [A]."""
        code = self._check_code(code)
        return np.asarray(code * self.design.unit_current_a)

    def level_current_a(self, code: np.ndarray | int) -> np.ndarray:
        """Actual output current [A] for digital ``code``.

        Sums the enabled branch currents then applies the compression
        nonlinearity ``I_out = I (1 - alpha * I / I_fs)``.
        """
        code = self._check_code(code)
        bits = (code[..., None] >> np.arange(self.design.num_bits)) & 1
        raw = (bits * self._branch_current_a).sum(axis=-1)
        full_scale = self.design.full_scale_current_a
        compressed = raw * (1.0 - self.design.compression_alpha * raw / full_scale)
        return np.asarray(compressed + self._level_offset_a[code])

    def all_levels_a(self) -> np.ndarray:
        """The full staircase: output current for every code."""
        return self.level_current_a(np.arange(self.design.num_levels))

    # ------------------------------------------------------------------
    # Converter-quality metrics
    # ------------------------------------------------------------------
    def dnl_lsb(self) -> np.ndarray:
        """Differential nonlinearity per code step, in LSB units."""
        levels = self.all_levels_a()
        lsb = (levels[-1] - levels[0]) / (self.design.num_levels - 1)
        return np.diff(levels) / lsb - 1.0

    def inl_lsb(self) -> np.ndarray:
        """Integral nonlinearity per code, in LSB (endpoint-fit)."""
        levels = self.all_levels_a()
        codes = np.arange(self.design.num_levels)
        lsb = (levels[-1] - levels[0]) / (self.design.num_levels - 1)
        ideal = levels[0] + codes * lsb
        return (levels - ideal) / lsb

    def monotonic(self) -> bool:
        """Whether the staircase is strictly increasing (no missing code)."""
        return bool(np.all(np.diff(self.all_levels_a()) > 0.0))

    def min_level_separation_a(self) -> float:
        """Smallest gap between adjacent output levels [A]."""
        return float(np.min(np.diff(np.sort(self.all_levels_a()))))

    # ------------------------------------------------------------------
    # Transient (Fig. 4b)
    # ------------------------------------------------------------------
    def staircase_transient(
        self,
        codes: np.ndarray | None = None,
        dwell_s: float = 1e-9,
        dt_s: float = 0.01e-9,
    ) -> TransientResult:
        """Reproduce Fig. 4(b): sweep codes and record the settling current.

        By default sweeps all 16 codes in the paper's printed order (which
        walks through every level), holding each for 1 ns over a 16 ns
        window.
        """
        if codes is None:
            codes = np.arange(self.design.num_levels)
        codes = np.asarray(codes, dtype=int)
        duration = dwell_s * len(codes)
        times = time_grid(duration, dt_s)
        index = np.minimum((times / dwell_s).astype(int), len(codes) - 1)
        target = self.level_current_a(codes[index])
        current = integrate_rc(times, target, self.design.settle_tau_s, initial_v=0.0)
        result = TransientResult(times_s=times)
        result.add("code", codes[index].astype(float))
        result.add("Ituning", current)
        result.add("Itarget", target)
        return result

    # ------------------------------------------------------------------
    # Power accounting
    # ------------------------------------------------------------------
    def update_energy_j(self) -> float:
        """Energy of reprogramming the ladder to a new code."""
        return self.design.energy_per_update_j

    def average_power_w(self, update_rate_hz: float) -> float:
        """Static + dynamic power at a given code-update rate."""
        check_non_negative("update_rate_hz", update_rate_hz)
        return self.design.static_power_w + self.design.energy_per_update_j * update_rate_hz

    # ------------------------------------------------------------------
    def _check_code(self, code: np.ndarray | int) -> np.ndarray:
        code = np.asarray(code, dtype=int)
        if code.size and (code.min() < 0 or code.max() >= self.design.num_levels):
            raise ValueError(
                f"code out of range [0, {self.design.num_levels - 1}]"
            )
        return code
