"""ADC / DAC energy, latency and area models — used by *baselines* only.

OISA's central claim is eliminating these converters; the comparison
platforms (CrossLight-like optical PIS, AppCiP-like electronic PIS, the
DaDianNao-like ASIC with a conventional sensor) all pay for them.  The
models follow the standard Walden/Murmann figure-of-merit formulation:

``E_conv = FOM * 2^bits`` per conversion,

with FOM values typical of 45–65 nm SAR converters at sensor-class speeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class AdcModel:
    """SAR-style ADC energy/latency/area model.

    Defaults are a mid-rate 45 nm SAR: FOM ~ 40 fJ/conversion-step,
    20 MS/s, with area scaling roughly linearly in 2^bits.
    """

    bits: int = 8
    fom_j_per_step: float = 40e-15
    sample_rate_hz: float = 20e6
    base_area_um2: float = 1200.0
    area_per_level_um2: float = 9.0
    static_power_w: float = 18e-6

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        check_positive("fom_j_per_step", self.fom_j_per_step)
        check_positive("sample_rate_hz", self.sample_rate_hz)
        check_non_negative("base_area_um2", self.base_area_um2)
        check_non_negative("area_per_level_um2", self.area_per_level_um2)
        check_non_negative("static_power_w", self.static_power_w)

    @property
    def levels(self) -> int:
        """Quantization levels (2^bits)."""
        return 1 << self.bits

    def energy_per_conversion_j(self) -> float:
        """Energy of one conversion [J] (Walden FOM)."""
        return self.fom_j_per_step * self.levels

    def conversion_time_s(self) -> float:
        """Time per conversion [s] at the rated sample rate."""
        return 1.0 / self.sample_rate_hz

    def power_w(self, conversion_rate_hz: float) -> float:
        """Average power at ``conversion_rate_hz`` conversions per second."""
        check_non_negative("conversion_rate_hz", conversion_rate_hz)
        if conversion_rate_hz > self.sample_rate_hz:
            raise ValueError(
                f"requested rate {conversion_rate_hz:.3g} Hz exceeds the "
                f"ADC sample rate {self.sample_rate_hz:.3g} Hz"
            )
        return self.static_power_w + self.energy_per_conversion_j() * conversion_rate_hz

    def area_um2(self) -> float:
        """Layout area estimate [um^2]."""
        return self.base_area_um2 + self.area_per_level_um2 * self.levels


@dataclass(frozen=True)
class DacModel:
    """Current-steering DAC model (weight programming in optical baselines).

    CrossLight-style accelerators need one DAC per MR tuning signal; that is
    precisely the cost OISA's AWC removes (the AWC is ~an order of magnitude
    cheaper per update because it never builds a full R-2R/current-steering
    array).
    """

    bits: int = 8
    energy_per_update_j: float = 650e-15
    update_time_s: float = 5e-9
    base_area_um2: float = 700.0
    area_per_level_um2: float = 4.0
    static_power_w: float = 9e-6

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        check_positive("energy_per_update_j", self.energy_per_update_j)
        check_positive("update_time_s", self.update_time_s)
        check_non_negative("base_area_um2", self.base_area_um2)
        check_non_negative("area_per_level_um2", self.area_per_level_um2)
        check_non_negative("static_power_w", self.static_power_w)

    @property
    def levels(self) -> int:
        """Output levels (2^bits)."""
        return 1 << self.bits

    def power_w(self, update_rate_hz: float) -> float:
        """Average power at ``update_rate_hz`` updates per second."""
        check_non_negative("update_rate_hz", update_rate_hz)
        return self.static_power_w + self.energy_per_update_j * update_rate_hz

    def area_um2(self) -> float:
        """Layout area estimate [um^2]."""
        return self.base_area_um2 + self.area_per_level_um2 * self.levels
