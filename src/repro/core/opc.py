"""Optical Processing Core: photonic MAC with full non-ideality chain.

The OPC realises a convolution in four physical steps (Fig. 2, circled
1-3 in the paper):

1. **Weight mapping** — quantized integer weight codes pass through the
   AWC ladders (static mismatch + compression), producing effective weight
   *levels*; the levels set MR carrier transmissions on the positive or
   negative rail of an arm.
2. **Crosstalk** — every MR's Lorentzian tail slightly attenuates its
   neighbours' channels, perturbing the programmed weights (systematic,
   per-arm).
3. **Modulated activation light** — ternary VCSEL symbols per pixel.
4. **Balanced detection** — the BPD subtracts the rails and adds read
   noise (shot + thermal, expressed as a fraction of the arm's full-scale
   MAC).

``program`` performs steps 1-2 once per kernel set (the paper notes the
mapping "can bypass this step" afterwards); ``convolve``/``dot`` run steps
3-4 per frame, vectorised with the same im2col kernels the NN substrate
uses.

Units: weights and activations are dimensionless (weight units /
ternary optical levels on a unit scale); tuning budgets are J/s/W;
resonance detunings are metres of wavelength shift.  Paper anchors:
Section III (OPC structure, AWC/weight mapping, MR device engineering)
and Fig. 2's circled datapath stages.

Bit-identity contract: the vectorized ``program`` chain (AWC realize →
batched crosstalk → batched tuning budget) must produce *exactly* the
same floats as the retained scalar loops in :mod:`repro.core.reference`
— same elementwise operations, sequential-``sum`` accumulation order
(``cumsum``, not pairwise) — enforced by
``tests/test_vectorized_equivalence.py`` and the ``repr()`` goldens in
``tests/goldens/``.  The serving cache
(:mod:`repro.engine.cache`) and the recalibration path
(:mod:`repro.engine.health`) both lean on this: reprogramming a die is
guaranteed to reproduce the cached record bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.awc import AwcWeightMapper
from repro.core.config import OISAConfig
from repro.nn.functional import conv2d_forward
from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import TuningBudget
from repro.photonics.wdm import WdmGrid, effective_arm_transmissions
from repro.util.rng import derive_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ProgrammedWeights:
    """Result of mapping a weight tensor onto the OPC.

    ``realized`` is the effective weight tensor the optics implement (same
    shape/scale as the ideal quantized weights); ``tuning`` prices the MR
    retunes the mapping needed.
    """

    ideal: np.ndarray
    realized: np.ndarray
    scale: float
    tuning: TuningBudget
    mapping_iterations: int

    @property
    def weight_error_rms(self) -> float:
        """RMS of (realized - ideal), in weight units."""
        return float(np.sqrt(np.mean((self.realized - self.ideal) ** 2)))

    @property
    def weight_error_relative(self) -> float:
        """RMS error relative to the full-scale weight magnitude."""
        full_scale = float(np.max(np.abs(self.ideal)))
        if full_scale == 0.0:
            return 0.0
        return self.weight_error_rms / full_scale


class OpticalProcessingCore:
    """Behavioral OPC bound to one :class:`~repro.core.config.OISAConfig`."""

    def __init__(
        self,
        config: OISAConfig | None = None,
        seed: int | None = None,
        enable_crosstalk: bool = True,
        enable_read_noise: bool = True,
    ) -> None:
        self.config = config or OISAConfig()
        self.seed = seed
        self.enable_crosstalk = enable_crosstalk
        self.enable_read_noise = enable_read_noise
        self.awc = AwcWeightMapper(
            self.config.awc_design,
            num_units=self.config.num_awc_units,
            seed=seed,
        )
        self.ring = MicroringResonator(self.config.microring)
        self.grid = self.config.wdm
        self._read_rng = derive_rng(seed, "opc-read-noise")
        self._programmed: ProgrammedWeights | None = None

    # ------------------------------------------------------------------
    # Weight programming
    # ------------------------------------------------------------------
    def program(self, quantized_weights: np.ndarray, scale: float) -> ProgrammedWeights:
        """Map a fake-quantized weight tensor onto the MR array.

        Parameters
        ----------
        quantized_weights:
            Tensor of shape (F, C, K, K) (conv) or (out, in) (dense) whose
            values are integer codes times ``scale``.
        scale:
            The quantizer scale (weight units per LSB).
        """
        check_positive("scale", scale)
        ideal = np.asarray(quantized_weights, dtype=float)
        realized = self._realize(ideal, scale)
        tuning = self._mapping_tuning_budget(realized, scale)
        self._programmed = ProgrammedWeights(
            ideal=ideal,
            realized=realized,
            scale=scale,
            tuning=tuning,
            mapping_iterations=self.config.weight_mapping_iterations,
        )
        return self._programmed

    def install(self, programmed: ProgrammedWeights) -> ProgrammedWeights:
        """Restore a previously computed weight mapping without re-running it.

        The serving engine caches :class:`ProgrammedWeights` per (kernel
        set, weight bits, die seed); installing a cached record makes a
        kernel swap back to a known set O(1) instead of repeating the
        AWC realization + crosstalk + tuning-budget chain.  The record must
        come from an OPC with the same configuration and seed — the cache
        key enforces that.
        """
        self._programmed = programmed
        return programmed

    @property
    def is_programmed(self) -> bool:
        """Whether a weight set is currently mapped."""
        return self._programmed is not None

    @property
    def programmed(self) -> ProgrammedWeights:
        """The currently-mapped weights (raises if nothing is programmed)."""
        if self._programmed is None:
            raise RuntimeError("no weights programmed; call program() first")
        return self._programmed

    def _realize(self, quantized: np.ndarray, scale: float) -> np.ndarray:
        """AWC realization + (optional) crosstalk — the shared cold chain.

        Single owner of the realize logic for both :meth:`program` and the
        :meth:`weight_transform` QAT hook.
        """
        realized = self.awc.realize_quantized_weights(quantized, scale)
        if self.enable_crosstalk:
            realized = self._apply_crosstalk(realized, scale)
        return realized

    def _apply_crosstalk(self, weights: np.ndarray, scale: float) -> np.ndarray:
        """Perturb weights by each arm's inter-channel crosstalk.

        Weights are grouped into arms (one 3x3 plane per arm; larger
        kernels chunk across arms), magnitudes are mapped onto MR
        transmissions in [T_min, 1], every arm's effective transmissions
        are computed in one batched Lorentzian-tail tensor, and the result
        is mapped back to weight units.
        """
        flat = weights.reshape(-1)
        arm_size = self.config.mrs_per_arm
        t_min = self.ring.min_transmission
        full_scale = float(np.max(np.abs(flat)))
        if full_scale == 0.0:
            return weights.copy()

        padded_len = -(-flat.size // arm_size) * arm_size
        padded = np.zeros(padded_len)
        padded[: flat.size] = flat
        arms = padded.reshape(-1, arm_size)

        span = 1.0 - t_min
        magnitudes = np.abs(arms) / full_scale
        transmissions = t_min + magnitudes * span
        effective = effective_arm_transmissions(
            self.grid, transmissions, ring=self.ring
        )
        recovered = np.clip((effective - t_min) / span, 0.0, None) * full_scale
        out = np.sign(arms) * recovered
        return out.reshape(-1)[: flat.size].reshape(weights.shape)

    def _mapping_tuning_budget(self, weights: np.ndarray, scale: float) -> TuningBudget:
        """Price the MR retunes of one full weight mapping.

        Each weight needs a resonance shift proportional to its target
        transmission; the controller runs ``weight_mapping_iterations``
        sequential AWC sweeps, so total latency is iterations x per-sweep
        settle time while energy sums over all MRs.  The detuning solve and
        the cost aggregation are one batched call each.
        """
        flat = np.abs(weights.reshape(-1))
        full_scale = float(flat.max())
        t_min = self.ring.min_transmission
        if full_scale == 0.0:
            return TuningBudget(0.0, 0.0, 0.0)
        transmissions = t_min + (flat / full_scale) * (1.0 - t_min)
        shifts = self.ring.detuning_for_transmission(
            np.clip(transmissions, t_min, 1.0)
        )
        per_sweep = self.config.tuning.mapping_cost(shifts)
        iterations = self.config.weight_mapping_iterations
        return TuningBudget(
            energy_j=per_sweep.energy_j,
            latency_s=per_sweep.latency_s * iterations,
            holding_power_w=per_sweep.holding_power_w,
        )

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def convolve(
        self,
        activations: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """First-layer convolution on ternary-encoded activations.

        ``activations`` is (N, C, H, W) with values in {0, 0.5, 1} (the
        VAM's three optical levels on a unit scale).  Uses the *realized*
        weights and adds per-read BPD noise.
        """
        programmed = self.programmed
        weights = programmed.realized
        if weights.ndim != 4:
            raise ValueError("programmed weights are not convolutional")
        out, _ = conv2d_forward(
            np.asarray(activations, dtype=float), weights, None, stride, padding
        )
        return self._add_read_noise(out, weights)

    def dot(self, activations: np.ndarray) -> np.ndarray:
        """First-layer dense product on (N, D) ternary activations."""
        programmed = self.programmed
        weights = programmed.realized
        if weights.ndim != 2:
            raise ValueError("programmed weights are not dense")
        out = np.asarray(activations, dtype=float) @ weights.T
        return self._add_read_noise(out, weights)

    def _add_read_noise(self, values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if not self.enable_read_noise or self.config.bpd_read_noise_fraction == 0.0:
            return values
        full_scale_weight = float(np.max(np.abs(weights)))
        arm_full_scale = self.config.macs_per_arm * full_scale_weight  # A=1 max
        if weights.ndim == 4:
            # Cross-channel summation combines C independent arm reads,
            # each kernel plane spanning ceil(K^2 / arm size) arms.
            arms_per_plane = -(-weights.shape[2] * weights.shape[3] // self.config.mrs_per_arm)
            num_arm_reads = weights.shape[1] * arms_per_plane
        else:
            num_arm_reads = max(1, -(-weights.shape[1] // self.config.mrs_per_bank))
        sigma = (
            self.config.bpd_read_noise_fraction
            * arm_full_scale
            * np.sqrt(num_arm_reads)
        )
        return values + self._read_rng.normal(0.0, sigma, size=values.shape)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def weight_transform(self, scale_hint: float | None = None):
        """A callable for :class:`~repro.nn.quant.QuantConv2D`'s hook.

        Returns a function mapping fake-quantized float weights to the
        hardware-realized weights, so QAT models can be evaluated with the
        optics in the loop without rebuilding the network.
        """

        def transform(quantized: np.ndarray) -> np.ndarray:
            max_abs = float(np.max(np.abs(quantized)))
            if max_abs == 0.0:
                return quantized
            top_level = self.awc.num_levels - 1 if self.awc.design.num_bits > 1 else 1
            scale = scale_hint if scale_hint is not None else max_abs / top_level
            return self._realize(quantized, scale)

        return transform
