"""Kernel-to-OPC hardware mapping and scheduling (Section III-B).

The paper's allocation rules:

* a **3x3 kernel** fits in one arm (9 of its 10 MRs), so each bank holds
  ``n = 5`` kernels and the whole OPC computes
  ``f * n * K^2 = 80 * 5 * 9 = 3600`` MACs per cycle;
* a **5x5 kernel** (25 weights) needs one *bank* (its 50 MRs across 5
  arms), ``n = 1`` -> ``80 * 25 = 2000`` MACs/cycle, partial sums combined
  in the VOM;
* a **7x7 kernel** (49 weights) likewise occupies one bank ->
  ``80 * 49 = 3920`` MACs/cycle.

A full weight reprogram walks the AWC units over all 4000 MRs in
``total_mrs / num_awc_units = 100`` iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SUPPORTED_KERNEL_SIZES, OISAConfig
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ConvWorkload:
    """First-layer convolution workload descriptor."""

    kernel_size: int
    num_kernels: int
    in_channels: int
    image_height: int
    image_width: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if self.kernel_size not in SUPPORTED_KERNEL_SIZES:
            raise ValueError(
                f"OISA supports kernel sizes {SUPPORTED_KERNEL_SIZES}, "
                f"got {self.kernel_size}"
            )
        check_positive("num_kernels", self.num_kernels)
        check_positive("in_channels", self.in_channels)
        check_positive("image_height", self.image_height)
        check_positive("image_width", self.image_width)
        check_positive("stride", self.stride)
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")

    @property
    def output_height(self) -> int:
        """Output rows of the convolution."""
        return (
            self.image_height + 2 * self.padding - self.kernel_size
        ) // self.stride + 1

    @property
    def output_width(self) -> int:
        """Output columns of the convolution."""
        return (
            self.image_width + 2 * self.padding - self.kernel_size
        ) // self.stride + 1

    @property
    def windows_per_channel(self) -> int:
        """Stride positions of one kernel over one channel."""
        return self.output_height * self.output_width

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates of the layer."""
        return (
            self.windows_per_channel
            * self.num_kernels
            * self.in_channels
            * self.kernel_size**2
        )

    @property
    def total_ops(self) -> int:
        """Total ops counting multiply and add separately (2 x MACs)."""
        return 2 * self.total_macs


def kernels_per_bank(config: OISAConfig, kernel_size: int) -> int:
    """How many kernels of ``kernel_size`` one bank holds (paper's ``n``)."""
    if kernel_size not in SUPPORTED_KERNEL_SIZES:
        raise ValueError(
            f"OISA supports kernel sizes {SUPPORTED_KERNEL_SIZES}, got {kernel_size}"
        )
    weights = kernel_size**2
    if weights <= config.macs_per_arm:
        # One kernel per arm (3x3 in the default geometry).
        return config.arms_per_bank
    if weights <= config.mrs_per_bank:
        # Kernel spans multiple arms; one kernel per bank (5x5, 7x7).
        return 1
    raise ValueError(
        f"kernel {kernel_size}x{kernel_size} exceeds a bank's "
        f"{config.mrs_per_bank} MRs"
    )


def macs_per_cycle(config: OISAConfig, kernel_size: int) -> int:
    """Architecture-wide MACs per cycle: ``f * (n * K^2)``.

    Reproduces the paper's 3600 / 2000 / 3920 for K = 3 / 5 / 7 under the
    default geometry.
    """
    n = kernels_per_bank(config, kernel_size)
    return config.num_banks * n * kernel_size**2


def arms_per_kernel(config: OISAConfig, kernel_size: int) -> int:
    """Arms one kernel instance occupies."""
    if kernel_size**2 <= config.macs_per_arm:
        return 1
    return config.arms_per_bank


@dataclass(frozen=True)
class MappingPlan:
    """Static allocation of a conv workload onto the OPC."""

    workload: ConvWorkload
    kernels_per_bank: int
    arms_per_kernel: int
    macs_per_cycle: int
    kernel_slots: int
    mapping_rounds: int
    compute_cycles: int
    mr_utilization: float

    @property
    def total_cycles(self) -> int:
        """Compute cycles only (mapping latency priced separately)."""
        return self.compute_cycles


def plan_convolution(config: OISAConfig, workload: ConvWorkload) -> MappingPlan:
    """Allocate a convolution onto the OPC and count compute cycles.

    The OPC offers ``num_banks * kernels_per_bank`` *kernel slots*.  Each
    distinct (output-channel, input-channel) kernel plane needs a slot;
    when the workload has more planes than slots the controller remaps
    between rounds (``mapping_rounds``).  Within one round, every cycle
    evaluates one stride position for each resident plane, so the cycle
    count is ``windows * mapping_rounds``.
    """
    slots = config.num_banks * kernels_per_bank(config, workload.kernel_size)
    planes = workload.num_kernels * workload.in_channels
    rounds = math.ceil(planes / slots)
    windows = workload.windows_per_channel
    cycles = windows * rounds

    used_mrs_per_kernel = workload.kernel_size**2
    resident = min(planes, slots)
    used_mrs = resident * used_mrs_per_kernel
    utilization = used_mrs / config.total_mrs

    return MappingPlan(
        workload=workload,
        kernels_per_bank=kernels_per_bank(config, workload.kernel_size),
        arms_per_kernel=arms_per_kernel(config, workload.kernel_size),
        macs_per_cycle=macs_per_cycle(config, workload.kernel_size),
        kernel_slots=slots,
        mapping_rounds=rounds,
        compute_cycles=cycles,
        mr_utilization=utilization,
    )


@dataclass(frozen=True)
class MlpWorkload:
    """First-layer MLP (dense) workload descriptor."""

    input_features: int
    output_features: int

    def __post_init__(self) -> None:
        check_positive("input_features", self.input_features)
        check_positive("output_features", self.output_features)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates of the dense layer."""
        return self.input_features * self.output_features


@dataclass(frozen=True)
class MlpMappingPlan:
    """Allocation of a dense layer onto banks with VOM partial summing."""

    workload: MlpWorkload
    chunks_per_neuron: int
    neurons_per_round: int
    mapping_rounds: int
    compute_cycles: int
    vom_combines: int


def plan_mlp(config: OISAConfig, workload: MlpWorkload) -> MlpMappingPlan:
    """Split huge dot products across banks (the VOM's purpose).

    Each neuron's ``input_features``-long dot product is chopped into
    bank-sized chunks of ``mrs_per_bank`` elements; the VOM accumulates the
    per-bank partial sums electronically.
    """
    chunk = config.mrs_per_bank
    chunks_per_neuron = math.ceil(workload.input_features / chunk)
    neurons_per_round = max(config.num_banks // chunks_per_neuron, 1)
    rounds = math.ceil(workload.output_features / neurons_per_round)
    # One cycle computes all resident partial sums; VOM combining is
    # pipelined with the next optical cycle.
    cycles = rounds
    vom_combines = workload.output_features * (chunks_per_neuron - 1)
    return MlpMappingPlan(
        workload=workload,
        chunks_per_neuron=chunks_per_neuron,
        neurons_per_round=neurons_per_round,
        mapping_rounds=rounds,
        compute_cycles=cycles,
        vom_combines=vom_combines,
    )


def weight_mapping_iterations(config: OISAConfig) -> int:
    """AWC sweeps needed to (re)program the full OPC (100 in the paper)."""
    return config.weight_mapping_iterations
