"""Behavioral Approximate Weight Converter bank (architecture view).

Bridges the circuit-level :class:`~repro.circuits.awc.AwcCircuit` to the
weight domain the neural network lives in.  Each of the OPC's 40 AWC units
is an independent physical ladder with its own frozen mismatch; quantized
integer weight codes are realised as (slightly wrong) currents, and the
ratio ``I_actual / I_lsb_ideal`` is the *effective* weight level the MR ends
up programmed to.

This is the mechanism behind the paper's Table II observation that
``OISA[4:2]`` is **not** more accurate than ``OISA[3:2]``: at 4 bits the
ideal level spacing shrinks below the ladder's static error, so the extra
quantization resolution buys nothing (and can hurt).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.circuits.awc import AwcCircuit, AwcDesign
from repro.util.rng import spawn_seeds
from repro.util.validation import check_positive


class AwcWeightMapper:
    """A bank of AWC units realising signed integer weight codes.

    Parameters
    ----------
    design:
        Ladder electrical design; ``design.num_bits`` sets the weight
        bit-width (1..4).
    num_units:
        Physical AWC instances (40 in the paper).  MRs are assigned to
        units round-robin, so each weight consistently sees *its* unit's
        mismatch pattern.
    seed:
        Die seed; different seeds are different chips.
    """

    def __init__(
        self,
        design: AwcDesign | None = None,
        num_units: int = 40,
        seed: int | None = None,
    ) -> None:
        check_positive("num_units", num_units)
        self.design = design or AwcDesign()
        self.num_units = int(num_units)
        unit_seeds = spawn_seeds(seed, self.num_units)
        self.units = [
            AwcCircuit(self.design, seed=unit_seed) for unit_seed in unit_seeds
        ]
        # Per-unit realized level tables in *weight-level* units:
        # table[u, c] ~ c for an ideal converter.
        levels = np.stack([unit.all_levels_a() for unit in self.units])
        self._level_table = levels / self.design.unit_current_a

    @property
    def num_levels(self) -> int:
        """Distinct magnitude levels per unit (2^bits)."""
        return self.design.num_levels

    @property
    def level_table(self) -> np.ndarray:
        """(num_units, num_levels) realized levels in LSB units (read-only)."""
        view = self._level_table.view()
        view.flags.writeable = False
        return view

    def realize_codes(
        self, codes: np.ndarray, unit_assignment: np.ndarray | None = None
    ) -> np.ndarray:
        """Realize signed integer codes as effective weight levels.

        Parameters
        ----------
        codes:
            Signed integers with ``|code| < 2**bits``; sign selects the
            positive or negative waveguide rail.
        unit_assignment:
            Which AWC unit programs each element (same shape as ``codes``).
            Defaults to a round-robin assignment in flat index order —
            exactly how the controller walks MRs during mapping iterations.
        """
        codes = np.asarray(codes)
        if codes.size == 0:
            return np.zeros_like(codes, dtype=float)
        magnitude = np.abs(codes).astype(int)
        if magnitude.max() >= self.num_levels:
            raise ValueError(
                f"|code| must be < {self.num_levels}, got {magnitude.max()}"
            )
        if unit_assignment is None:
            flat = np.arange(codes.size) % self.num_units
            unit_assignment = flat.reshape(codes.shape)
        else:
            unit_assignment = np.asarray(unit_assignment, dtype=int)
            if unit_assignment.shape != codes.shape:
                raise ValueError("unit_assignment must match the codes shape")
            if unit_assignment.min() < 0 or unit_assignment.max() >= self.num_units:
                raise ValueError("unit_assignment out of range")
        realized = self._level_table[unit_assignment, magnitude]
        return np.sign(codes) * realized

    def realize_quantized_weights(
        self, quantized: np.ndarray, scale: float
    ) -> np.ndarray:
        """Realize fake-quantized float weights (``codes * scale``).

        The inverse of :meth:`UniformWeightQuantizer.quantize
        <repro.nn.quant.UniformWeightQuantizer.quantize>`: recover the
        integer codes, push them through the ladders, rescale.
        """
        check_positive("scale", scale)
        quantized = np.asarray(quantized, dtype=float)
        codes = np.round(quantized / scale).astype(int)
        return self.realize_codes(codes) * scale

    def worst_case_level_error_lsb(self) -> float:
        """Largest deviation |realized - ideal| across units, in LSBs."""
        ideal = np.arange(self.num_levels)
        return float(np.max(np.abs(self._level_table - ideal)))

    def mean_level_error_lsb(self) -> float:
        """Mean |realized - ideal| across units and codes, in LSBs."""
        ideal = np.arange(self.num_levels)
        return float(np.mean(np.abs(self._level_table - ideal)))

    def level_separability(self) -> float:
        """Min gap between adjacent realized levels / ideal spacing.

        Values near 1 mean the converter resolves every code cleanly;
        values near 0 mean adjacent codes collide (the 4-bit failure mode).
        """
        gaps = np.diff(np.sort(self._level_table, axis=1), axis=1)
        return float(gaps.min())

    def with_bits(self, bits: int, seed: int | None = None) -> "AwcWeightMapper":
        """A new mapper at a different bit-width (same geometry)."""
        return AwcWeightMapper(
            replace(self.design, num_bits=bits), num_units=self.num_units, seed=seed
        )
