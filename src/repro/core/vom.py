"""VCSEL Output Modulator: partial-sum decomposition.

Large dot products (5x5/7x7 kernels spanning several arms, or MLP rows
spanning several banks) exceed what one balanced photodiode can sum
optically.  The VOM re-modulates each arm's BPD result onto an output
VCSEL so partial sums can be combined — either in extra optical summation
arms or electronically before transmission (Section III, component (v)).

This module models the *functional* combining (exact addition plus a small
re-modulation noise) and its energy/latency so the mapping and energy
layers can price it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import derive_rng
from repro.util.validation import check_non_negative, check_positive


@dataclass
class OutputModulator:
    """Partial-sum combiner with re-modulation noise.

    ``remodulation_sigma`` is the relative noise added each time a partial
    result is re-emitted by an output VCSEL (driver + laser RIN); exact
    electronic combining corresponds to ``remodulation_sigma = 0``.
    """

    remodulation_sigma: float = 0.002
    energy_per_combine_j: float = 60e-15
    combine_latency_s: float = 120e-12
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_non_negative("remodulation_sigma", self.remodulation_sigma)
        check_non_negative("energy_per_combine_j", self.energy_per_combine_j)
        check_non_negative("combine_latency_s", self.combine_latency_s)
        self._rng = derive_rng(self.seed, "vom-remodulation")

    def combine(self, partial_sums: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum partial results along ``axis`` with re-modulation noise.

        Each partial term passes through one output VCSEL, so each picks up
        independent relative noise before the addition.
        """
        partials = np.asarray(partial_sums, dtype=float)
        if self.remodulation_sigma > 0.0:
            scale_noise = self._rng.normal(
                1.0, self.remodulation_sigma, size=partials.shape
            )
            partials = partials * scale_noise
        return partials.sum(axis=axis)

    def combine_energy_j(self, num_partials: int, num_outputs: int) -> float:
        """Energy to combine ``num_partials`` terms for ``num_outputs`` values."""
        check_positive("num_partials", num_partials)
        check_non_negative("num_outputs", num_outputs)
        combines = max(num_partials - 1, 0) * num_outputs
        return combines * self.energy_per_combine_j

    def combine_latency(self, num_partials: int) -> float:
        """Latency of a combining tree (log-depth) [s]."""
        check_positive("num_partials", num_partials)
        depth = int(np.ceil(np.log2(num_partials))) if num_partials > 1 else 0
        return depth * self.combine_latency_s

    def split_dot_product(
        self, vector_length: int, chunk: int
    ) -> list[tuple[int, int]]:
        """Chop a long dot product into (start, stop) chunks of <= ``chunk``.

        Mirrors the controller's MLP decomposition: contiguous input slices
        assigned to successive banks.
        """
        check_positive("vector_length", vector_length)
        check_positive("chunk", chunk)
        return [
            (start, min(start + chunk, vector_length))
            for start in range(0, vector_length, chunk)
        ]
