"""Power, energy and area accounting for OISA.

Conventions (documented in EXPERIMENTS.md):

* **Peak throughput** follows the paper's op definition: one *arm-level*
  MAC result per cycle, i.e. ``total_arms / mac_cycle_s``; with 400 arms at
  55.8 ps this is the paper's ~7.1 TOp/s.
* **Peak power** is drawn while the OPC computes: active VCSELs, MR tuning
  hold (the "TED" bars of Fig. 9), BPD+TIA front-ends, sense amps clocked
  at the cycle rate, AWC static, control.  Efficiency = peak throughput /
  peak power (paper: 6.68 TOp/s/W).
* **Average power** duty-cycles the peak over a frame period (compute
  occupies ~1 us of a 1 ms frame at 1000 FPS) and adds the per-frame
  electronic costs; this is the Fig. 9 / Table I quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.mapping import ConvWorkload, MappingPlan, plan_convolution
from repro.memarch.cacti import SramModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PowerBreakdown:
    """Named per-component powers [W] (or energies [J]; see context)."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of all components."""
        return float(sum(self.components.values()))

    def fraction(self, name: str) -> float:
        """Share of one component in the total."""
        total = self.total
        return self.components.get(name, 0.0) / total if total > 0 else 0.0

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Every component multiplied by ``factor``."""
        return PowerBreakdown(
            {name: value * factor for name, value in self.components.items()}
        )

    def merged(self, other: "PowerBreakdown") -> "PowerBreakdown":
        """Component-wise sum with another breakdown."""
        merged = dict(self.components)
        for name, value in other.components.items():
            merged[name] = merged.get(name, 0.0) + value
        return PowerBreakdown(merged)


@dataclass(frozen=True)
class AreaBreakdown:
    """Named component areas [mm^2]."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total area [mm^2]."""
        return float(sum(self.components.values()))


class OISAEnergyModel:
    """Bottom-up power/energy/area model of one OISA node."""

    #: Control / clock-distribution / command-decode power while computing.
    CONTROL_POWER_W = 0.040
    #: TIA + comparator power per arm read chain.
    TIA_POWER_PER_ARM_W = 250e-6
    #: Energy per VOM partial-sum combine (driver + modulator).
    VOM_ENERGY_PER_COMBINE_J = 60e-15
    #: Output optical transmitter energy per feature value shipped off-chip.
    TRANSMIT_ENERGY_PER_VALUE_J = 90e-15
    #: Average resonance shift per mapped weight (fraction of one FWHM),
    #: used for the tuning-hold estimate when no weights are given.
    TYPICAL_SHIFT_FWHM = 0.8

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()
        # Kernel banks (the paper sizes them with CACTI): one word per MR
        # weight, read once per mapping sweep.
        capacity = max(self.config.total_mrs * self.config.weight_bits // 8, 64)
        self.kernel_bank = SramModel(
            capacity_bytes=capacity, word_bits=8, technology_nm=65
        )

    # ------------------------------------------------------------------
    # Peak (while-computing) power
    # ------------------------------------------------------------------
    def active_vcsels_per_cycle(self, kernel_size: int = 3) -> int:
        """VCSELs firing in one cycle.

        Each bank processes one stride window; the kernels co-resident in a
        bank share that window's activation light through splitters, so the
        distinct modulated wavelengths per bank equal the window size.
        """
        return self.config.num_banks * kernel_size**2

    def vcsel_power_w(self, kernel_size: int = 3) -> float:
        """Electrical power of all active VCSELs during compute."""
        per_vcsel = self.config.vcsel_encoder.mean_symbol_power_w()
        return self.active_vcsels_per_cycle(kernel_size) * per_vcsel

    def tuning_hold_power_w(self) -> float:
        """Thermo-optic holding power across all mapped MRs ("TED")."""
        ring_fwhm_m = 3.1e-10  # ~FWHM of the Q=5000 design at 1550 nm
        mean_shift_m = self.TYPICAL_SHIFT_FWHM * ring_fwhm_m
        per_mr = self.config.tuning.to_power_per_nm_w * (mean_shift_m / 1e-9)
        return self.config.total_mrs * per_mr

    def bpd_power_w(self) -> float:
        """BPD + TIA front-end power across all arms."""
        return self.config.total_arms * self.TIA_POWER_PER_ARM_W

    def sense_amp_power_w(self, kernel_size: int = 3) -> float:
        """SA evaluation power at the compute cycle rate.

        Each cycle thresholds a fresh window of pixels (two SAs per pixel).
        """
        pixels_per_cycle = self.active_vcsels_per_cycle(kernel_size)
        decisions_per_s = 2.0 * pixels_per_cycle / self.config.mac_cycle_s
        return self.config.vam_design.sa_energy_per_decision_j * decisions_per_s

    def awc_static_power_w(self) -> float:
        """Static bias power of the AWC ladders."""
        return self.config.num_awc_units * self.config.awc_design.static_power_w

    def peak_power_w(self, kernel_size: int = 3) -> PowerBreakdown:
        """Component power draw while the OPC is computing."""
        return PowerBreakdown(
            {
                "vcsel": self.vcsel_power_w(kernel_size),
                "ted": self.tuning_hold_power_w(),
                "bpd": self.bpd_power_w(),
                "sense_amp": self.sense_amp_power_w(kernel_size),
                "awc": self.awc_static_power_w(),
                "control": self.CONTROL_POWER_W,
            }
        )

    # ------------------------------------------------------------------
    # Throughput / efficiency
    # ------------------------------------------------------------------
    def peak_throughput_ops(self) -> float:
        """Arm-level MAC results per second (the paper's op definition)."""
        return self.config.total_arms / self.config.mac_cycle_s

    def peak_throughput_scalar_macs(self, kernel_size: int = 3) -> float:
        """Scalar multiply-accumulates per second (f * n * K^2 per cycle)."""
        from repro.core.mapping import macs_per_cycle

        return macs_per_cycle(self.config, kernel_size) / self.config.mac_cycle_s

    def efficiency_tops_per_watt(self, kernel_size: int = 3) -> float:
        """Peak efficiency in TOp/s/W (paper: 6.68)."""
        power = self.peak_power_w(kernel_size).total
        return (self.peak_throughput_ops() / 1e12) / power

    # ------------------------------------------------------------------
    # Per-frame energy and average power
    # ------------------------------------------------------------------
    def compute_time_s(self, plan: MappingPlan) -> float:
        """Pure OPC compute time of one frame's first layer."""
        return plan.compute_cycles * self.config.mac_cycle_s

    def frame_energy_j(
        self,
        plan: MappingPlan,
        include_mapping: bool = False,
        mapping_energy_j: float = 0.0,
    ) -> PowerBreakdown:
        """Per-frame first-layer energy by component.

        ``include_mapping`` adds the one-off weight-mapping cost (AWC
        updates + MR retunes); steady-state video reuses mapped kernels, so
        the default excludes it, matching the paper's assumption that
        "activation and weight values are already mapped to the core".
        """
        kernel = plan.workload.kernel_size
        compute_s = self.compute_time_s(plan)
        peak = self.peak_power_w(kernel)
        energy = {
            name: power * compute_s for name, power in peak.components.items()
        }

        # Per-frame electronics: every pixel thresholded + driver switched
        # once per frame (global shutter), features transmitted off-chip.
        num_pixels = self.config.num_pixels
        vam = self.config.vam_design
        energy["sense_amp"] += 2.0 * vam.sa_energy_per_decision_j * num_pixels
        energy["driver"] = vam.driver_energy_per_symbol_j * num_pixels
        outputs = plan.workload.windows_per_channel * plan.workload.num_kernels
        energy["transmit"] = self.TRANSMIT_ENERGY_PER_VALUE_J * outputs
        combines = outputs * max(
            plan.workload.in_channels * plan.arms_per_kernel - 1, 0
        )
        energy["vom"] = self.VOM_ENERGY_PER_COMBINE_J * combines

        if include_mapping:
            updates = self.config.total_mrs
            energy["mapping"] = (
                self.config.awc_design.energy_per_update_j * updates
                + mapping_energy_j
            )
            # Kernel-bank reads feeding the AWC units during the sweep.
            energy["kernel_bank"] = self.kernel_bank.read_energy_j() * updates
        return PowerBreakdown(energy)

    def mlp_compute_time_s(self, plan) -> float:
        """Pure OPC compute time of one dense (VOM-split) first layer."""
        return plan.compute_cycles * self.config.mac_cycle_s

    def mlp_frame_energy_j(
        self,
        plan,
        kernel_size: int = 3,
        include_mapping: bool = False,
        mapping_energy_j: float = 0.0,
    ) -> PowerBreakdown:
        """Per-frame energy of a dense first layer (VOM-split partial sums).

        The OPC draws its peak compute power for the plan's cycles and the
        VOM pays one combine per bank-split partial sum; ``kernel_size``
        only selects the VCSEL/SA activity pattern (dense mode drives the
        3x3 grouping).  ``include_mapping`` adds the one-off weight-mapping
        cost exactly as :meth:`frame_energy_j` does.
        """
        compute_s = self.mlp_compute_time_s(plan)
        peak = self.peak_power_w(kernel_size)
        energy = {
            "compute": peak.total * compute_s,
            "vom": plan.vom_combines * self.VOM_ENERGY_PER_COMBINE_J,
        }
        if include_mapping:
            updates = self.config.total_mrs
            energy["mapping"] = (
                self.config.awc_design.energy_per_update_j * updates
                + mapping_energy_j
            )
            energy["kernel_bank"] = self.kernel_bank.read_energy_j() * updates
        return PowerBreakdown(energy)

    def average_power_w(
        self, plan: MappingPlan, frame_rate_hz: float | None = None
    ) -> PowerBreakdown:
        """Average power at a sustained frame rate (Fig. 9 quantity)."""
        rate = frame_rate_hz if frame_rate_hz is not None else self.config.frame_rate_hz
        check_positive("frame_rate_hz", rate)
        frame_time = 1.0 / rate
        plan_time = self.compute_time_s(plan)
        if plan_time > frame_time:
            raise ValueError(
                f"compute time {plan_time:.3g}s exceeds the frame budget "
                f"{frame_time:.3g}s at {rate} FPS"
            )
        return self.frame_energy_j(plan).scaled(rate)

    def electronics_power_w(self, plan: MappingPlan, frame_rate_hz: float | None = None) -> float:
        """Average power of the electronic path only (Table I convention).

        Counts the per-pixel thresholding/driving electronics, AWC static
        bias, TIA duty and control duty — the components comparable with
        the electronic PIS rows of Table I, whose optical source power is
        accounted separately by the paper.
        """
        rate = frame_rate_hz if frame_rate_hz is not None else self.config.frame_rate_hz
        breakdown = self.average_power_w(plan, rate)
        electronic = ("sense_amp", "driver", "awc", "control", "vom")
        return float(sum(breakdown.components.get(name, 0.0) for name in electronic))

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    #: Layout pitch of one MR including its heater and trench [m].
    MR_PITCH_M = 20e-6
    #: BPD + TIA layout area per arm [m^2].
    BPD_AREA_M2 = 190e-12
    #: AWC ladder + decode area per unit [m^2].
    AWC_AREA_M2 = 1400e-12
    #: Per-pixel VAM electronics (two SAs + driver share) [m^2].
    VAM_AREA_PER_PIXEL_M2 = 7.5e-12
    #: Controller + clocking + IO [m^2].
    CONTROL_AREA_M2 = 0.065e-6

    def area_mm2(self) -> AreaBreakdown:
        """OPC + periphery area (the paper's 1.92 mm^2 figure).

        The unmodified pixel array is reported separately (the paper's
        Table I notes "no modification on the pixel array").
        """
        mr_area = self.config.total_mrs * self.MR_PITCH_M**2
        bpd_area = self.config.total_arms * self.BPD_AREA_M2
        awc_area = self.config.num_awc_units * self.AWC_AREA_M2
        vam_area = self.config.num_pixels * self.VAM_AREA_PER_PIXEL_M2
        return AreaBreakdown(
            {
                "mr_array": mr_area * 1e6,
                "bpd": bpd_area * 1e6,
                "awc": awc_area * 1e6,
                "vam": vam_area * 1e6,
                "control": self.CONTROL_AREA_M2 * 1e6,
            }
        )

    def pixel_array_area_mm2(self) -> float:
        """Area of the (unmodified) imager array."""
        return self.config.num_pixels * (self.config.pixel_pitch_m**2) * 1e6


def resnet18_first_layer_workload(config: OISAConfig | None = None) -> ConvWorkload:
    """The evaluation workload: ResNet-18's first conv on the imager frame.

    64 kernels of 3x3 over the sensor's 128x128 frame; RGB is captured as
    three sequential pixel-plane exposures (Section III notes the imager is
    a conventional monochrome array).
    """
    cfg = config or OISAConfig()
    return ConvWorkload(
        kernel_size=3,
        num_kernels=64,
        in_channels=3,
        image_height=cfg.pixel_rows,
        image_width=cfg.pixel_cols,
        stride=1,
        padding=1,
    )


def default_plan(config: OISAConfig | None = None) -> MappingPlan:
    """Mapping plan for the default evaluation workload."""
    cfg = config or OISAConfig()
    return plan_convolution(cfg, resnet18_first_layer_workload(cfg))
