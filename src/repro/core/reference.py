"""Retained scalar reference for the weight-programming chain.

The programming hot path (AWC realization -> per-arm crosstalk ->
tuning-budget pricing) was vectorized end-to-end; these functions preserve
the original scalar loops *verbatim* so that

* equivalence tests can assert the batched implementations are
  **bit-identical** (same elementwise float ops, just batched), and
* :mod:`repro.analysis.perf` can measure the speedup against the real
  pre-vectorization baseline instead of a guess.

Nothing here is exported through the public API and nothing in the serving
path calls it — it is deliberately slow.
"""

from __future__ import annotations

import math

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import HybridTuning, TuningBudget
from repro.photonics.wdm import WdmGrid


def detuning_for_transmission_scalar(
    ring: MicroringResonator, transmission: float
) -> float:
    """Original scalar Lorentzian inversion (one weight at a time)."""
    t_min = ring.min_transmission
    if not (t_min <= transmission <= 1.0):
        raise ValueError(
            f"transmission {transmission!r} outside reachable range "
            f"[{t_min:.4f}, 1.0]"
        )
    if transmission >= 1.0:
        return 0.5 * ring.fsr_m  # effectively "parked" far off resonance
    depth = 1.0 - t_min
    ratio = depth / (1.0 - transmission) - 1.0
    return 0.5 * ring.fwhm_m * math.sqrt(max(ratio, 0.0))


def crosstalk_matrix_scalar(
    grid: WdmGrid,
    ring: MicroringResonator | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Original per-channel crosstalk matrix loop."""
    prototype = ring or MicroringResonator()
    n = grid.num_channels
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(
                f"weights must have shape ({n},), got {weights.shape}"
            )

    matrix = np.empty((n, n), dtype=float)
    wavelengths = grid.wavelengths_m()
    for j in range(n):
        shift = (
            detuning_for_transmission_scalar(prototype, float(weights[j]))
            if weights is not None
            else 0.0
        )
        # Detuning of channel i from ring j's *tuned* resonance position.
        detunings = wavelengths - (wavelengths[j] + shift)
        matrix[:, j] = prototype.lorentzian_transmission(detunings)
    return matrix


def effective_arm_transmission_scalar(
    grid: WdmGrid,
    weights: np.ndarray,
    ring: MicroringResonator | None = None,
) -> np.ndarray:
    """Original one-arm effective transmission (matrix row product)."""
    matrix = crosstalk_matrix_scalar(
        grid, ring=ring, weights=np.asarray(weights, float)
    )
    return matrix.prod(axis=1)


def mapping_cost_scalar(
    tuner: HybridTuning, shifts_m: list[float] | tuple[float, ...]
) -> TuningBudget:
    """Original list-based aggregate over per-shift :meth:`retune` calls."""
    budgets = [tuner.retune(shift) for shift in shifts_m]
    if not budgets:
        return TuningBudget(0.0, 0.0, 0.0)
    return TuningBudget(
        energy_j=sum(budget.energy_j for budget in budgets),
        latency_s=max(budget.latency_s for budget in budgets),
        holding_power_w=sum(budget.holding_power_w for budget in budgets),
    )


def apply_crosstalk_scalar(opc, weights: np.ndarray, scale: float) -> np.ndarray:
    """Original arm-by-arm crosstalk application of ``OpticalProcessingCore``."""
    flat = weights.reshape(-1)
    arm_size = opc.config.mrs_per_arm
    t_min = opc.ring.min_transmission
    full_scale = float(np.max(np.abs(flat)))
    if full_scale == 0.0:
        return weights.copy()

    padded_len = -(-flat.size // arm_size) * arm_size
    padded = np.zeros(padded_len)
    padded[: flat.size] = flat
    arms = padded.reshape(-1, arm_size)

    out = np.empty_like(arms)
    span = 1.0 - t_min
    for index, arm in enumerate(arms):
        magnitudes = np.abs(arm) / full_scale
        transmissions = t_min + magnitudes * span
        effective = effective_arm_transmission_scalar(
            opc.grid, transmissions, ring=opc.ring
        )
        recovered = np.clip((effective - t_min) / span, 0.0, None) * full_scale
        out[index] = np.sign(arm) * recovered
    return out.reshape(-1)[: flat.size].reshape(weights.shape)


def mapping_tuning_budget_scalar(
    opc, weights: np.ndarray, scale: float
) -> TuningBudget:
    """Original per-weight detuning list comprehension + list mapping cost."""
    flat = np.abs(weights.reshape(-1))
    full_scale = float(flat.max())
    t_min = opc.ring.min_transmission
    if full_scale == 0.0:
        return TuningBudget(0.0, 0.0, 0.0)
    transmissions = t_min + (flat / full_scale) * (1.0 - t_min)
    shifts = [
        detuning_for_transmission_scalar(opc.ring, float(t))
        for t in np.clip(transmissions, t_min, 1.0)
    ]
    per_sweep = mapping_cost_scalar(opc.config.tuning, shifts)
    iterations = opc.config.weight_mapping_iterations
    return TuningBudget(
        energy_j=per_sweep.energy_j,
        latency_s=per_sweep.latency_s * iterations,
        holding_power_w=per_sweep.holding_power_w,
    )


def program_scalar(opc, quantized_weights: np.ndarray, scale: float):
    """Original cold ``program()``: scalar crosstalk + scalar tuning budget.

    Returns the same :class:`~repro.core.opc.ProgrammedWeights` record the
    vectorized :meth:`~repro.core.opc.OpticalProcessingCore.program`
    produces (and must match it bit-for-bit).  Does *not* install the
    record on ``opc``.
    """
    from repro.core.opc import ProgrammedWeights
    from repro.util.validation import check_positive

    check_positive("scale", scale)
    ideal = np.asarray(quantized_weights, dtype=float)
    realized = opc.awc.realize_quantized_weights(ideal, scale)
    if opc.enable_crosstalk:
        realized = apply_crosstalk_scalar(opc, realized, scale)
    tuning = mapping_tuning_budget_scalar(opc, realized, scale)
    return ProgrammedWeights(
        ideal=ideal,
        realized=realized,
        scale=scale,
        tuning=tuning,
        mapping_iterations=opc.config.weight_mapping_iterations,
    )
