"""OISA architecture configuration.

All structural constants of Section III live here, with the paper's values
as defaults:

* a 128x128 ADC-less global-shutter imager,
* an Optical Processing Core of **80 banks x 5 arms x 10 MRs = 4000 MRs**,
  banks grouped in 4 columns, 40 AWC units (hence 4000 / 40 = **100 weight
  mapping iterations** for a full reprogram),
* ternary (2-bit) activations and 1-to-4-bit weights,
* a 55.8 ps architecture-wide MAC cycle and a 1000 FPS frame budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuits.awc import AwcDesign
from repro.circuits.pixel import PixelDesign
from repro.circuits.vam import VamDesign
from repro.photonics.microring import MicroringDesign
from repro.photonics.photodiode import BalancedPhotodiode
from repro.photonics.tuning import HybridTuning
from repro.photonics.vcsel import TernaryVcselEncoder
from repro.photonics.waveguide import ArmLossBudget
from repro.photonics.wdm import WdmGrid
from repro.util.units import PS, UM
from repro.util.validation import check_in_range, check_positive

#: Kernel sizes the OPC mapping natively supports (Section III-B).
SUPPORTED_KERNEL_SIZES = (3, 5, 7)


@dataclass(frozen=True)
class OISAConfig:
    """Structural + device configuration of one OISA node."""

    # --- Imager -------------------------------------------------------
    pixel_rows: int = 128
    pixel_cols: int = 128
    pixel_pitch_m: float = 4.5 * UM
    frame_rate_hz: float = 1000.0

    # --- Optical Processing Core --------------------------------------
    num_banks: int = 80
    arms_per_bank: int = 5
    mrs_per_arm: int = 10
    bank_columns: int = 4
    num_awc_units: int = 40

    # --- Numerics ------------------------------------------------------
    weight_bits: int = 4
    activation_levels: int = 3  # ternary

    # --- Timing ----------------------------------------------------------
    mac_cycle_s: float = 55.8 * PS

    # --- Device models ---------------------------------------------------
    microring: MicroringDesign = field(default_factory=MicroringDesign)
    wdm: WdmGrid = field(default_factory=WdmGrid)
    vcsel_encoder: TernaryVcselEncoder = field(default_factory=TernaryVcselEncoder)
    bpd: BalancedPhotodiode = field(default_factory=BalancedPhotodiode)
    arm_loss: ArmLossBudget = field(default_factory=ArmLossBudget)
    tuning: HybridTuning = field(default_factory=HybridTuning)
    awc_design: AwcDesign = field(default_factory=AwcDesign)
    pixel_design: PixelDesign = field(default_factory=PixelDesign)
    vam_design: VamDesign = field(default_factory=VamDesign)

    #: Additive BPD read-noise sigma, as a fraction of one arm's full-scale
    #: MAC value (calibrated from the BPD SNR at the arm's optical budget).
    bpd_read_noise_fraction: float = 0.01

    def __post_init__(self) -> None:
        check_positive("pixel_rows", self.pixel_rows)
        check_positive("pixel_cols", self.pixel_cols)
        check_positive("pixel_pitch_m", self.pixel_pitch_m)
        check_positive("frame_rate_hz", self.frame_rate_hz)
        check_positive("num_banks", self.num_banks)
        check_positive("arms_per_bank", self.arms_per_bank)
        check_positive("mrs_per_arm", self.mrs_per_arm)
        check_positive("bank_columns", self.bank_columns)
        check_positive("num_awc_units", self.num_awc_units)
        check_in_range("weight_bits", self.weight_bits, 1, 4)
        if self.activation_levels != 3:
            raise ValueError("OISA's VAM is ternary; activation_levels must be 3")
        check_positive("mac_cycle_s", self.mac_cycle_s)
        check_in_range("bpd_read_noise_fraction", self.bpd_read_noise_fraction, 0.0, 1.0)
        if self.num_banks % self.bank_columns != 0:
            raise ValueError(
                f"num_banks ({self.num_banks}) must divide evenly into "
                f"{self.bank_columns} columns"
            )
        if self.wdm.num_channels < self.mrs_per_arm:
            raise ValueError(
                "the WDM grid must provide at least one channel per arm MR"
            )

    # --- Derived structural quantities -----------------------------------
    @property
    def num_pixels(self) -> int:
        """Total pixel count of the imager."""
        return self.pixel_rows * self.pixel_cols

    @property
    def total_arms(self) -> int:
        """Arms across the whole OPC."""
        return self.num_banks * self.arms_per_bank

    @property
    def mrs_per_bank(self) -> int:
        """MRs per bank (5 arms x 10 MRs = 50 in the paper)."""
        return self.arms_per_bank * self.mrs_per_arm

    @property
    def total_mrs(self) -> int:
        """Total MR count (4000 in the paper)."""
        return self.num_banks * self.mrs_per_bank

    @property
    def banks_per_column(self) -> int:
        """Banks stacked in each of the 4 columns."""
        return self.num_banks // self.bank_columns

    @property
    def weight_mapping_iterations(self) -> int:
        """AWC iterations to program every MR (4000 / 40 = 100)."""
        return -(-self.total_mrs // self.num_awc_units)  # ceil division

    @property
    def macs_per_arm(self) -> int:
        """MAC capacity of one arm for 3x3 kernels (9 of the 10 MRs)."""
        return self.mrs_per_arm - 1

    def with_weight_bits(self, bits: int) -> "OISAConfig":
        """Copy of this config at a different weight bit-width."""
        awc = replace(self.awc_design, num_bits=bits)
        return replace(self, weight_bits=bits, awc_design=awc)


#: The configuration evaluated throughout the paper.
PAPER_CONFIG = OISAConfig()
