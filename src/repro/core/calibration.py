"""Per-chip AWC calibration via code pre-distortion.

The AWC's static errors (branch mismatch, level offsets, compression) are
*measurable once per die*: drive every code, record the realized current.
With that table the controller can pre-distort — for a target level it
picks the code whose **realized** level lands closest, instead of the
nominal code.  This recovers part of the converter's INL for free (no new
hardware, just a lookup in the kernel bank path) and is the natural
engineering follow-up to the paper's observation that AWC error limits the
[4:2] configuration.

``CalibratedAwcMapper`` wraps an :class:`~repro.core.awc.AwcWeightMapper`
and is a drop-in replacement for weight realization.
"""

from __future__ import annotations

import numpy as np

from repro.core.awc import AwcWeightMapper
from repro.util.validation import check_positive


class CalibratedAwcMapper:
    """Pre-distorting wrapper around a measured AWC bank.

    Parameters
    ----------
    mapper:
        The physical (mismatched) converter bank to calibrate.
    measurement_noise_lsb:
        RMS noise of the calibration measurement itself, in LSB units.
        Zero models a perfect bench characterisation.
    """

    def __init__(
        self,
        mapper: AwcWeightMapper,
        measurement_noise_lsb: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if measurement_noise_lsb < 0:
            raise ValueError(
                f"measurement_noise_lsb must be non-negative, got "
                f"{measurement_noise_lsb}"
            )
        self.mapper = mapper
        self._measurement_noise_lsb = measurement_noise_lsb
        # The measured table: what the calibration bench *believes* each
        # code produces.
        measured = mapper.level_table.copy()
        if measurement_noise_lsb > 0.0:
            from repro.util.rng import derive_rng

            rng = derive_rng(seed, "awc-calibration-noise")
            measured = measured + rng.normal(
                0.0, measurement_noise_lsb, size=measured.shape
            )
        self._measured_table = measured
        # Pre-distortion lookup: per unit, per target level, the best code.
        num_units, num_levels = measured.shape
        targets = np.arange(num_levels, dtype=float)
        self._code_lut = np.abs(
            measured[:, :, None] - targets[None, None, :]
        ).argmin(axis=1)

    @property
    def num_levels(self) -> int:
        """Distinct magnitude levels of the underlying converter."""
        return self.mapper.num_levels

    @property
    def design(self):
        """The wrapped converter's electrical design (delegated).

        Makes the calibrated mapper a drop-in for
        :class:`~repro.core.awc.AwcWeightMapper` wherever the OPC reads
        design facts (e.g. ``weight_transform``'s top-level computation).
        """
        return self.mapper.design

    @property
    def num_units(self) -> int:
        """Physical converter units in the wrapped bank (delegated)."""
        return self.mapper.num_units

    @property
    def calibration_token(self) -> tuple[str, float]:
        """Cache-key marker separating calibrated from raw programs.

        :meth:`repro.engine.cache.WeightProgramCache.key_for` mixes this
        into the digest so a pre-distorted die never shares cached programs
        with an uncalibrated die of the same seed/config.
        """
        return ("awc-predistort", self._measurement_noise_lsb)

    def predistorted_codes(
        self, codes: np.ndarray, unit_assignment: np.ndarray
    ) -> np.ndarray:
        """Replace nominal codes with their calibrated substitutes."""
        magnitude = np.abs(codes).astype(int)
        chosen = self._code_lut[unit_assignment, magnitude]
        return np.sign(codes) * chosen

    def realize_codes(
        self, codes: np.ndarray, unit_assignment: np.ndarray | None = None
    ) -> np.ndarray:
        """Realize signed integer codes with pre-distortion applied."""
        codes = np.asarray(codes)
        if unit_assignment is None:
            flat = np.arange(codes.size) % self.mapper.num_units
            unit_assignment = flat.reshape(codes.shape)
        distorted = self.predistorted_codes(codes, unit_assignment)
        return self.mapper.realize_codes(distorted, unit_assignment)

    def realize_quantized_weights(
        self, quantized: np.ndarray, scale: float
    ) -> np.ndarray:
        """Pre-distorted counterpart of the raw mapper's method."""
        check_positive("scale", scale)
        quantized = np.asarray(quantized, dtype=float)
        codes = np.round(quantized / scale).astype(int)
        return self.realize_codes(codes) * scale

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------
    def residual_error_lsb(self) -> float:
        """Mean |realized - target| after calibration, in LSB units."""
        num_units = self.mapper.num_units
        targets = np.arange(self.num_levels)
        errors = []
        for unit in range(num_units):
            chosen = self._code_lut[unit, targets]
            realized = self.mapper.level_table[unit, chosen]
            errors.append(np.abs(realized - targets))
        return float(np.mean(errors))

    def improvement_ratio(self) -> float:
        """Uncalibrated mean level error divided by the calibrated one.

        Values > 1 mean calibration helped; == 1 means the nominal codes
        were already optimal (monotone, small-INL converters).
        """
        raw = self.mapper.mean_level_error_lsb()
        residual = self.residual_error_lsb()
        if residual == 0.0:
            return float("inf") if raw > 0 else 1.0
        return raw / residual
