"""Hardware-in-the-loop inference: OISA first layer + off-chip remainder.

Implements the right-hand side of the paper's Fig. 7: a QAT-trained model's
first convolution runs on the OISA behavioral hardware (realized weights,
crosstalk, BPD noise), and the remaining layers run as the "behavioral DNN
model" on the off-chip processor (here: the float NumPy layers).

Units: frames are (N, C, H, W) float arrays on a unit pixel scale; the
``TernaryInputLayer`` maps them to the VAM's three optical levels
{0, 0.5, 1} (paper Fig. 8) before the optics multiply.  Accuracies are
top-1 fractions in [0, 1].

Serving integration: ``program_cache`` plugs the pipeline into
:class:`repro.engine.cache.WeightProgramCache` (kernel swaps become O(1)
installs), ``activate`` re-arms a multiplexed die, and ``forward``'s
``core`` override lets :mod:`repro.engine.health` route a degraded
window through a :class:`~repro.sim.faults.FaultyOpticalCore` without
touching the healthy program.  Reprogramming is deterministic per die —
the scalar-reference bit-identity contract of :mod:`repro.core.reference`
guarantees a recovered node reproduces its pre-fault realized weights
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.opc import OpticalProcessingCore
from repro.nn.layers import Dense, Sequential
from repro.nn.models import TernaryInputLayer, find_first_quant_conv
from repro.nn.quant import QuantConv2D, QuantDense


class HardwareFirstLayerPipeline:
    """Evaluate a trained QAT model with its first layer in the optics.

    Parameters
    ----------
    model:
        A :func:`~repro.nn.models.build_lenet`-style Sequential whose first
        layers are ``TernaryInputLayer`` then ``QuantConv2D`` — or, for the
        paper's MLP mode, ``QuantDense`` (the VOM recombines the bank-split
        partial sums; numerically the full dot product).
    opc:
        The optical core to run the first layer on.  Its bit-width must
        match the model's first-layer quantizer.
    program_cache:
        Optional weight-program cache (duck-typed to
        :class:`repro.engine.cache.WeightProgramCache`).  When given, the
        expensive AWC mapping chain runs once per distinct (kernel set,
        weight bits, die seed) and kernel swaps back to a known set are
        restored from the cache.
    """

    def __init__(
        self,
        model: Sequential,
        opc: OpticalProcessingCore,
        program_cache=None,
    ) -> None:
        first = self._find_first_quant_layer(model)
        if first is None:
            raise ValueError(
                "model must start with a quantized first layer (QAT model); "
                "the float baseline cannot run on OISA hardware"
            )
        if not isinstance(model[0], TernaryInputLayer):
            raise ValueError("model must ternarize its input (VAM path)")
        self.model = model
        self.conv = first  # historical name; may be a QuantDense
        self.opc = opc
        self.program_cache = program_cache
        self._program()

    @staticmethod
    def _find_first_quant_layer(model: Sequential):
        conv = find_first_quant_conv(model)
        if conv is not None:
            return conv
        for layer in model:
            if isinstance(layer, QuantDense):
                return layer
            if isinstance(layer, TernaryInputLayer):
                continue
            break
        return None

    @property
    def is_dense(self) -> bool:
        """Whether the hardware layer is the MLP (VOM-split) mode."""
        return isinstance(self.conv, QuantDense)

    def _program(self) -> None:
        quantized = self.conv.quantizer.quantize(self.conv.weight.data)
        scale = self.conv.quantizer.scale(self.conv.weight.data)
        if self.program_cache is not None:
            self.program_cache.get_or_program(self.opc, quantized, scale)
        else:
            self.opc.program(quantized, scale)

    def activate(self) -> None:
        """(Re)install this model's first-layer weights on the shared OPC.

        Serving engines multiplex several pipelines over one optical core;
        call this before ``forward`` when another model may have programmed
        the OPC since this pipeline last ran.  With a program cache the
        reactivation is a cache hit, not a fresh AWC mapping.
        """
        self._program()

    def _split_index(self) -> int:
        for index, layer in enumerate(self.model):
            if isinstance(layer, (QuantConv2D, QuantDense)):
                return index
        raise RuntimeError("quantized first layer disappeared from the model")

    def forward(
        self, x: np.ndarray, batch_size: int = 256, core=None
    ) -> np.ndarray:
        """Full-network logits with the first layer computed optically.

        Parameters
        ----------
        x:
            Input frames, (N, C, H, W) for conv models or any (N, ...)
            shape that flattens to the dense layer's features.
        batch_size:
            Frames per optical call (micro-batch).
        core:
            Optional stand-in for ``self.opc`` implementing the same
            ``convolve``/``dot`` surface — e.g. a
            :class:`~repro.sim.faults.FaultyOpticalCore` wrapping this
            pipeline's die during a degraded serving window.  The default
            runs on the healthy programmed core.
        """
        x = np.asarray(x, dtype=float)
        split = self._split_index()
        rest = self.model.layers[split + 1 :]
        optics = core if core is not None else self.opc
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            chunk = x[start : start + batch_size]
            ternary = self.model.layers[0].forward(chunk)  # {0, 0.5, 1}
            if self.is_dense:
                features = optics.dot(ternary.reshape(ternary.shape[0], -1))
            else:
                features = optics.convolve(
                    ternary, stride=self.conv.stride, padding=self.conv.padding
                )
            hidden = features
            for layer in rest:
                hidden = layer.forward(hidden, training=False)
            outputs.append(hidden)
        return np.concatenate(outputs, axis=0)

    def forward_batched(
        self,
        x: np.ndarray | None,
        batch_size: int = 256,
        core=None,
        ternary: np.ndarray | None = None,
    ) -> np.ndarray:
        """Whole-run logits, bit-identical to chunked :meth:`forward`.

        Computes the same floats as ``forward(x, batch_size=batch_size)``
        while hoisting every partition-free operation out of the chunk
        loop into one full-batch ndarray op:

        * the ternary input map, the optical convolution (im2col +
          einsum), pooling, batch-norm and activations are row-stable —
          each output row depends only on its own input row through the
          identical elementwise/einsum arithmetic, so any chunking
          produces the same bits;
        * the BPD read-noise draw batches too: one
          ``Generator.normal(size=(n, ...))`` call consumes the exact
          same RNG stream as the per-chunk draws it replaces
          (concatenation property of NumPy Generator streams);
        * matrix products through BLAS (``Dense``/``QuantDense`` layers,
          and the dense-stem ``optics.dot``) are **not** row-stable —
          their accumulation order depends on the batch size — so those
          layers still compute at the exact ``batch_size`` partition the
          reference loop uses and concatenate.

        ``ternary`` lets a caller that already ran the (stateless,
        row-stable) ternary input map — e.g. the serving engine encoding
        one fleet-wide frame stack per model — pass the encoded frames
        directly; ``x`` is ignored then.

        ``tests/test_engine_batched.py`` pins the equality over the
        scenario zoo at every weight bit width.
        """
        if ternary is None:
            x = np.asarray(x, dtype=float)
            ternary = self.model.layers[0].forward(x)  # {0, 0.5, 1}
        n = ternary.shape[0]
        split = self._split_index()
        rest = self.model.layers[split + 1 :]
        optics = core if core is not None else self.opc
        starts = range(0, n, batch_size)

        def chunked(fn, values: np.ndarray) -> np.ndarray:
            if n <= batch_size:
                return fn(values)
            return np.concatenate(
                [fn(values[s : s + batch_size]) for s in starts], axis=0
            )

        if self.is_dense:
            # The reference interleaves (dot, noise) per chunk; the dot
            # consumes no RNG, so chunked dots here replay the identical
            # noise stream in the identical order.
            hidden = chunked(optics.dot, ternary.reshape(n, -1))
        else:
            hidden = optics.convolve(
                ternary, stride=self.conv.stride, padding=self.conv.padding
            )
        for layer in rest:
            if isinstance(layer, (Dense, QuantDense)):
                hidden = chunked(
                    lambda values, fwd=layer.forward: fwd(values, training=False),
                    hidden,
                )
            else:
                hidden = layer.forward(hidden, training=False)
        return hidden

    def evaluate(
        self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256
    ) -> float:
        """Top-1 accuracy with the optical first layer in the loop."""
        logits = self.forward(x, batch_size=batch_size)
        predictions = logits.argmax(axis=1)
        return float((predictions == np.asarray(labels)).mean())

    def weight_error_report(self) -> dict[str, float]:
        """Ideal-vs-realized first-layer weight statistics."""
        programmed = self.opc.programmed
        return {
            "rms_error": programmed.weight_error_rms,
            "relative_error": programmed.weight_error_relative,
            "mapping_iterations": float(programmed.mapping_iterations),
        }
