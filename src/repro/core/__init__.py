"""OISA core architecture — the paper's primary contribution.

Public surface:

* :class:`~repro.core.config.OISAConfig` — every structural constant of
  Section III with the paper's values as defaults.
* :class:`~repro.core.accelerator.OISAAccelerator` — program kernels,
  process frames, read performance summaries.
* :mod:`repro.core.mapping` — kernel-to-bank allocation and the
  MACs-per-cycle arithmetic (3600/2000/3920).
* :class:`~repro.core.opc.OpticalProcessingCore` — the photonic MAC with
  the full AWC/crosstalk/BPD non-ideality chain.
* :class:`~repro.core.energy.OISAEnergyModel` — power, energy, area and
  efficiency accounting.
* :class:`~repro.core.pipeline.HardwareFirstLayerPipeline` — QAT model
  evaluation with the first layer in the optics (Fig. 7 flow).
"""

from repro.core.accelerator import FrameResult, OISAAccelerator
from repro.core.awc import AwcWeightMapper
from repro.core.calibration import CalibratedAwcMapper
from repro.core.config import PAPER_CONFIG, SUPPORTED_KERNEL_SIZES, OISAConfig
from repro.core.thermal import ThermalModel
from repro.core.controller import FrameTiming, TimingController
from repro.core.energy import (
    AreaBreakdown,
    OISAEnergyModel,
    PowerBreakdown,
    default_plan,
    resnet18_first_layer_workload,
)
from repro.core.mapping import (
    ConvWorkload,
    MappingPlan,
    MlpWorkload,
    kernels_per_bank,
    macs_per_cycle,
    plan_convolution,
    plan_mlp,
)
from repro.core.opc import OpticalProcessingCore, ProgrammedWeights
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.core.snr_budget import SnrBudget, SnrReport
from repro.core.vam import ActivationModulator
from repro.core.vom import OutputModulator

__all__ = [
    "ActivationModulator",
    "AreaBreakdown",
    "AwcWeightMapper",
    "CalibratedAwcMapper",
    "ConvWorkload",
    "ThermalModel",
    "FrameResult",
    "FrameTiming",
    "HardwareFirstLayerPipeline",
    "MappingPlan",
    "MlpWorkload",
    "OISAAccelerator",
    "OISAConfig",
    "OISAEnergyModel",
    "OpticalProcessingCore",
    "OutputModulator",
    "PAPER_CONFIG",
    "PowerBreakdown",
    "ProgrammedWeights",
    "SUPPORTED_KERNEL_SIZES",
    "SnrBudget",
    "SnrReport",
    "TimingController",
    "default_plan",
    "kernels_per_bank",
    "macs_per_cycle",
    "plan_convolution",
    "plan_mlp",
    "resnet18_first_layer_workload",
]
