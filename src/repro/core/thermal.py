"""Thermal drift of the MR array and its closed-loop compensation.

Silicon's thermo-optic coefficient moves an MR resonance by roughly
70-80 pm/K; the paper's MR Device Engineering section picks a low Q
(broad FWHM) precisely so such drifts do not destroy weight fidelity.
This module quantifies that argument:

* open-loop: a uniform ambient shift detunes every ring, perturbing every
  programmed weight;
* closed-loop: a feedback controller re-trims each ring with the EO stage
  (fast, tiny range) as long as the drift fits the EO budget, at a small
  residual set by the control loop's dead-band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import HybridTuning
from repro.util.validation import check_non_negative, check_positive

#: Silicon MR thermo-optic resonance drift [m/K].
RESONANCE_DRIFT_M_PER_K = 75e-12


@dataclass(frozen=True)
class ThermalModel:
    """Uniform ambient-temperature drift across the OPC."""

    ring: MicroringResonator
    tuning: HybridTuning
    drift_m_per_k: float = RESONANCE_DRIFT_M_PER_K
    #: Control dead-band of the stabilisation loop [m] (residual detuning).
    control_deadband_m: float = 2e-12

    def __post_init__(self) -> None:
        check_positive("drift_m_per_k", self.drift_m_per_k)
        check_non_negative("control_deadband_m", self.control_deadband_m)

    def resonance_shift_m(self, delta_t_k: float) -> float:
        """Resonance drift [m] for a temperature excursion [K]."""
        return self.drift_m_per_k * delta_t_k

    # ------------------------------------------------------------------
    # Open loop
    # ------------------------------------------------------------------
    def drifted_weights(
        self, weights: np.ndarray, delta_t_k: float
    ) -> np.ndarray:
        """Programmed transmissions after an *uncompensated* drift.

        Each ring was tuned so its carrier transmission equalled its
        weight; the drift adds a common detuning on top of each ring's
        operating point.
        """
        weights = np.asarray(weights, dtype=float)
        t_min = self.ring.min_transmission
        clipped = np.clip(weights, t_min, 1.0)
        shift = self.resonance_shift_m(delta_t_k)
        drifted = np.empty_like(clipped)
        for index, weight in np.ndenumerate(clipped):
            operating = self.ring.detuning_for_transmission(float(weight))
            drifted[index] = float(
                self.ring.lorentzian_transmission(operating + shift)
            )
        return drifted

    def open_loop_error(self, weights: np.ndarray, delta_t_k: float) -> float:
        """RMS weight error of the uncompensated drift."""
        weights = np.asarray(weights, dtype=float)
        t_min = self.ring.min_transmission
        clipped = np.clip(weights, t_min, 1.0)
        drifted = self.drifted_weights(clipped, delta_t_k)
        return float(np.sqrt(np.mean((drifted - clipped) ** 2)))

    # ------------------------------------------------------------------
    # Closed loop
    # ------------------------------------------------------------------
    def compensable_range_k(self) -> float:
        """Largest excursion [K] the EO fine-trim stage can absorb."""
        return self.tuning.eo_range_m / self.drift_m_per_k

    def closed_loop_error(self, weights: np.ndarray, delta_t_k: float) -> float:
        """Residual RMS weight error with the stabilisation loop active.

        Within the EO range the loop trims drift down to its dead-band;
        beyond it the heater must assist and the residual equals the
        dead-band too (just slower/hotter) — the error model returns the
        dead-band-limited residual either way, while
        :meth:`compensation_power_w` prices the difference.
        """
        weights = np.asarray(weights, dtype=float)
        t_min = self.ring.min_transmission
        clipped = np.clip(weights, t_min, 1.0)
        residual = self.drifted_weights(clipped, 0.0)  # operating points
        deadband_t = self.control_deadband_m
        errors = []
        for weight in clipped.ravel():
            operating = self.ring.detuning_for_transmission(float(weight))
            moved = float(self.ring.lorentzian_transmission(operating + deadband_t))
            errors.append(moved - float(weight))
        del residual
        return float(np.sqrt(np.mean(np.square(errors))))

    def compensation_power_w(self, delta_t_k: float, num_mrs: int) -> float:
        """Average added tuning power to hold against a drift."""
        if num_mrs <= 0:
            raise ValueError(f"num_mrs must be positive, got {num_mrs}")
        shift = abs(self.resonance_shift_m(delta_t_k))
        to_part, _ = self.tuning.split_shift(shift)
        per_mr = self.tuning.to_power_per_nm_w * (abs(to_part) / 1e-9)
        return per_mr * num_mrs
