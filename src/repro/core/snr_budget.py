"""Optical SNR budget: from VCSEL power to effective weight resolution.

Section III ("MR Device Engineering") tunes the devices so the chain
supports an *effective bit resolution of 4 bits*.  This module makes that
claim computable: starting from the ternary VCSEL levels, through the
arm's loss budget, to the balanced photodiode's shot/thermal noise floor,
it reports the per-arm SNR and the number of weight bits the analog chain
can actually resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.photonics.photodiode import BalancedPhotodiode
from repro.photonics.vcsel import TernaryVcselEncoder
from repro.photonics.waveguide import ArmLossBudget
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SnrReport:
    """Resolved link budget for one arm."""

    laser_power_w: float
    detector_power_w: float
    path_loss_db: float
    snr_linear: float
    snr_db: float
    effective_bits: float

    def supports_weight_bits(self, bits: int) -> bool:
        """Whether the analog chain resolves ``bits`` weight levels."""
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        return self.effective_bits >= bits


@dataclass
class SnrBudget:
    """End-to-end SNR calculator for one OISA arm."""

    encoder: TernaryVcselEncoder = field(default_factory=TernaryVcselEncoder)
    arm_loss: ArmLossBudget = field(default_factory=ArmLossBudget)
    bpd: BalancedPhotodiode = field(default_factory=BalancedPhotodiode)
    num_rings: int = 10

    def __post_init__(self) -> None:
        check_positive("num_rings", self.num_rings)

    def detector_power_w(self, symbol: int = 2) -> float:
        """Optical power reaching one BPD branch for a ternary symbol."""
        emitted = float(self.encoder.optical_power_w(symbol))
        return emitted * self.arm_loss.transmission(self.num_rings)

    def report(self, symbol: int = 2) -> SnrReport:
        """Full link budget at a given drive symbol (default: brightest)."""
        emitted = float(self.encoder.optical_power_w(symbol))
        detected = self.detector_power_w(symbol)
        loss_db = self.arm_loss.total_loss_db(self.num_rings)
        snr = self.bpd.snr(detected, 0.0)
        snr_db = 20.0 * np.log10(snr) if snr > 0 else float("-inf")
        enob = self.bpd.effective_bits(detected)
        return SnrReport(
            laser_power_w=emitted,
            detector_power_w=detected,
            path_loss_db=loss_db,
            snr_linear=snr,
            snr_db=snr_db,
            effective_bits=enob,
        )

    def max_weight_bits(self, symbol: int = 2, ceiling: int = 8) -> int:
        """Largest weight bit-width the chain resolves (paper: 4)."""
        report = self.report(symbol)
        for bits in range(ceiling, 0, -1):
            if report.supports_weight_bits(bits):
                return bits
        return 0

    def required_laser_power_for_bits(self, bits: int) -> float:
        """Minimum emitted power [W] to support ``bits`` weight levels.

        Solves the shot/thermal-limited ENOB relation by bisection on the
        emitted power (monotone in power).
        """
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        transmission = self.arm_loss.transmission(self.num_rings)

        def enob_at(emitted_w: float) -> float:
            return self.bpd.effective_bits(emitted_w * transmission)

        low, high = 1e-9, 1.0
        if enob_at(high) < bits:
            raise ValueError(f"{bits} bits unreachable even at 1 W emitted")
        for _ in range(80):
            mid = np.sqrt(low * high)  # geometric bisection over decades
            if enob_at(mid) < bits:
                low = mid
            else:
                high = mid
        return float(high)
