"""The OISA facade: program weights, process frames, report performance.

Ties together the imager/VAM front-end, the OPC, the mapping planner, the
timing controller and the energy model behind one object — the API a
downstream user touches first (see ``examples/quickstart.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OISAConfig
from repro.core.controller import FrameTiming, TimingController
from repro.core.energy import OISAEnergyModel, PowerBreakdown
from repro.core.mapping import ConvWorkload, MappingPlan, plan_convolution
from repro.core.opc import OpticalProcessingCore, ProgrammedWeights
from repro.core.vam import ActivationModulator
from repro.nn.quant import UniformWeightQuantizer


@dataclass(frozen=True)
class FrameResult:
    """Output of processing one frame through the first layer."""

    features: np.ndarray
    symbols: np.ndarray
    timing: FrameTiming
    energy: PowerBreakdown

    @property
    def average_power_w(self) -> float:
        """Frame energy over the pipelined frame period."""
        return self.energy.total / self.timing.pipelined_s


class OISAAccelerator:
    """One OISA node: ADC-less imager + VAM + OPC + controller.

    Parameters
    ----------
    config:
        Architecture configuration (defaults to the paper's).
    seed:
        Die seed — freezes AWC mismatch and noise streams so two
        accelerators with the same seed are the same chip.
    """

    def __init__(
        self,
        config: OISAConfig | None = None,
        seed: int | None = None,
        enable_noise: bool = True,
    ) -> None:
        self.config = config or OISAConfig()
        self.seed = seed
        self.vam = ActivationModulator(
            design=self.config.vam_design, encoder=self.config.vcsel_encoder
        )
        self.opc = OpticalProcessingCore(
            self.config,
            seed=seed,
            enable_crosstalk=enable_noise,
            enable_read_noise=enable_noise,
        )
        self.controller = TimingController(self.config)
        self.energy_model = OISAEnergyModel(self.config)
        self._plan: MappingPlan | None = None
        self._stride = 1
        self._padding = 0
        self._needs_mapping = True

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    def program_conv(
        self,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
        image_shape: tuple[int, int] | None = None,
    ) -> ProgrammedWeights:
        """Quantize and map a (F, C, K, K) conv weight tensor onto the OPC.

        Returns the programming record, including the realized (non-ideal)
        weights and the tuning budget.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError(
                f"expected (F, C, K, K) conv weights, got shape {weights.shape}"
            )
        quantizer = UniformWeightQuantizer(self.config.weight_bits)
        quantized = quantizer.quantize(weights)
        scale = quantizer.scale(weights)
        programmed = self.opc.program(quantized, scale)

        rows, cols = image_shape if image_shape else (
            self.config.pixel_rows,
            self.config.pixel_cols,
        )
        workload = ConvWorkload(
            kernel_size=weights.shape[2],
            num_kernels=weights.shape[0],
            in_channels=weights.shape[1],
            image_height=rows,
            image_width=cols,
            stride=stride,
            padding=padding,
        )
        self._plan = plan_convolution(self.config, workload)
        self._stride = stride
        self._padding = padding
        self._needs_mapping = True
        return programmed

    @property
    def plan(self) -> MappingPlan:
        """The active mapping plan (raises when nothing is programmed)."""
        if self._plan is None:
            raise RuntimeError("no kernels programmed; call program_conv() first")
        return self._plan

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def process_frame(self, frame: np.ndarray) -> FrameResult:
        """Run one normalised frame through sense -> modulate -> OPC.

        ``frame`` is (C, H, W) or (N, C, H, W) with intensities in [0, 1].
        The first call after programming pays the weight-mapping phase; the
        paper's steady-state numbers then apply to subsequent frames.
        """
        plan = self.plan
        frame = np.asarray(frame, dtype=float)
        batched = frame.ndim == 4
        batch = frame if batched else frame[None]
        if batch.shape[1] != plan.workload.in_channels:
            raise ValueError(
                f"frame has {batch.shape[1]} channels, kernels expect "
                f"{plan.workload.in_channels}"
            )

        symbols = self.vam.encode(batch)
        activations = symbols.astype(float) / 2.0  # optical levels on unit scale
        features = self.opc.convolve(activations, self._stride, self._padding)

        remap = self._needs_mapping
        tuning_latency = self.opc.programmed.tuning.latency_s if remap else 0.0
        timing = self.controller.frame_timing(
            plan, remap_weights=remap, tuning_latency_s=tuning_latency
        )
        energy = self.energy_model.frame_energy_j(
            plan,
            include_mapping=remap,
            mapping_energy_j=self.opc.programmed.tuning.energy_j if remap else 0.0,
        )
        self._needs_mapping = False
        return FrameResult(
            features=features if batched else features[0],
            symbols=symbols if batched else symbols[0],
            timing=timing,
            energy=energy,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def performance_summary(self) -> dict[str, float]:
        """Headline metrics for the programmed workload."""
        plan = self.plan
        peak = self.energy_model.peak_power_w(plan.workload.kernel_size)
        average = self.energy_model.average_power_w(plan)
        return {
            "peak_throughput_tops": self.energy_model.peak_throughput_ops() / 1e12,
            "peak_power_w": peak.total,
            "efficiency_tops_per_watt": self.energy_model.efficiency_tops_per_watt(
                plan.workload.kernel_size
            ),
            "average_power_w": average.total,
            "electronics_power_w": self.energy_model.electronics_power_w(plan),
            "macs_per_cycle": float(plan.macs_per_cycle),
            "compute_cycles_per_frame": float(plan.compute_cycles),
            "area_mm2": self.energy_model.area_mm2().total,
            "frame_rate_fps": self.config.frame_rate_hz,
        }
