"""Architecture-level VCSEL Activation Modulator (frame view).

Wraps the circuit-level VAM into the vectorised operations the accelerator
needs: turn a normalised sensor frame into ternary symbols and optical
powers, and account the energy of doing so for every pixel of a frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.vam import VamDesign
from repro.photonics.vcsel import TernaryVcselEncoder
from repro.util.validation import check_positive


@dataclass
class ActivationModulator:
    """Frame-level ternary activation encoder.

    ``low/high_threshold`` are expressed on the *normalised* intensity scale
    of the incoming frame ([0, 1]); they correspond to the VAM's two
    sense-amplifier references mapped through the pixel transfer curve.
    """

    design: VamDesign = field(default_factory=VamDesign)
    encoder: TernaryVcselEncoder = field(default_factory=TernaryVcselEncoder)
    low_threshold: float = 1.0 / 3.0
    high_threshold: float = 2.0 / 3.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.low_threshold < self.high_threshold <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 <= low < high <= 1, got "
                f"({self.low_threshold}, {self.high_threshold})"
            )

    def encode(self, frame: np.ndarray) -> np.ndarray:
        """Ternary symbols {0, 1, 2} for a normalised intensity frame."""
        frame = np.asarray(frame, dtype=float)
        return (frame > self.low_threshold).astype(np.int8) + (
            frame > self.high_threshold
        ).astype(np.int8)

    def optical_powers_w(self, frame: np.ndarray) -> np.ndarray:
        """Per-pixel VCSEL optical power [W] for a frame."""
        return self.encoder.optical_power_w(self.encode(frame))

    def symbol_distribution(self, frame: np.ndarray) -> np.ndarray:
        """Empirical (p0, p1, p2) symbol probabilities of a frame."""
        symbols = self.encode(frame)
        counts = np.bincount(symbols.ravel(), minlength=3)[:3]
        return counts / max(symbols.size, 1)

    def frame_energy_j(self, frame: np.ndarray, symbol_time_s: float) -> float:
        """Energy to modulate one frame for ``symbol_time_s`` per pixel.

        Counts two SA decisions and one driver switch per pixel, plus the
        VCSEL electrical energy weighted by the frame's actual symbol mix
        (NRZ: symbol 0 still burns the bias current).
        """
        check_positive("symbol_time_s", symbol_time_s)
        frame = np.asarray(frame, dtype=float)
        num_pixels = frame.size
        probabilities = self.symbol_distribution(frame)
        vcsel_power = self.encoder.mean_symbol_power_w(tuple(probabilities))
        static = (
            2.0 * self.design.sa_energy_per_decision_j
            + self.design.driver_energy_per_symbol_j
        ) * num_pixels
        return static + vcsel_power * num_pixels * symbol_time_s

    def average_power_w(self, frame: np.ndarray, frame_rate_hz: float) -> float:
        """Average modulation power at a sustained frame rate."""
        check_positive("frame_rate_hz", frame_rate_hz)
        symbol_time = 1.0 / frame_rate_hz
        return self.frame_energy_j(frame, symbol_time) * frame_rate_hz
