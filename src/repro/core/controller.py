"""Frame-level timing controller.

Sequences the phases of one OISA frame (Section III, component (vi)):

1. **exposure** — global-shutter integration on the pixel array;
2. **mapping** — AWC sweeps + MR retunes, only when a new kernel set is
   loaded (steady-state video bypasses it);
3. **compute** — OPC cycles at ``mac_cycle_s``;
4. **transmit** — shipping first-layer features to the off-chip processor
   over the output optical transmitter.

The frame rate claim (1000 FPS) holds when exposure dominates and the
compute pipeline hides under the next frame's exposure; ``FrameTiming``
exposes both the sequential and pipelined readings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import OISAConfig
from repro.core.mapping import MappingPlan
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class FrameTiming:
    """Durations of one frame's phases [s]."""

    exposure_s: float
    mapping_s: float
    compute_s: float
    transmit_s: float

    @property
    def sequential_s(self) -> float:
        """Total latency when phases run back-to-back."""
        return self.exposure_s + self.mapping_s + self.compute_s + self.transmit_s

    @property
    def pipelined_s(self) -> float:
        """Frame period when compute/transmit overlap the next exposure."""
        return max(self.exposure_s, self.mapping_s + self.compute_s + self.transmit_s)

    @property
    def pipelined_fps(self) -> float:
        """Sustained frame rate with pipelining."""
        return 1.0 / self.pipelined_s

    @property
    def compute_duty(self) -> float:
        """Fraction of the frame period the OPC is active."""
        return self.compute_s / self.pipelined_s


class TimingController:
    """Derives frame timings from a mapping plan."""

    #: Bits shipped per first-layer output value (the BPD result is
    #: re-modulated and sent as a 4-bit magnitude + sign symbol).
    OUTPUT_BITS_PER_VALUE = 5
    #: Output optical transmitter line rate [bit/s] (10 Gb/s class).
    TRANSMIT_RATE_BPS = 10e9

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()

    def exposure_time_s(self, frame_rate_hz: float | None = None) -> float:
        """Exposure budget at the target frame rate (global shutter)."""
        rate = frame_rate_hz if frame_rate_hz is not None else self.config.frame_rate_hz
        check_positive("frame_rate_hz", rate)
        return 1.0 / rate

    def mapping_time_s(self, tuning_latency_s: float = 0.0) -> float:
        """Weight (re)mapping latency: AWC sweeps + slowest MR settle.

        The AWC units walk all MRs in ``weight_mapping_iterations``
        sequential sweeps; each sweep settles in the ladder's RC constant,
        and the thermo-optic retune (when needed) dominates.
        """
        check_non_negative("tuning_latency_s", tuning_latency_s)
        sweeps = self.config.weight_mapping_iterations
        awc_settle = self.config.awc_design.settle_tau_s * 5.0  # 5 tau to 99%
        return sweeps * awc_settle + tuning_latency_s

    def compute_time_s(self, plan: MappingPlan) -> float:
        """OPC compute time for one frame."""
        return plan.compute_cycles * self.config.mac_cycle_s

    def transmit_time_s(self, plan: MappingPlan) -> float:
        """Time to ship the first-layer output features off-chip."""
        outputs = (
            plan.workload.windows_per_channel * plan.workload.num_kernels
        )
        bits = outputs * self.OUTPUT_BITS_PER_VALUE
        return bits / self.TRANSMIT_RATE_BPS

    def frame_timing(
        self,
        plan: MappingPlan,
        remap_weights: bool = False,
        tuning_latency_s: float = 0.0,
        frame_rate_hz: float | None = None,
    ) -> FrameTiming:
        """Assemble the full frame timing."""
        return FrameTiming(
            exposure_s=self.exposure_time_s(frame_rate_hz),
            mapping_s=self.mapping_time_s(tuning_latency_s) if remap_weights else 0.0,
            compute_s=self.compute_time_s(plan),
            transmit_s=self.transmit_time_s(plan),
        )
