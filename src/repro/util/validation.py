"""Small argument-validation helpers used across the package.

They raise ``ValueError`` with a message that names the offending parameter,
which keeps configuration mistakes (negative powers, bit-widths of zero, ...)
close to their source instead of surfacing as NaNs deep inside a sweep.
"""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and return it."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high`` and return it."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require a probability in [0, 1] and return it."""
    return check_in_range(name, value, 0.0, 1.0)


def check_power_of_two(name: str, value: int) -> int:
    """Require a positive power of two and return it."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_int_in(name: str, value: int, allowed: tuple[int, ...]) -> int:
    """Require ``value`` to be one of ``allowed`` and return it."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value
