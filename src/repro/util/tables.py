"""Plain-text table rendering for experiment harnesses.

The benchmark/analysis modules print the same rows the paper's tables report;
this formatter keeps that output aligned and diff-friendly without pulling in
any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
