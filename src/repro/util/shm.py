"""Zero-copy ndarray transport over POSIX shared memory.

The process backend of :func:`repro.util.parallel.parallel_map` moves
task descriptions and results between address spaces.  Plain pickling
copies every byte twice (serialize into the IPC pipe, deserialize out of
it) — for warmup and capacity tasks the payloads are dominated by a few
large ndarrays (quantized kernel sets, programmed weight tensors), so
the pipe transfer dominates wall clock once compute is vectorized.

This module rides those arrays over
:class:`multiprocessing.shared_memory.SharedMemory` segments instead:
:func:`dumps` pickles an object graph but intercepts every large ndarray
(``persistent_id``), copying it into a fresh segment and emitting only a
``(name, shape, dtype)`` handle into the pickle stream; :func:`loads`
re-materializes the graph, attaching to each segment and exposing the
array either as a **read-only zero-copy view** (``copy=False`` — the
worker-side task path) or as a private copy (``copy=True`` — the
main-process result path, which may also ``unlink`` the segment once
copied).  Small arrays and everything else stay inside the pickle blob,
so the format degrades transparently to plain pickle when no array
clears ``min_bytes`` — a blob produced by vanilla ``pickle.dumps`` is
also a valid input to :func:`loads`.

Segment lifetime protocol (the caller's side of the contract):

* the **creator** of a payload owns ``unlink`` of its segments — the
  main process unlinks task segments after the map completes, and
  unlinks result segments as it copies them out (``loads(...,
  unlink=True)``); workers only ever ``close`` their attachments;
* a zero-copy view (``copy=False``) pins its segment mapping — close
  the returned attachments only after dropping every view (closing with
  live views raises ``BufferError``; :func:`close_attachments` swallows
  it and lets the garbage collector finish the job);
* if a map is aborted by a task exception, result segments of
  already-finished tasks may outlive the run — the spawn children share
  the parent's ``resource_tracker``, which reclaims them at interpreter
  exit, so an aborted run leaks bounded scratch space, never forever.

Bit-identity: the intercepted arrays are copied byte-for-byte
(``ascontiguousarray`` then a buffer copy), so a graph round-tripped
through :func:`dumps`/:func:`loads` is bit-identical to the pickled
original — the ordered-merge contract of :mod:`repro.util.parallel`
holds unchanged under shared-memory transport.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None  # type: ignore[assignment]

#: Arrays below this many bytes stay inside the pickle blob: a shared
#: memory segment costs a syscall + mmap each side, which only pays for
#: itself once the array is bigger than the IPC pipe's buffering.
DEFAULT_MIN_BYTES: int = 1 << 16

#: Persistent-id tag; versioned so a stale blob fails loudly, not weirdly.
_PID_TAG = "repro-shm-ndarray-v1"

#: Numeric dtype kinds eligible for segment transport (bool/int/uint/
#: float/complex).  Object and structured dtypes pickle normally.
_SIMPLE_KINDS = frozenset("biufc")


def shm_available() -> bool:
    """Whether this platform offers ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


@dataclass(frozen=True)
class ShmPayload:
    """One encoded object graph: pickle blob + the segments it references.

    ``segments`` lists the names of segments *created* while encoding —
    the creator must :func:`unlink_segments` them once every consumer
    has decoded the blob.
    """

    blob: bytes
    segments: tuple[str, ...]


class _ShmPickler(pickle.Pickler):
    """Pickler that spills large ndarrays into shared-memory segments."""

    def __init__(self, file: io.BytesIO, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._min_bytes = min_bytes
        self.segments: list[str] = []
        # persistent_id is consulted *before* the pickle memo, so the
        # same array object reached twice would spill twice — memoize by
        # identity (strong refs keep the ids valid for the dump's life).
        self._seen: dict[int, tuple[np.ndarray, tuple[Any, ...]]] = {}

    def persistent_id(self, obj: Any) -> tuple[Any, ...] | None:
        if (
            not isinstance(obj, np.ndarray)
            or obj.dtype.kind not in _SIMPLE_KINDS
            or obj.nbytes < self._min_bytes
        ):
            return None
        cached = self._seen.get(id(obj))
        if cached is not None and cached[0] is obj:
            return cached[1]
        arr = np.ascontiguousarray(obj)
        segment = _shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        try:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
            dst[...] = arr
            del dst
        finally:
            segment.close()  # drop our mapping; the segment persists
        self.segments.append(segment.name)
        pid = (_PID_TAG, segment.name, arr.shape, arr.dtype.str)
        self._seen[id(obj)] = (obj, pid)
        return pid


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler that re-materializes spilled ndarrays from segments."""

    def __init__(self, file: io.BytesIO, copy: bool, unlink: bool) -> None:
        super().__init__(file)
        self._copy = copy
        self._unlink = unlink
        self.attachments: list[Any] = []

    def persistent_load(self, pid: Any) -> np.ndarray:
        if not (
            isinstance(pid, tuple) and len(pid) == 4 and pid[0] == _PID_TAG
        ):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        _, name, shape, dtype_str = pid
        segment = _shared_memory.SharedMemory(name=name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=segment.buf)
        if not self._copy:
            arr.flags.writeable = False  # views must not mutate shared state
            self.attachments.append(segment)
            return arr
        out = arr.copy()
        del arr
        segment.close()
        if self._unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # same array referenced twice: first load unlinked it
        return out


def dumps(obj: Any, min_bytes: int = DEFAULT_MIN_BYTES) -> ShmPayload:
    """Encode ``obj``: pickle blob + shared-memory segments for big arrays.

    Raises whatever the platform raises when segments cannot be created
    (after unlinking any partial segments) — callers fall back to plain
    pickling on failure.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    buffer = io.BytesIO()
    pickler = _ShmPickler(buffer, min_bytes)
    try:
        pickler.dump(obj)
    except Exception:
        unlink_segments(pickler.segments)
        raise
    return ShmPayload(buffer.getvalue(), tuple(pickler.segments))


def loads(
    blob: bytes, *, copy: bool = True, unlink: bool = False
) -> tuple[Any, list[Any]]:
    """Decode a :func:`dumps` blob; returns ``(obj, attachments)``.

    With ``copy=True`` every spilled array is copied out, its segment is
    closed (and unlinked when ``unlink=True`` — the result-consuming
    main process owns the worker-created segments), and ``attachments``
    is empty.  With ``copy=False`` arrays are **read-only views** into
    the live segments and ``attachments`` holds the open
    ``SharedMemory`` handles — pass them to :func:`close_attachments`
    after the last view is dropped.  Blobs from vanilla ``pickle.dumps``
    decode unchanged (no persistent ids, no attachments).
    """
    unpickler = _ShmUnpickler(io.BytesIO(blob), copy=copy, unlink=unlink)
    obj = unpickler.load()
    return obj, unpickler.attachments


def close_attachments(attachments: list[Any]) -> None:
    """Close segment handles from ``loads(copy=False)``, tolerantly.

    A handle whose views are still referenced raises ``BufferError`` on
    close; that is not an error here — the mapping is released when the
    garbage collector drops the last view.
    """
    for segment in attachments:
        try:
            segment.close()
        except BufferError:  # a view outlives us; gc will finish the close
            pass


def unlink_segments(names: list[str] | tuple[str, ...]) -> None:
    """Unlink segments by name, ignoring ones already gone."""
    if _shared_memory is None:
        return
    for name in names:
        try:
            segment = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlink
            pass


__all__ = [
    "DEFAULT_MIN_BYTES",
    "ShmPayload",
    "close_attachments",
    "dumps",
    "loads",
    "shm_available",
    "unlink_segments",
]
