"""Shared utilities: physical constants, seeded RNG, validation, tables.

These helpers are deliberately tiny and dependency-free so that every other
subpackage (photonics, circuits, nn, core, ...) can rely on them without
import cycles.
"""

from repro.util.parallel import (
    BACKENDS,
    START_METHOD,
    ParallelConfig,
    active_pools,
    available_cores,
    parallel_map,
    pool_scope,
    shutdown_pools,
    warm_pools,
)
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.tables import format_table
from repro.util.units import (
    C_LIGHT_M_S,
    ELEMENTARY_CHARGE_C,
    KB_J_PER_K,
    PLANCK_J_S,
    ROOM_TEMPERATURE_K,
    db_to_linear,
    linear_to_db,
    wavelength_to_frequency,
)
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "BACKENDS",
    "C_LIGHT_M_S",
    "ELEMENTARY_CHARGE_C",
    "KB_J_PER_K",
    "PLANCK_J_S",
    "ParallelConfig",
    "ROOM_TEMPERATURE_K",
    "START_METHOD",
    "active_pools",
    "available_cores",
    "check_in_range",
    "parallel_map",
    "pool_scope",
    "shutdown_pools",
    "warm_pools",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "db_to_linear",
    "derive_rng",
    "format_table",
    "linear_to_db",
    "spawn_seeds",
    "wavelength_to_frequency",
]
