"""Multi-core fan-out: ordered map over serial/thread/process backends.

The compute paths are vectorized (cold programming ~50x, warm serving
~26x), so the remaining wall-clock bottlenecks are the *serial fan-outs*
wrapped around them: :meth:`~repro.engine.server.FrameServer.warmup`
programs every (model, die) pair one at a time, the capacity planner
(:mod:`repro.analysis.capacity`) walks its scenario x policy x nodes grid
sequentially, and the registry sweeps (``repro sweep``,
:mod:`repro.analysis.robustness_report`) iterate platforms and fault
rates in one process.  Each of those is a list of *independent* tasks —
exactly the unit of process parallelism an OASIS-style fleet of
deterministic dies suggests.

:func:`parallel_map` maps a task function over such a list and merges the
results **in task order**, so the caller sees the exact sequence a plain
``[fn(t) for t in tasks]`` loop would produce.  That ordered merge is the
load-bearing contract: every report built on top (``ServeReport``,
``CapacityReport``, the robustness table) must be **byte-identical**
under every backend, and the repo's bit-identity golden tests run under
all three (``tests/test_parallel_equivalence.py``).

Task requirements (the caller's side of the contract):

* **pure** — a task must not mutate shared state; anything it needs goes
  in its task description, anything it produces comes back in its return
  value (the ``process`` backend runs it in another address space, so
  side effects are silently lost — the classic parallelism bug);
* **picklable** — task descriptions and results cross a process
  boundary; keep them to plain data (dataclasses, numpy arrays, dicts)
  and define task functions at module level;
* **deterministically seeded** — a task that draws randomness must
  derive its generator from seeds in its own description
  (:func:`repro.util.rng.derive_rng`), never from global or ambient
  state, or the ordered merge preserves order but not bits.

**Start method.** Process pools are pinned to the explicit ``spawn``
start method, never the platform default.  ``fork`` (Linux's default)
duplicates the parent mid-flight — including live BLAS/OpenMP thread
pools, whose forked locks can deadlock or silently corrupt state — and
makes worker state depend on *when* the pool was forked.  ``spawn``
children import the task module fresh, so a task sees exactly what its
description says, on every platform, every run.  The price is a one-time
interpreter start + import per worker — which is why pools persist.

**Persistent pools.** Executors are created lazily in a module-level
registry keyed by ``(backend, workers)`` and **reused across
parallel_map calls** within a run: warmup, the capacity grid and the
registry sweeps share one set of spawned workers instead of paying the
spawn+import tax per fan-out.  :func:`shutdown_pools` tears the registry
down (also registered via ``atexit``), and :func:`pool_scope` wraps a
block with a teardown for tests.  Tasks are submitted in chunks
(:meth:`ParallelConfig.resolve_chunksize`) to amortize per-task IPC
without disturbing the ordered merge.

**Zero-copy transport.** On the process backend, task descriptions and
results whose ndarrays reach ``ParallelConfig.shm_min_bytes`` ride
shared-memory segments (:mod:`repro.util.shm`) instead of the IPC pipe:
workers read task arrays as zero-copy views and ship result arrays back
by name.  The encoding falls back to plain pickling transparently —
per payload on encode failure, wholesale when shared memory is
unavailable or ``shm_min_bytes`` is ``None`` — and is bit-identical by
construction, so the merge contract is unchanged.

The ``thread`` backend exists for tasks that release the GIL (large BLAS
calls) and for exercising the contract cheaply in tests; ``process`` is
the backend that buys wall-clock on multi-core hosts.  Both degrade to
the serial loop when only one worker is available, so ``--workers 1`` is
*the* serial path, not a one-worker pool.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.util import shm

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Supported executor backends, in "cheapest first" order.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

#: The pinned start method for process pools (see the module docstring).
START_METHOD: str = "spawn"


@dataclass(frozen=True)
class ParallelConfig:
    """Executor selection for one fan-out (backend + worker count).

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.  ``serial`` is the default and the
        reference semantics; ``thread``/``process`` must produce
        byte-identical results (see the module docstring for the task
        contract).
    workers:
        Worker count; ``None`` means "one per available core".  A value
        of 1 degrades any backend to the serial loop.
    chunksize:
        Tasks submitted per worker round-trip; ``None`` picks
        ``ceil(tasks / (workers * 4))`` so each worker sees ~4 chunks —
        large enough to amortize per-task IPC, small enough to balance
        uneven task costs.  Chunking never reorders the merge.
    shm_min_bytes:
        Process-backend transport threshold: ndarrays of at least this
        many bytes in a task description or result ride shared-memory
        segments instead of the IPC pipe (:mod:`repro.util.shm`).
        ``None`` disables the shared-memory path entirely (plain
        pickling, the pre-persistent-pools behavior).
    """

    backend: str = "serial"
    workers: int | None = None
    chunksize: int | None = None
    shm_min_bytes: int | None = shm.DEFAULT_MIN_BYTES

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ValueError(
                f"workers must be positive or None, got {self.workers}"
            )
        if self.chunksize is not None and self.chunksize <= 0:
            raise ValueError(
                f"chunksize must be positive or None, got {self.chunksize}"
            )
        if self.shm_min_bytes is not None and self.shm_min_bytes < 0:
            raise ValueError(
                "shm_min_bytes must be non-negative or None, got "
                f"{self.shm_min_bytes}"
            )

    def resolve_workers(self) -> int:
        """Concrete worker count (``None`` -> available cores)."""
        if self.workers is not None:
            return self.workers
        return available_cores()

    def resolve_chunksize(self, num_tasks: int) -> int:
        """Concrete chunk size for a fan-out of ``num_tasks`` tasks."""
        if self.chunksize is not None:
            return self.chunksize
        busy = max(1, min(self.resolve_workers(), num_tasks))
        return max(1, -(-num_tasks // (busy * 4)))

    @property
    def effective_backend(self) -> str:
        """The backend after the one-worker degeneracy rule.

        ``--workers 1`` (or a one-core host with ``workers=None``) runs
        the plain serial loop regardless of the requested backend — a
        one-worker pool would add dispatch overhead and change nothing
        else, and the serial pin keeps "parallel off" a single code path.
        """
        if self.backend == "serial" or self.resolve_workers() <= 1:
            return "serial"
        return self.backend

    @property
    def is_serial(self) -> bool:
        """Whether this config runs the plain in-process loop."""
        return self.effective_backend == "serial"


def available_cores() -> int:
    """Cores usable by this process (affinity-aware where supported)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


# --------------------------------------------------------------------------
# Persistent pool registry
# --------------------------------------------------------------------------
_pools: dict[tuple[str, int], Executor] = {}
_pools_lock = threading.Lock()


def _pool_for(backend: str, workers: int) -> Executor:
    """The shared executor for ``(backend, workers)``, created lazily.

    The pool is sized at the *configured* worker count, not clamped to
    any one fan-out's task count, so warmup (8 tasks) and the capacity
    grid (dozens) share the same spawned workers.
    """
    key = (backend, workers)
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            if backend == "thread":
                pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-parallel"
                )
            else:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=multiprocessing.get_context(START_METHOD),
                )
            _pools[key] = pool
        return pool


def _discard_pool(backend: str, workers: int) -> None:
    """Drop one registry entry (after a worker crash broke the pool)."""
    with _pools_lock:
        pool = _pools.pop((backend, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def active_pools() -> tuple[tuple[str, int], ...]:
    """The live registry keys (for tests and diagnostics)."""
    with _pools_lock:
        return tuple(_pools)


def shutdown_pools() -> int:
    """Tear down every registered pool; returns how many were shut down.

    Safe to call at any time: the next :func:`parallel_map` simply
    re-creates what it needs.  Registered via ``atexit`` so a run never
    leaks worker processes.
    """
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=True)
    return len(pools)


@contextmanager
def pool_scope() -> Iterator[None]:
    """Context manager guaranteeing pool teardown at block exit.

    For tests and short-lived embedders: pools created inside the block
    (or inherited from before it) are all shut down on exit, so no
    worker processes outlive the scope.
    """
    try:
        yield
    finally:
        shutdown_pools()


atexit.register(shutdown_pools)


def _noop(_task: Any) -> None:
    """Do-nothing task used to force worker startup ahead of timing."""
    return None


def warm_pools(parallel: ParallelConfig | None) -> None:
    """Pre-spawn the pool a config would use (no-op for serial configs).

    Process workers are spawned lazily on first submission; benches that
    want to measure *reused-pool* fan-out latency call this first so the
    spawn+import tax is paid outside the timed region.
    """
    config = parallel or ParallelConfig()
    if config.is_serial:
        return
    workers = config.resolve_workers()
    # Two tasks per worker: enough submissions to start every worker.
    parallel_map(_noop, range(2 * workers), config)


# --------------------------------------------------------------------------
# Shared-memory task execution (process backend)
# --------------------------------------------------------------------------
def _shm_call(blob: bytes) -> bytes:
    """Worker-side trampoline: decode task views, run, encode result.

    The task blob decodes to ``(fn, task, min_bytes)`` with large arrays
    as read-only views into main-created segments; the result is encoded
    into worker-created segments the main process copies out and
    unlinks.  Falls back to plain pickling of the result if segment
    creation fails (e.g. shared memory exhausted) — the main-side decode
    accepts both forms.
    """
    import pickle

    obj, attachments = shm.loads(blob, copy=False)
    try:
        fn, task, min_bytes = obj
        result = fn(task)
        try:
            payload = shm.dumps(result, min_bytes)
            out = payload.blob
        except Exception:
            out = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        del result
        return out
    finally:
        del obj
        shm.close_attachments(attachments)


def _map_via_shm(
    pool: Executor,
    fn: Callable[[_Task], _Result],
    items: Sequence[_Task],
    config: ParallelConfig,
    chunksize: int,
) -> list[_Result] | None:
    """Ordered map with shared-memory transport; ``None`` -> fall back.

    Encoding failures (no shared memory on this platform, segment
    creation refused) abort cleanly before any task runs, unlinking the
    partially created segments, and the caller falls back to the plain
    pickling path.
    """
    if not shm.shm_available():
        return None
    min_bytes = config.shm_min_bytes
    payloads: list[shm.ShmPayload] = []
    try:
        for item in items:
            payloads.append(shm.dumps((fn, item, min_bytes), min_bytes))
    except Exception:
        for payload in payloads:
            shm.unlink_segments(payload.segments)
        return None
    try:
        blobs = list(
            pool.map(_shm_call, [p.blob for p in payloads], chunksize=chunksize)
        )
    finally:
        for payload in payloads:
            shm.unlink_segments(payload.segments)
    return [shm.loads(blob, copy=True, unlink=True)[0] for blob in blobs]


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    parallel: ParallelConfig | None = None,
) -> list[_Result]:
    """Map ``fn`` over ``tasks``, merging results **in task order**.

    Semantically identical to ``[fn(task) for task in tasks]`` under
    every backend — ``Executor.map`` yields results in submission order
    no matter which worker finishes first, so the merged list (and
    therefore every report assembled from it) is byte-identical to the
    serial run *provided the tasks honour the purity/picklability/
    seeding contract* (module docstring).  Exceptions raised by a task
    propagate to the caller under every backend.

    The executor comes from the persistent registry (:func:`_pool_for`)
    and stays alive for the next call; a pool broken by a worker crash
    is discarded so the next call starts fresh.

    Parameters
    ----------
    fn:
        Task function; must be defined at module level for the
        ``process`` backend (bound methods and closures do not pickle).
    tasks:
        Task descriptions; materialized once, so generators are fine.
    parallel:
        Backend selection; ``None`` (or a serial/one-worker config) runs
        the plain loop.
    """
    config = parallel or ParallelConfig()
    items: Sequence[_Task] = list(tasks)
    backend = config.effective_backend
    if backend == "serial" or len(items) <= 1:
        return [fn(item) for item in items]
    workers = config.resolve_workers()
    chunksize = config.resolve_chunksize(len(items))
    pool = _pool_for(backend, workers)
    try:
        if backend == "process" and config.shm_min_bytes is not None:
            merged = _map_via_shm(pool, fn, items, config, chunksize)
            if merged is not None:
                return merged
        return list(pool.map(fn, items, chunksize=chunksize))
    except BrokenExecutor:
        _discard_pool(backend, workers)
        raise


__all__ = [
    "BACKENDS",
    "START_METHOD",
    "ParallelConfig",
    "active_pools",
    "available_cores",
    "parallel_map",
    "pool_scope",
    "shutdown_pools",
    "warm_pools",
]
