"""Multi-core fan-out: ordered map over serial/thread/process backends.

The compute paths are vectorized (cold programming ~50x, warm serving
~26x), so the remaining wall-clock bottlenecks are the *serial fan-outs*
wrapped around them: :meth:`~repro.engine.server.FrameServer.warmup`
programs every (model, die) pair one at a time, the capacity planner
(:mod:`repro.analysis.capacity`) walks its scenario x policy x nodes grid
sequentially, and the registry sweeps (``repro sweep``,
:mod:`repro.analysis.robustness_report`) iterate platforms and fault
rates in one process.  Each of those is a list of *independent* tasks —
exactly the unit of process parallelism an OASIS-style fleet of
deterministic dies suggests.

:func:`parallel_map` maps a task function over such a list and merges the
results **in task order**, so the caller sees the exact sequence a plain
``[fn(t) for t in tasks]`` loop would produce.  That ordered merge is the
load-bearing contract: every report built on top (``ServeReport``,
``CapacityReport``, the robustness table) must be **byte-identical**
under every backend, and the repo's bit-identity golden tests run under
all three (``tests/test_parallel_equivalence.py``).

Task requirements (the caller's side of the contract):

* **pure** — a task must not mutate shared state; anything it needs goes
  in its task description, anything it produces comes back in its return
  value (the ``process`` backend runs it in another address space, so
  side effects are silently lost — the classic parallelism bug);
* **picklable** — task descriptions and results cross a process
  boundary; keep them to plain data (dataclasses, numpy arrays, dicts)
  and define task functions at module level;
* **deterministically seeded** — a task that draws randomness must
  derive its generator from seeds in its own description
  (:func:`repro.util.rng.derive_rng`), never from global or ambient
  state, or the ordered merge preserves order but not bits.

The ``thread`` backend exists for tasks that release the GIL (large BLAS
calls) and for exercising the contract cheaply in tests; ``process`` is
the backend that buys wall-clock on multi-core hosts.  Both degrade to
the serial loop when only one worker is available, so ``--workers 1`` is
*the* serial path, not a one-worker pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Supported executor backends, in "cheapest first" order.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


@dataclass(frozen=True)
class ParallelConfig:
    """Executor selection for one fan-out (backend + worker count).

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.  ``serial`` is the default and the
        reference semantics; ``thread``/``process`` must produce
        byte-identical results (see the module docstring for the task
        contract).
    workers:
        Worker count; ``None`` means "one per available core".  A value
        of 1 degrades any backend to the serial loop.
    """

    backend: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers is not None and self.workers <= 0:
            raise ValueError(
                f"workers must be positive or None, got {self.workers}"
            )

    def resolve_workers(self) -> int:
        """Concrete worker count (``None`` -> available cores)."""
        if self.workers is not None:
            return self.workers
        return available_cores()

    @property
    def effective_backend(self) -> str:
        """The backend after the one-worker degeneracy rule.

        ``--workers 1`` (or a one-core host with ``workers=None``) runs
        the plain serial loop regardless of the requested backend — a
        one-worker pool would add dispatch overhead and change nothing
        else, and the serial pin keeps "parallel off" a single code path.
        """
        if self.backend == "serial" or self.resolve_workers() <= 1:
            return "serial"
        return self.backend

    @property
    def is_serial(self) -> bool:
        """Whether this config runs the plain in-process loop."""
        return self.effective_backend == "serial"


def available_cores() -> int:
    """Cores usable by this process (affinity-aware where supported)."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    parallel: ParallelConfig | None = None,
) -> list[_Result]:
    """Map ``fn`` over ``tasks``, merging results **in task order**.

    Semantically identical to ``[fn(task) for task in tasks]`` under
    every backend — ``Executor.map`` yields results in submission order
    no matter which worker finishes first, so the merged list (and
    therefore every report assembled from it) is byte-identical to the
    serial run *provided the tasks honour the purity/picklability/
    seeding contract* (module docstring).  Exceptions raised by a task
    propagate to the caller under every backend.

    Parameters
    ----------
    fn:
        Task function; must be defined at module level for the
        ``process`` backend (bound methods and closures do not pickle).
    tasks:
        Task descriptions; materialized once, so generators are fine.
    parallel:
        Backend selection; ``None`` (or a serial/one-worker config) runs
        the plain loop.
    """
    config = parallel or ParallelConfig()
    items: Sequence[_Task] = list(tasks)
    backend = config.effective_backend
    if backend == "serial" or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(config.resolve_workers(), len(items))
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(fn, items))


__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "available_cores",
    "parallel_map",
]
