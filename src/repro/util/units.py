"""Physical constants and unit-conversion helpers (SI units throughout).

The whole repository works in SI base units: volts, amperes, seconds, watts,
joules, metres, kelvin.  Derived quantities keep explicit suffixes in their
names (``power_w``, ``delay_s``, ``energy_j``) so call sites never have to
guess the scale.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
C_LIGHT_M_S = 299_792_458.0

#: Planck constant [J*s].
PLANCK_J_S = 6.626_070_15e-34

#: Boltzmann constant [J/K].
KB_J_PER_K = 1.380_649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE_C = 1.602_176_634e-19

#: Default ambient temperature used by noise models [K].
ROOM_TEMPERATURE_K = 300.0

# Convenient scale factors (multiply to convert *into* SI).
NM = 1e-9
UM = 1e-6
MM = 1e-3
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3
UA = 1e-6
MA = 1e-3
MW = 1e-3
UW = 1e-6
NW = 1e-9
PJ = 1e-12
FJ = 1e-15
GHZ = 1e9
THZ = 1e12


def wavelength_to_frequency(wavelength_m: float) -> float:
    """Convert an optical wavelength [m] to frequency [Hz]."""
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
    return C_LIGHT_M_S / wavelength_m


def frequency_to_wavelength(frequency_hz: float) -> float:
    """Convert an optical frequency [Hz] to wavelength [m]."""
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return C_LIGHT_M_S / frequency_hz


def db_to_linear(value_db: float) -> float:
    """Convert a power ratio expressed in dB to a linear ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to dB.  ``value`` must be positive."""
    if value <= 0.0:
        raise ValueError(f"linear ratio must be positive, got {value!r}")
    return 10.0 * math.log10(value)


def dbm_to_watt(power_dbm: float) -> float:
    """Convert optical power in dBm to watts."""
    return 1e-3 * 10.0 ** (power_dbm / 10.0)


def watt_to_dbm(power_w: float) -> float:
    """Convert optical power in watts to dBm."""
    if power_w <= 0.0:
        raise ValueError(f"power must be positive, got {power_w!r}")
    return 10.0 * math.log10(power_w / 1e-3)


def photon_energy_j(wavelength_m: float) -> float:
    """Energy of a single photon at ``wavelength_m`` [J]."""
    return PLANCK_J_S * wavelength_to_frequency(wavelength_m)


def tops_per_watt(ops_per_second: float, power_w: float) -> float:
    """Compute efficiency in TOp/s/W from a raw op rate and power draw."""
    if power_w <= 0.0:
        raise ValueError(f"power must be positive, got {power_w!r}")
    return (ops_per_second / 1e12) / power_w
