"""Deterministic random-number management.

Every stochastic component in the repository (device mismatch, optical noise,
dataset synthesis, weight init) draws from a :class:`numpy.random.Generator`
derived from an explicit integer seed.  ``derive_rng`` provides a stable way
to fork independent streams from a (seed, label) pair so that, e.g., the AWC
mismatch pattern does not shift when the dataset generator consumes more
randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used when a caller passes ``seed=None``; keeps runs reproducible by
#: default while still letting callers opt into explicit seeds.
DEFAULT_SEED = 0xD47E_2024  # "DATE 2024"


def _label_to_int(label: str) -> int:
    """Hash a text label into a stable 64-bit integer."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(seed: int | None, label: str = "") -> np.random.Generator:
    """Return a Generator seeded from ``(seed, label)``.

    Parameters
    ----------
    seed:
        Base integer seed; ``None`` selects :data:`DEFAULT_SEED`.
    label:
        Free-form stream label (e.g. ``"awc-mismatch"``).  Different labels
        with the same seed give independent, reproducible streams.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    if label:
        base = np.random.SeedSequence([base, _label_to_int(label)]).entropy
        return np.random.default_rng(np.random.SeedSequence([base]))
    return np.random.default_rng(np.random.SeedSequence([base]))


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """Produce ``count`` independent child seeds from a base seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    base = DEFAULT_SEED if seed is None else int(seed)
    children = np.random.SeedSequence(base).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]
