"""One-shot reproduction report: every artifact in a single document.

``generate_report`` regenerates the cheap artifacts (Fig. 4, Fig. 8,
Fig. 9, Table I, headline claims) and, when a Table II cache exists, folds
the accuracy table in too.  The benchmarks write individual artifacts; this
is the "give me the whole reproduction as one file" entry point.
"""

from __future__ import annotations

import os

from repro.analysis.claims import build_claims, render_claims
from repro.analysis.fig4 import render_fig4
from repro.analysis.fig8 import render_fig8
from repro.analysis.fig9 import build_fig9, render_fig9
from repro.analysis.table1 import render_table1
from repro.analysis.table2 import build_table2, render_table2
from repro.sim.accuracy import Table2Settings


def generate_report(
    table2_cache: str | None = None,
    table2_datasets: tuple[str, ...] | None = None,
) -> str:
    """Assemble the full reproduction report as markdown-ish text.

    Parameters
    ----------
    table2_cache:
        Path to a Table II result cache.  When the file exists, the cached
        accuracy table is included (cells missing from the cache would
        trigger training, so the section is skipped when the file is
        absent).
    table2_datasets:
        Dataset subset for the Table II section (defaults to all four).
    """
    sections = [
        "# OISA reproduction report",
        "",
        "## Headline claims",
        "",
        render_claims(build_claims(include_fig9=True)),
        "",
        "## Fig. 4(b) — AWC staircase",
        "",
        render_fig4(),
        "",
        "## Fig. 8 — VAM thresholding",
        "",
        render_fig8(),
        "",
        "## Fig. 9 — power comparison",
        "",
        render_fig9(build_fig9()),
        "",
        "## Table I — PIS/PNS comparison",
        "",
        render_table1(),
    ]
    if table2_cache and os.path.exists(table2_cache):
        datasets = table2_datasets or ("mnist", "svhn", "cifar10", "cifar100")
        data = build_table2(
            settings=Table2Settings.fast(),
            datasets=datasets,
            cache_path=table2_cache,
        )
        sections.extend(["", "## Table II — accuracy", "", render_table2(data)])
    return "\n".join(sections)


def write_report(
    path: str,
    table2_cache: str | None = None,
    table2_datasets: tuple[str, ...] | None = None,
) -> str:
    """Write the report to ``path`` and return the path."""
    text = generate_report(
        table2_cache=table2_cache, table2_datasets=table2_datasets
    )
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
