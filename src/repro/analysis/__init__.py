"""Experiment harnesses: one module per paper table/figure plus claims.

Each module exposes a ``build_*`` function returning plain data (so tests
and benchmarks can assert on it) and a ``render_*`` function producing the
text artifact the paper's table/figure corresponds to.
"""

from repro.analysis.claims import build_claims, render_claims
from repro.analysis.fig4 import build_fig4, render_fig4
from repro.analysis.fig8 import build_fig8, render_fig8
from repro.analysis.fig9 import build_fig9, render_fig9
from repro.analysis.report import generate_report, write_report
from repro.analysis.sweeps import pareto_front, sweep_design_space
from repro.analysis.table1 import build_table1, render_table1
from repro.analysis.table2 import build_table2, render_table2

__all__ = [
    "build_claims",
    "build_fig4",
    "build_fig8",
    "build_fig9",
    "build_table1",
    "build_table2",
    "generate_report",
    "pareto_front",
    "render_claims",
    "render_fig4",
    "render_fig8",
    "render_fig9",
    "render_table1",
    "render_table2",
    "sweep_design_space",
    "write_report",
]
