"""Robustness tables: accuracy-vs-fault-rate + serving resilience.

The paper's Table II reports healthy-die accuracy; this report extends the
evaluation along the degradation axis the serving engine now exercises
(:mod:`repro.engine.health`): for every registered platform
(:mod:`repro.sim.platforms`) and every dead-device rate, what top-1
accuracy survives?

A second table (:func:`build_resilience_report`) covers the *serving*
robustness axis added by :mod:`repro.engine.chaos` /
:mod:`repro.engine.failover`: the same chaos-injected stream served under
increasing failover ladders (none → retry → retry + warm spares), with
availability, interactive deadline attainment and recovery time per rung.

* **Fault-injectable platforms** (OISA: ``Platform.fault_injectable``) run
  hardware-in-the-loop through :class:`~repro.sim.faults.FaultyOpticalCore`
  at each rate, optionally twice — raw and with the per-die AWC
  pre-distortion of :class:`~repro.core.calibration.CalibratedAwcMapper`
  (the online-recalibration path's mapping chain);
* **digital platforms** (the rebuilt baselines) have no optical fault
  surface; they hold the software accuracy at every rate and the table
  marks them exempt.

All draws are seeded, so the table is deterministic; the tier-1 test runs
a scaled-down preset and the CLI (``repro sweep --fault-profile ...``)
prints the default one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.datasets.catalog import Dataset
from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.nn.models import FirstLayerConfig, build_lenet
from repro.nn.optim import SGD, CosineLR
from repro.nn.train import Trainer
from repro.sim.faults import FaultSpec, FaultyOpticalCore
from repro.sim.platforms import iter_platforms
from repro.util.parallel import ParallelConfig, parallel_map
from repro.util.tables import format_table


@dataclass(frozen=True)
class RobustnessSettings:
    """Scale knobs for the robustness sweep (all seeded/deterministic)."""

    fault_rates: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.3)
    #: Fault classes applied *alongside* the swept dead-MR rate — a
    #: :class:`~repro.engine.health.FaultProfile`'s ``fault_spec`` plugs in
    #: here (``repro sweep --fault-profile``), so a harsher profile (stuck
    #: AWC branches, BPD gain drift) produces a genuinely harsher table.
    base_spec: FaultSpec = field(default_factory=FaultSpec)
    #: Scenario label shown in the rendered title ("" = generic sweep).
    label: str = ""
    weight_bits: int = 3
    num_classes: int = 4
    image_size: int = 16
    train_size: int = 240
    test_size: int = 120
    epochs: int = 4
    seed: int = 0
    oisa_seed: int = 7
    fault_seed: int = 9
    #: Also evaluate the calibrated (pre-distorted AWC) mapping chain.
    include_calibrated: bool = True

    @classmethod
    def fast(cls) -> "RobustnessSettings":
        """Tier-1-test preset: trims the rate grid, keeps the training
        scale (an undertrained probe sits at chance level and hides the
        fault effect the sweep exists to show)."""
        return cls(fault_rates=(0.0, 0.3))


@dataclass(frozen=True)
class RobustnessCell:
    """One (platform, fault rate) accuracy measurement."""

    platform: str
    fault_rate: float
    accuracy: float
    #: Accuracy with the calibrated mapping chain (None when not measured
    #: or not applicable).
    calibrated_accuracy: float | None
    #: Whether the platform actually degrades (False = digital, exempt).
    fault_injectable: bool


@dataclass
class RobustnessReport:
    """The full sweep plus the context needed to render it."""

    settings: RobustnessSettings
    software_accuracy: float
    cells: list[RobustnessCell] = field(default_factory=list)

    def platforms(self) -> tuple[str, ...]:
        """Platform names in registry order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.platform, None)
        return tuple(seen)

    def accuracy_matrix(self) -> dict[str, dict[float, float]]:
        """{platform: {fault rate: accuracy}} over the sweep."""
        matrix: dict[str, dict[float, float]] = {}
        for cell in self.cells:
            matrix.setdefault(cell.platform, {})[cell.fault_rate] = cell.accuracy
        return matrix


def _train_probe_model(settings: RobustnessSettings):
    """Train the shared QAT probe model on a seeded synthetic task."""
    spec = SyntheticSpec(
        name="robustness",
        num_classes=settings.num_classes,
        image_size=settings.image_size,
        channels=1,
        train_size=settings.train_size,
        test_size=settings.test_size,
        noise_sigma=0.05,
        jitter_px=1,
        clutter=0.08,
        seed=5,
    )
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    dataset = Dataset(
        "robustness",
        x_train,
        y_train,
        x_test,
        y_test,
        settings.num_classes,
        settings.image_size,
        1,
        "LeNet",
    )
    model = build_lenet(
        num_classes=settings.num_classes,
        input_size=settings.image_size,
        first_layer=FirstLayerConfig(weight_bits=settings.weight_bits),
        seed=settings.seed,
    )
    trainer = Trainer(
        model,
        SGD(model.parameters(), momentum=0.9, weight_decay=1e-4),
        CosineLR(0.05, 1e-4),
        seed=settings.seed,
    )
    trainer.fit(
        x_train, y_train, epochs=settings.epochs, batch_size=32
    )
    return model, dataset


def _software_accuracy(model, dataset) -> float:
    """Top-1 accuracy of the pure-software (no optics) forward pass."""
    logits = model.forward(dataset.x_test, training=False)
    return float((logits.argmax(axis=1) == dataset.y_test).mean())


def _hardware_accuracy(
    model,
    dataset,
    settings: RobustnessSettings,
    rate: float,
    calibrated: bool,
) -> float:
    """Hardware-in-the-loop accuracy at one dead-MR rate.

    The swept rate replaces ``base_spec.dead_mr_rate``; the base spec's
    other fault classes ride along at every point.
    """
    from dataclasses import replace

    from repro.core.calibration import CalibratedAwcMapper

    config = OISAConfig().with_weight_bits(settings.weight_bits)
    opc = OpticalProcessingCore(config, seed=settings.oisa_seed)
    if calibrated:
        opc.awc = CalibratedAwcMapper(opc.awc)
    spec = replace(settings.base_spec, dead_mr_rate=rate)
    core = (
        FaultyOpticalCore(opc, spec, seed=settings.fault_seed)
        if spec.any_faults
        else opc
    )
    pipeline = HardwareFirstLayerPipeline(model, core)
    return pipeline.evaluate(dataset.x_test, dataset.y_test)


def _hardware_cell_task(task) -> tuple[float, float | None]:
    """One (fault rate) hardware-in-the-loop cell, as a pure fan-out task.

    Carries the trained probe model and the test split in the task
    description (both plain numpy payloads, picklable); the worker
    rebuilds the seeded OPC/fault chain from the settings, so the cell is
    deterministic per description — the :mod:`repro.util.parallel`
    contract that keeps the parallel table byte-identical to the serial
    one.
    """
    model, dataset, settings, rate = task
    accuracy = _hardware_accuracy(model, dataset, settings, rate, calibrated=False)
    calibrated = (
        _hardware_accuracy(model, dataset, settings, rate, calibrated=True)
        if settings.include_calibrated
        else None
    )
    return accuracy, calibrated


def build_robustness_report(
    settings: RobustnessSettings | None = None,
    parallel: ParallelConfig | None = None,
) -> RobustnessReport:
    """Run the registry-driven accuracy-vs-fault-rate sweep.

    The probe model trains once (shared, sequential); the platform x
    fault-rate grid then fans out over ``parallel`` — each
    fault-injectable cell is an independent seeded evaluation — and the
    cells merge back in registry x rate order, so the report (and its
    rendered table) is byte-identical under every backend.
    """
    settings = settings or RobustnessSettings()
    model, dataset = _train_probe_model(settings)
    software = _software_accuracy(model, dataset)
    report = RobustnessReport(settings=settings, software_accuracy=software)
    grid = [
        (platform, rate)
        for platform in iter_platforms()
        for rate in settings.fault_rates
    ]
    tasks = [
        (model, dataset, settings, rate)
        for platform, rate in grid
        if platform.fault_injectable
    ]
    measured = iter(parallel_map(_hardware_cell_task, tasks, parallel))
    for platform, rate in grid:
        if platform.fault_injectable:
            accuracy, calibrated = next(measured)
        else:
            # Digital platform: no optical fault surface; accuracy is
            # the software model's at every rate.
            accuracy = software
            calibrated = None
        report.cells.append(
            RobustnessCell(
                platform=platform.name,
                fault_rate=rate,
                accuracy=accuracy,
                calibrated_accuracy=calibrated,
                fault_injectable=platform.fault_injectable,
            )
        )
    return report


def render_robustness_report(report: RobustnessReport | None = None) -> str:
    """Aligned table of the sweep (one row per platform x rate)."""
    report = report or build_robustness_report()
    rows = []
    for cell in report.cells:
        rows.append(
            (
                cell.platform,
                f"{cell.fault_rate * 100:.0f}%",
                f"{cell.accuracy * 100:.1f}",
                (
                    f"{cell.calibrated_accuracy * 100:.1f}"
                    if cell.calibrated_accuracy is not None
                    else "-"
                ),
                "optical" if cell.fault_injectable else "digital (exempt)",
            )
        )
    scenario = f" [{report.settings.label}]" if report.settings.label else ""
    title = (
        f"Robustness{scenario}: accuracy vs dead-device rate across the "
        f"platform registry ({report.settings.weight_bits}-bit first "
        f"layer, software baseline {report.software_accuracy * 100:.1f}%)"
    )
    return format_table(
        (
            "platform",
            "fault rate",
            "accuracy [%]",
            "calibrated [%]",
            "fault surface",
        ),
        rows,
        title=title,
    )


# ----------------------------------------------------------------------
# Serving resilience: chaos stream vs failover ladder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceSettings:
    """Scale knobs for the chaos-vs-failover serving drill."""

    chaos_plan: str = "node-loss"
    scenario: str = "chaos"
    frames: int = 360
    offered_fps: float = 2400.0
    num_nodes: int = 2
    spares: int = 1
    retry_policy: str = "deadline"
    policy: str = "slo"
    seed: int = 0
    #: SLO class whose deadline attainment the table tracks.
    interactive_class: str = "interactive"

    @classmethod
    def fast(cls) -> "ResilienceSettings":
        """Tier-1-test preset: a shorter stream, same operating point."""
        return cls(frames=180, offered_fps=2400.0)


@dataclass(frozen=True)
class ResilienceRow:
    """One failover configuration served through the chaos stream."""

    label: str
    availability: float
    interactive_hit_rate: float
    #: First chaos loss onset -> first post-onset interactive delivery
    #: [s]; None when the plan injects no loss, inf when nothing recovers.
    recovery_time_s: float | None
    frames_lost_in_flight: int
    frames_recovered: int
    retries_scheduled: int
    spares_activated: int


@dataclass
class ServingResilienceReport:
    """The failover ladder served through one chaos-injected stream."""

    settings: ResilienceSettings
    rows: list[ResilienceRow] = field(default_factory=list)


def build_resilience_report(
    settings: ResilienceSettings | None = None,
) -> ServingResilienceReport:
    """Serve the chaos scenario under none → retry → retry + spares.

    Every rung serves the *same* request stream (same scenario seed) on a
    fresh server, so the rows differ only in the failover configuration —
    deterministic per settings, byte-for-byte.
    """
    from repro.engine.failover import availability, recovery_time_s
    from repro.engine.server import FrameServer
    from repro.engine.workloads import build_scenario

    settings = settings or ResilienceSettings()
    report = ServingResilienceReport(settings=settings)
    ladder = [
        ("no-failover", None, 0),
        ("retry", settings.retry_policy, 0),
        ("retry+spares", settings.retry_policy, settings.spares),
    ]
    for label, retry, spares in ladder:
        scenario = build_scenario(
            settings.scenario,
            frames=settings.frames,
            offered_fps=settings.offered_fps,
            seed=settings.seed,
        )
        server = FrameServer(
            num_nodes=settings.num_nodes,
            micro_batch=8,
            seed=settings.seed,
            policy=settings.policy,
            chaos_plan=settings.chaos_plan,
            retry_policy=retry,
            spares=spares,
        )
        for key, model in scenario.models.items():
            server.register_model(key, model)
        server.warmup()
        serve_report = server.serve_scenario(scenario)
        interactive = (
            serve_report.slo.classes.get(settings.interactive_class)
            if serve_report.slo is not None
            else None
        )
        resilience = serve_report.resilience
        interactive_keys = {
            key
            for key, slo in scenario.slo_classes.items()
            if slo.name == settings.interactive_class
        }
        report.rows.append(
            ResilienceRow(
                label=label,
                availability=availability(serve_report),
                interactive_hit_rate=(
                    interactive.hit_rate if interactive is not None else 0.0
                ),
                recovery_time_s=recovery_time_s(
                    serve_report, model_keys=interactive_keys or None
                ),
                frames_lost_in_flight=(
                    resilience.frames_lost_in_flight if resilience else 0
                ),
                frames_recovered=(
                    resilience.frames_recovered if resilience else 0
                ),
                retries_scheduled=(
                    resilience.retries_scheduled if resilience else 0
                ),
                spares_activated=(
                    resilience.spares_activated if resilience else 0
                ),
            )
        )
    return report


def render_resilience_report(
    report: ServingResilienceReport | None = None,
) -> str:
    """Aligned table of the failover ladder (one row per configuration)."""
    import math as _math

    report = report or build_resilience_report()
    rows = []
    for row in report.rows:
        if row.recovery_time_s is None:
            recovery = "-"
        elif _math.isinf(row.recovery_time_s):
            recovery = "never"
        else:
            recovery = f"{row.recovery_time_s * 1e3:.2f}"
        rows.append(
            (
                row.label,
                f"{row.availability * 100:.1f}",
                f"{row.interactive_hit_rate * 100:.1f}",
                recovery,
                str(row.frames_lost_in_flight),
                str(row.frames_recovered),
                str(row.retries_scheduled),
                str(row.spares_activated),
            )
        )
    settings = report.settings
    title = (
        f"Serving resilience: chaos plan {settings.chaos_plan!r} over "
        f"{settings.frames} frames @ {settings.offered_fps:.0f} fps on "
        f"{settings.num_nodes} node(s)"
    )
    return format_table(
        (
            "failover",
            "availability [%]",
            "interactive hit [%]",
            "recovery [ms]",
            "lost in flight",
            "recovered",
            "retries",
            "spares",
        ),
        rows,
        title=title,
    )
