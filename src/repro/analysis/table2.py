"""Table II: classification accuracy across datasets and [W:A] configs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.accuracy import (
    PAPER_ACCURACY_ROWS,
    TABLE2_CONFIGS,
    TABLE2_DATASETS,
    AccuracyResult,
    Table2Settings,
    run_table2,
)
from repro.util.tables import format_table

#: Maps our dataset preset names back to the paper's column names.
_DATASET_LABELS = {
    "mnist-like": "mnist",
    "svhn-like": "svhn",
    "cifar10-like": "cifar10",
    "cifar100-like": "cifar100",
}


@dataclass(frozen=True)
class Table2Data:
    """Measured cells plus the paper's reported rows."""

    results: list[AccuracyResult]
    paper_rows: dict
    settings: Table2Settings

    def cell(self, dataset: str, config_label: str) -> AccuracyResult | None:
        """Look up one measured cell by paper-style keys."""
        for result in self.results:
            if (
                _DATASET_LABELS.get(result.dataset, result.dataset) == dataset
                and result.config_label == config_label
            ):
                return result
        return None

    def accuracy_matrix(self) -> dict[str, dict[str, float]]:
        """{config label: {dataset: accuracy%}} of the measured cells."""
        matrix: dict[str, dict[str, float]] = {}
        for result in self.results:
            dataset = _DATASET_LABELS.get(result.dataset, result.dataset)
            matrix.setdefault(result.config_label, {})[dataset] = (
                result.reported_accuracy * 100.0
            )
        return matrix


def build_table2(
    settings: Table2Settings | None = None,
    datasets: tuple[str, ...] = TABLE2_DATASETS,
    cache_path: str | None = None,
) -> Table2Data:
    """Regenerate Table II's measured rows."""
    settings = settings or Table2Settings.fast()
    results = run_table2(
        settings=settings, datasets=datasets, cache_path=cache_path
    )
    return Table2Data(
        results=results, paper_rows=PAPER_ACCURACY_ROWS, settings=settings
    )


def render_table2(data: Table2Data) -> str:
    """Print Table II: measured rows, then the paper's reported rows."""
    datasets = []
    for result in data.results:
        label = _DATASET_LABELS.get(result.dataset, result.dataset)
        if label not in datasets:
            datasets.append(label)
    matrix = data.accuracy_matrix()

    headers = ["configuration"] + [f"{name} [%]" for name in datasets]
    order = ["baseline", "[4:2]", "[3:2]", "[2:2]", "[1:2]"]
    rows = []
    for label in order:
        if label not in matrix:
            continue
        display = label if label == "baseline" else f"OISA{label}"
        rows.append(
            [f"{display} (measured)"]
            + [matrix[label].get(name, float("nan")) for name in datasets]
        )
    for name, paper_row in data.paper_rows.items():
        rows.append(
            [f"{name} (paper)"]
            + [paper_row.get(dataset, "-") for dataset in datasets]
        )
    table = format_table(
        headers,
        rows,
        title=(
            "Table II — accuracy on synthetic dataset stand-ins "
            f"(epochs={data.settings.epochs}, scale={data.settings.dataset_scale})"
        ),
    )
    return table


def ordering_checks(data: Table2Data) -> dict[str, bool]:
    """The qualitative Table II claims, evaluated on measured cells.

    Single-seed QAT runs are noisy (the paper's own table contains
    inversions: its [2:2] beats its [3:2] on MNIST and CIFAR-100), so the
    checks assert the *robust* shape rather than strict per-pair
    orderings:

    * every quantized config loses accuracy vs. the float baseline on
      average (the analog path costs accuracy);
    * the 4th weight bit buys no meaningful accuracy over 3 bits — the
      AWC's fixed-full-scale error floor has eaten the finer grid;
    * every config keeps a useful fraction of the baseline's accuracy
      (no configuration is broken by the hardware model).
    """
    matrix = data.accuracy_matrix()
    datasets = sorted(
        {name for row in matrix.values() for name in row}
    )

    def mean(label: str) -> float:
        values = [matrix[label][d] for d in datasets if d in matrix.get(label, {})]
        return sum(values) / len(values) if values else float("nan")

    checks = {}
    quantized_labels = [
        label for label in ("[4:2]", "[3:2]", "[2:2]", "[1:2]") if label in matrix
    ]
    if "baseline" in matrix and quantized_labels:
        checks["quantized_below_baseline"] = all(
            mean(label) <= mean("baseline") + 0.5 for label in quantized_labels
        )
        checks["configs_retain_half_of_baseline"] = all(
            mean(label) >= 0.5 * mean("baseline") for label in quantized_labels
        )
    if "[4:2]" in matrix and "[3:2]" in matrix:
        checks["no_meaningful_gain_from_4bit"] = (
            mean("[4:2]") - mean("[3:2]") <= 5.0
        )
    return checks
