"""Fig. 8: VAM thresholding transient — three pixels, three ternary codes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.vam import VamCircuit
from repro.util.tables import format_table


@dataclass(frozen=True)
class Fig8Data:
    """Sampled waveform summary of the VAM transient."""

    sample_time_ns: float
    pixel_voltages_v: list[float]
    t1: list[int]
    t2: list[int]
    symbols: list[int]
    vref_low_v: float
    vref_high_v: float
    times_ns: np.ndarray
    traces: dict[str, np.ndarray]


def build_fig8(
    illuminances_lux: tuple[float, ...] = (13000.0, 6500.0, 2000.0),
    sample_time_ns: float = 16.5,
    seed: int | None = None,
) -> Fig8Data:
    """Simulate the Fig. 8 waveforms and read back the latched codes."""
    vam = VamCircuit()
    result = vam.threshold_transient(illuminances_lux=illuminances_lux)
    voltages = []
    t1_list = []
    t2_list = []
    for index in range(1, len(illuminances_lux) + 1):
        voltages.append(result.sample(f"Out{index}", sample_time_ns * 1e-9))
        t1_list.append(int(result.sample(f"Out{index}t1", sample_time_ns * 1e-9) > 0.5))
        t2_list.append(int(result.sample(f"Out{index}t2", sample_time_ns * 1e-9) > 0.5))
    symbols = vam.classify_transient(result, sample_time_s=sample_time_ns * 1e-9)
    return Fig8Data(
        sample_time_ns=sample_time_ns,
        pixel_voltages_v=voltages,
        t1=t1_list,
        t2=t2_list,
        symbols=symbols,
        vref_low_v=vam.design.vref_low_v,
        vref_high_v=vam.design.vref_high_v,
        times_ns=result.times_s * 1e9,
        traces=dict(result.signals),
    )


def render_fig8(data: Fig8Data | None = None) -> str:
    """Print the latched outputs in the paper's observation window."""
    data = data or build_fig8()
    rows = []
    for index, (v, t1, t2, symbol) in enumerate(
        zip(data.pixel_voltages_v, data.t1, data.t2, data.symbols), start=1
    ):
        region = (
            "> both Vref"
            if v > data.vref_high_v
            else ("between Vrefs" if v > data.vref_low_v else "< both Vref")
        )
        rows.append((f"Out{index}", v, region, t1, t2, symbol))
    table = format_table(
        ("pixel", "V @16-17ns", "region", "t1", "t2", "ternary"),
        rows,
        title=(
            "Fig. 8 — VAM thresholding (paper: Out1 -> t1=t2=1, "
            "Out2 in (0.16, 0.32) V -> t1=1 t2=0, Out3 -> t1=t2=0)"
        ),
    )
    return table + (
        f"\nVref1 = {data.vref_low_v} V, Vref2 = {data.vref_high_v} V, "
        f"sampled at {data.sample_time_ns} ns"
    )
