"""Capacity planning: sustainable FPS vs nodes vs scenario vs policy.

The deployment question the serving stack exists to answer: *how much
traffic of a given shape can N nodes clear under a given scheduling
policy without violating the SLOs?*  This module measures it by binary
search over the offered rate — each probe regenerates the scenario at the
probe rate (arrival processes scale with the rate by construction,
:mod:`repro.engine.workloads`), serves it on a fresh
:class:`~repro.engine.FrameServer`, and checks the outcome against the
sustainability criteria:

* when the scenario defines deadlines: overall SLO hit rate at least
  ``min_hit_rate`` (drops, sheds and late deliveries all count against
  it — a queueing policy that delivers everything seconds late is not
  "sustaining" the load);
* otherwise: drop rate at most ``max_drop_rate``.

The criteria are intentionally *one or the other*: on memoryless arrival
processes a drop-if-busy policy collides at ``~rate x service_time``
probability at any rate (M/D/1 loss), so a hard drop bound would judge
every offered rate unsustainable; the deadline hit rate prices those
collisions the way a tenant would.

The analytic LeNet-first-layer ceiling
(:meth:`~repro.sim.fleet.FleetModel.sustainable_fps` per node) is
reported next to every measured point as a fixed reference: mixed
scenarios can land above it (cheaper MLP frames in the mix) or below it
(remap phases, arrival jitter) — the *ratio* is what the curves make
comparable across policies and node counts.  Horizon caveat: a probe
stream must be several deadlines long for "sustainable" to approximate
steady state (the p99 criterion bounds, but cannot eliminate, the
finite-horizon optimism of queueing policies); the default ``frames``
is sized for that.  Determinism: probes are seeded and the search grid
is fixed by the settings, so a report reproduces bit-for-bit.

Entry points: ``repro sweep --capacity`` (CLI) and
``tests/test_analysis_capacity.py`` (tier-1, fast preset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.mapping import ConvWorkload
from repro.sim.fleet import FleetModel
from repro.util.parallel import ParallelConfig, parallel_map
from repro.util.tables import format_table
from repro.util.validation import check_positive

#: LeNet's first convolution — the analytic-bound reference workload
#: (matches the ``default``/``poisson`` scenarios' interactive model).
LENET_FIRST_LAYER = ConvWorkload(
    kernel_size=5,
    num_kernels=6,
    in_channels=1,
    image_height=28,
    image_width=28,
    stride=1,
    padding=2,
)


@dataclass(frozen=True)
class CapacitySettings:
    """Grid + criteria of one capacity study."""

    scenario: str = "poisson"
    policies: tuple[str, ...] = ("greedy", "slo")
    node_counts: tuple[int, ...] = (1, 2, 4)
    frames: int = 240
    seed: int = 0
    micro_batch: int = 8
    #: Offered-rate search floor [FPS]; also the bracket's lower edge.
    fps_floor: float = 50.0
    #: Sustainability criteria (deadline scenarios judge on hit rate,
    #: deadline-free ones on drop rate — see the module docstring).
    max_drop_rate: float = 0.05
    min_hit_rate: float = 0.90
    #: Bisection steps after bracketing (7 ≈ 1% rate resolution).
    search_iterations: int = 7

    def __post_init__(self) -> None:
        check_positive("frames", self.frames)
        check_positive("fps_floor", self.fps_floor)
        check_positive("search_iterations", self.search_iterations)

    @staticmethod
    def fast() -> "CapacitySettings":
        """Tier-1-test preset: deterministic scenario, tiny grid."""
        return CapacitySettings(
            scenario="diurnal",
            policies=("greedy",),
            node_counts=(1, 2),
            frames=32,
            search_iterations=4,
        )


@dataclass(frozen=True)
class CapacityPoint:
    """One (scenario, policy, nodes) knee of the capacity curve."""

    scenario: str
    policy: str
    nodes: int
    #: Highest offered rate that met the criteria [FPS].
    sustainable_fps: float
    #: Outcome at that rate.
    drop_rate: float
    hit_rate: float
    p99_latency_s: float
    #: Serve calls the search spent.
    probes: int
    #: Whether the bracket expansion ever found an unsustainable rate.
    #: ``False`` means ``sustainable_fps`` is a *lower bound* (the search
    #: hit its expansion cap while everything still passed) — rendered
    #: as ``>=`` in the report.
    bracketed: bool = True


@dataclass
class CapacityReport:
    """Every measured point plus the analytic per-node ceiling."""

    settings: CapacitySettings
    points: list[CapacityPoint] = field(default_factory=list)
    #: Analytic LeNet-first-layer drop-free rate per node [FPS]
    #: (fixed reference, not a per-scenario ceiling).
    analytic_node_fps: float = 0.0

    def point(self, policy: str, nodes: int) -> CapacityPoint | None:
        """Look up one measured point."""
        for entry in self.points:
            if entry.policy == policy and entry.nodes == nodes:
                return entry
        return None


@dataclass(frozen=True)
class _ProbeOutcome:
    sustainable: bool
    drop_rate: float
    hit_rate: float
    p99_latency_s: float


def _probe(
    settings: CapacitySettings,
    policy: str,
    nodes: int,
    offered_fps: float,
    cache=None,
) -> _ProbeOutcome:
    """Serve the scenario once at ``offered_fps`` and judge the outcome.

    ``cache`` is the study-wide :class:`WeightProgramCache`: programs are
    deterministic in (kernel set, bits, die seed), so sharing it across
    probes skips the repeated cold AWC programming without changing any
    simulated quantity (the cache is host-side only).
    """
    from repro.engine.server import FrameServer
    from repro.engine.workloads import build_scenario

    scenario = build_scenario(
        settings.scenario,
        frames=settings.frames,
        offered_fps=offered_fps,
        seed=settings.seed,
    )
    server = FrameServer(
        num_nodes=nodes,
        micro_batch=settings.micro_batch,
        seed=settings.seed,
        policy=policy,
        cache=cache,
    )
    report = server.serve_scenario(scenario)
    drop_rate = report.stream.drop_rate
    has_deadlines = report.slo is not None and any(
        stats.deadline_s is not None for stats in report.slo.classes.values()
    )
    hit_rate = report.slo.overall_hit_rate if has_deadlines else 1.0
    p99 = report.stream.latency_percentile(0.99)
    if has_deadlines:
        # The p99 bound closes the finite-horizon loophole: on a short
        # probe stream a queueing policy can park its end-of-stream
        # backlog inside the hit-rate tolerance at far-above-capacity
        # rates; requiring the latency tail itself to sit within the
        # loosest deadline keeps "sustainable" meaning *steady-state*.
        worst_deadline = max(
            stats.deadline_s
            for stats in report.slo.classes.values()
            if stats.deadline_s is not None
        )
        # p99 is NaN when the probe delivered zero frames; that must read
        # as "not sustainable" explicitly, never ride on NaN comparison
        # semantics (any `NaN < deadline` call site silently passes).
        sustainable = (
            not math.isnan(p99)
            and hit_rate >= settings.min_hit_rate
            and p99 <= worst_deadline + 1e-12
        )
    else:
        sustainable = drop_rate <= settings.max_drop_rate
    return _ProbeOutcome(
        sustainable=sustainable,
        drop_rate=drop_rate,
        hit_rate=hit_rate,
        p99_latency_s=p99,
    )


def _search(
    settings: CapacitySettings,
    policy: str,
    nodes: int,
    hint_fps: float,
    cache=None,
) -> CapacityPoint:
    """Bracket + bisect the sustainable offered rate."""
    probes = 0
    low = settings.fps_floor
    low_outcome = _probe(settings, policy, nodes, low, cache=cache)
    probes += 1
    if not low_outcome.sustainable:
        return CapacityPoint(
            scenario=settings.scenario,
            policy=policy,
            nodes=nodes,
            sustainable_fps=0.0,
            drop_rate=low_outcome.drop_rate,
            hit_rate=low_outcome.hit_rate,
            p99_latency_s=low_outcome.p99_latency_s,
            probes=probes,
        )
    high = max(hint_fps, 2.0 * low)
    bracketed = False
    for _ in range(6):  # expand until the bracket contains the knee
        outcome = _probe(settings, policy, nodes, high, cache=cache)
        probes += 1
        if not outcome.sustainable:
            bracketed = True
            break
        low, low_outcome = high, outcome
        high *= 2.0
    if not bracketed:
        # Every expansion probe passed: `low` is a lower bound, not a
        # measured knee; bisecting against the unprobed `high` would
        # fabricate precision, so return the bound flagged as open.
        return CapacityPoint(
            scenario=settings.scenario,
            policy=policy,
            nodes=nodes,
            sustainable_fps=low,
            drop_rate=low_outcome.drop_rate,
            hit_rate=low_outcome.hit_rate,
            p99_latency_s=low_outcome.p99_latency_s,
            probes=probes,
            bracketed=False,
        )
    for _ in range(settings.search_iterations):
        mid = 0.5 * (low + high)
        outcome = _probe(settings, policy, nodes, mid, cache=cache)
        probes += 1
        if outcome.sustainable:
            low, low_outcome = mid, outcome
        else:
            high = mid
    return CapacityPoint(
        scenario=settings.scenario,
        policy=policy,
        nodes=nodes,
        sustainable_fps=low,
        drop_rate=low_outcome.drop_rate,
        hit_rate=low_outcome.hit_rate,
        p99_latency_s=low_outcome.p99_latency_s,
        probes=probes,
    )


def _prewarm_programs(
    settings: CapacitySettings,
    parallel: ParallelConfig | None = None,
    program_store=None,
):
    """Program the scenario's model zoo once, for every probe die.

    Every probe in the grid serves the *same* models (scenario model
    weights depend only on the scenario seed, not the probe rate) on die
    seeds that are a prefix of the largest node count's
    (:func:`~repro.util.rng.spawn_seeds` is prefix-stable).  Programming
    them once up front — optionally fanned out via :meth:`~repro.engine.
    server.FrameServer.warmup`'s parallel path — and handing the warmed
    :class:`~repro.engine.cache.WeightProgramCache` to every probe means
    no probe ever re-runs the cold AWC mapping chain.  This is also what
    the process backend ships to workers: the serialized program set
    crosses the process boundary once per task instead of each worker
    redundantly re-programming the zoo (the remaining duplication — one
    deserialized cache copy per task — is host memory, not recomputation).
    The cache is host-side only, so sharing it never changes a simulated
    quantity.

    With a ``program_store`` (:class:`~repro.engine.store.ProgramStore`
    or path) the prewarm itself is a store read-through: a second study
    against the same store restores every program from disk instead of
    re-running the mapping chain.
    """
    from repro.engine.server import FrameServer
    from repro.engine.workloads import build_scenario

    scenario = build_scenario(
        settings.scenario,
        frames=8,  # models are frame-count-independent; keep the build cheap
        offered_fps=settings.fps_floor,
        seed=settings.seed,
    )
    server = FrameServer(
        num_nodes=max(settings.node_counts),
        micro_batch=settings.micro_batch,
        seed=settings.seed,
        program_store=program_store,
    )
    for key, model in scenario.models.items():
        server.register_model(key, model)
    server.warmup(parallel=parallel)
    return server.cache


def _search_task(
    task: tuple[CapacitySettings, str, int, float, object],
) -> CapacityPoint:
    """One (scenario, policy, nodes) knee search, as a pure fan-out task.

    The task description carries the settings (the scenario name rides in
    them), the grid point and the pre-warmed program cache — everything
    picklable, nothing shared — per the :mod:`repro.util.parallel`
    contract.  Probes within the bracket stay sequential on purpose: each
    bisection step depends on the previous probe's verdict.
    """
    settings, policy, nodes, hint, cache = task
    return _search(settings, policy, nodes, hint, cache=cache)


def build_capacity_report(
    settings: CapacitySettings | None = None,
    parallel: ParallelConfig | None = None,
    program_store=None,
) -> CapacityReport:
    """Measure the capacity knee for every (policy, nodes) grid point.

    The outer grid fans out over ``parallel`` (grid points are
    independent searches); results merge in grid order, so the report is
    byte-identical under every backend.  ``program_store`` (path or
    :class:`~repro.engine.store.ProgramStore`) makes the prewarmed cache
    read-through/write-behind so repeat studies program nothing.
    """
    settings = settings or CapacitySettings()
    fleet = FleetModel()
    cache = _prewarm_programs(settings, parallel, program_store)
    report = CapacityReport(
        settings=settings,
        analytic_node_fps=fleet.sustainable_fps(LENET_FIRST_LAYER),
    )
    tasks = [
        (
            settings,
            policy,
            nodes,
            1.5 * fleet.fleet_capacity_fps(LENET_FIRST_LAYER, nodes),
            cache,
        )
        for nodes in settings.node_counts
        for policy in settings.policies
    ]
    report.points.extend(parallel_map(_search_task, tasks, parallel))
    return report


def sweep_scenarios(
    scenarios: tuple[str, ...],
    settings: CapacitySettings | None = None,
    parallel: ParallelConfig | None = None,
    program_store=None,
) -> list[CapacityReport]:
    """One capacity report per scenario (same grid/criteria).

    Flattens the full scenario x policy x nodes grid into one task list
    before fanning out, so a two-scenario sweep on eight cores keeps all
    eight busy instead of parallelizing one scenario at a time.  Reports
    come back grouped per scenario in input order, byte-identical to the
    serial sweep.
    """
    base = settings or CapacitySettings()
    fleet = FleetModel()
    per_scenario = [replace(base, scenario=name) for name in scenarios]
    tasks = []
    grid_size = 0
    for scenario_settings in per_scenario:
        cache = _prewarm_programs(scenario_settings, parallel, program_store)
        grid = [
            (
                scenario_settings,
                policy,
                nodes,
                1.5 * fleet.fleet_capacity_fps(LENET_FIRST_LAYER, nodes),
                cache,
            )
            for nodes in scenario_settings.node_counts
            for policy in scenario_settings.policies
        ]
        grid_size = len(grid)
        tasks.extend(grid)
    points = parallel_map(_search_task, tasks, parallel)
    reports = []
    for index, scenario_settings in enumerate(per_scenario):
        report = CapacityReport(
            settings=scenario_settings,
            analytic_node_fps=fleet.sustainable_fps(LENET_FIRST_LAYER),
        )
        report.points.extend(
            points[index * grid_size : (index + 1) * grid_size]
        )
        reports.append(report)
    return reports


def sustainable_fps_per_node(
    scenario: str,
    policy: str = "greedy",
    frames: int = 96,
    seed: int = 0,
    micro_batch: int = 8,
    cache=None,
) -> float:
    """One node's measured sustainable rate on ``scenario`` [FPS].

    The autoscaler's controller model (:mod:`repro.engine.controlplane`):
    capacity of an n-node shard is approximated as ``n x`` this value,
    which the knee search measures once per (scenario, policy) instead of
    hand-tuning a constant.  Runs the standard bracket + bisect at
    ``nodes=1`` with a short probe stream — the controller needs a
    *planning* estimate, not a report-grade curve, and the search is
    seeded so the estimate (and therefore every scaling decision built on
    it) reproduces bit-for-bit.  Returns ``0.0`` when even the search
    floor is unsustainable; callers fall back to the analytic LeNet bound.
    """
    settings = CapacitySettings(
        scenario=scenario,
        policies=(policy,),
        node_counts=(1,),
        frames=frames,
        seed=seed,
        micro_batch=micro_batch,
        search_iterations=5,
    )
    fleet = FleetModel()
    hint = 1.5 * fleet.fleet_capacity_fps(LENET_FIRST_LAYER, 1)
    point = _search(settings, policy, 1, hint, cache=cache)
    return point.sustainable_fps


def render_capacity_report(report: CapacityReport) -> str:
    """Human-readable capacity-planning table."""
    rows = []
    for point in report.points:
        analytic = report.analytic_node_fps * point.nodes
        knee = f"{point.sustainable_fps:.0f}"
        rows.append(
            (
                point.scenario,
                point.policy,
                point.nodes,
                knee if point.bracketed else f">={knee}",
                f"{analytic:.0f}",
                f"{point.sustainable_fps / analytic:.2f}"
                if analytic > 0
                else "-",
                f"{point.hit_rate:.3f}",
                "n/a"
                if math.isnan(point.p99_latency_s)
                else f"{point.p99_latency_s * 1e3:.2f}",
            )
        )
    settings = report.settings
    return format_table(
        (
            "scenario",
            "policy",
            "nodes",
            "sustainable FPS",
            "LeNet bound",
            "utilization",
            "hit rate",
            "p99 [ms]",
        ),
        rows,
        title=(
            f"Capacity planning — scenario {settings.scenario!r}, "
            f"drop<= {settings.max_drop_rate:.0%}, "
            f"hit>= {settings.min_hit_rate:.0%}"
        ),
    )


__all__ = [
    "LENET_FIRST_LAYER",
    "CapacityPoint",
    "CapacityReport",
    "CapacitySettings",
    "build_capacity_report",
    "render_capacity_report",
    "sustainable_fps_per_node",
    "sweep_scenarios",
]
