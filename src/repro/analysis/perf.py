"""Perf-trajectory bench: weight-programming latency + engine throughput.

This module is the measurement core behind ``repro bench`` and
``benchmarks/bench_program_latency.py``.  It times the three serving-path
phases the engine cares about:

* **cold program** — one full :meth:`~repro.core.opc.OpticalProcessingCore.
  program` call (AWC realization + batched crosstalk + batched tuning
  budget) on a VGG16-sized first layer, against the retained scalar
  reference (:mod:`repro.core.reference`) that preserves the
  pre-vectorization loops;
* **warm install** — reinstalling a cached
  :class:`~repro.core.opc.ProgrammedWeights` record through
  :class:`~repro.engine.cache.WeightProgramCache`;
* **engine throughput** — a warmed :class:`~repro.engine.FrameServer`
  serving a kernel-swapping stream, in delivered frames per wall-clock
  second.

The result dict is written to ``BENCH_program.json`` at the repo root —
the first entry of the perf trajectory, so every future PR has a baseline
to beat.  Timings are environment-dependent; the *speedup* and the
bit-identity flag are the stable claims.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Any, Callable

import numpy as np

#: The bench workload: VGG16's first convolution (64 kernels, 3x3x3).
VGG16_FIRST_LAYER_SHAPE: tuple[int, ...] = (64, 3, 3, 3)


def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """(best wall-clock [s], last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_cold_program(
    shape: tuple[int, ...] = VGG16_FIRST_LAYER_SHAPE,
    bits: int = 4,
    seed: int = 0,
    repeats: int = 5,
    scalar_repeats: int = 2,
) -> dict[str, Any]:
    """Time vectorized vs scalar-reference cold ``program()`` on one layer."""
    from repro.core.opc import OpticalProcessingCore
    from repro.core.reference import program_scalar
    from repro.nn.quant import UniformWeightQuantizer

    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)

    opc = OpticalProcessingCore(seed=seed)
    vectorized_s, programmed = _best_of(
        lambda: opc.program(quantized, scale), repeats
    )
    scalar_s, reference = _best_of(
        lambda: program_scalar(opc, quantized, scale), scalar_repeats
    )
    bit_identical = bool(
        np.array_equal(programmed.realized, reference.realized)
        and programmed.tuning == reference.tuning
    )
    return {
        "workload": {
            "shape": list(shape),
            "weight_bits": bits,
            "num_weights": int(np.prod(shape)),
        },
        "vectorized_s": vectorized_s,
        "scalar_reference_s": scalar_s,
        "speedup": scalar_s / vectorized_s,
        "bit_identical": bit_identical,
    }


def bench_warm_install(
    shape: tuple[int, ...] = VGG16_FIRST_LAYER_SHAPE,
    bits: int = 4,
    seed: int = 0,
    installs: int = 200,
) -> dict[str, Any]:
    """Time a cache-hit reinstall against the cold program it replaces."""
    from repro.core.opc import OpticalProcessingCore
    from repro.engine.cache import WeightProgramCache
    from repro.nn.quant import UniformWeightQuantizer

    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)

    opc = OpticalProcessingCore(seed=seed)
    cache = WeightProgramCache()
    cold_s, _ = _best_of(lambda: opc.program(quantized, scale), 3)
    cache.get_or_program(opc, quantized, scale)  # prime: one miss

    started = time.perf_counter()
    for _ in range(installs):
        cache.get_or_program(opc, quantized, scale)
    per_install_s = (time.perf_counter() - started) / installs
    assert cache.stats.hits == installs
    return {
        "per_install_s": per_install_s,
        "cold_program_s": cold_s,
        "speedup_vs_cold": cold_s / per_install_s if per_install_s > 0 else float("inf"),
    }


def bench_engine_throughput(
    frames: int = 64,
    num_nodes: int = 1,
    micro_batch: int = 16,
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, Any]:
    """Throughput of a warmed FrameServer on a kernel-swapping stream."""
    from repro.engine import FrameRequest, FrameServer
    from repro.nn.models import build_lenet

    server = FrameServer(
        num_nodes=num_nodes, micro_batch=micro_batch, seed=seed
    )
    server.register_model("model-a", build_lenet(seed=seed))
    server.register_model("model-b", build_lenet(seed=seed + 1))

    rng = np.random.default_rng(seed)
    stack = rng.uniform(0.0, 1.0, (frames, 1, 28, 28))
    requests = [
        FrameRequest(stack[i], "model-a" if i < frames // 2 else "model-b")
        for i in range(frames)
    ]
    warm = server.warmup(frame_shape=(1, 28, 28))

    best_fps = 0.0
    report = None
    for _ in range(repeats):
        report = server.serve(requests, offered_fps=1000.0)
        best_fps = max(best_fps, report.wall_clock_fps)
    return {
        "frames": frames,
        "num_nodes": num_nodes,
        "micro_batch": micro_batch,
        "delivered": report.delivered,
        "wall_clock_fps": best_fps,
        "warmup": warm,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }


#: The engine-throughput number PR 3's trajectory entry recorded
#: (``BENCH_program.json`` → ``engine.wall_clock_fps``): the pre-vectorized
#: warm path on the kernel-swapping LeNet stream.
WARM_PATH_BASELINE_FPS = 1592.1014652591052


def _serve_best_of(server, requests, offered_fps: float, repeats: int):
    """(best wall-clock fps, first ServeReport) over ``repeats`` serves."""
    first = server.serve(requests, offered_fps=offered_fps)
    best = first.wall_clock_fps
    for _ in range(repeats - 1):
        best = max(
            best, server.serve(requests, offered_fps=offered_fps).wall_clock_fps
        )
    return best, first


def _responses_bit_identical(left, right) -> bool:
    """Whether two ServeReports delivered byte-for-byte the same outputs."""
    if len(left.responses) != len(right.responses):
        return False
    for ours, theirs in zip(left.responses, right.responses):
        if (ours.output is None) != (theirs.output is None):
            return False
        if ours.output is not None and not np.array_equal(
            ours.output, theirs.output
        ):
            return False
    return True


def bench_warm_path(
    frames: int = 2048,
    num_nodes: int = 2,
    micro_batch: int = 16,
    offered_fps: float = 1800.0,
    seed: int = 0,
    repeats: int = 3,
    quick: bool = False,
) -> dict[str, Any]:
    """Steady-state serving throughput: batched warm path vs reference loop.

    Two workloads, each served once per
    :attr:`~repro.engine.server.FrameServer.COMPUTE_MODES` entry on fresh
    same-seed servers (so the read-noise RNG streams align and the output
    comparison is exact):

    * **engine-limited** — a long drop-free MLP-stem stream (the dense
      first layer is a single small matmul, so per-frame engine overhead,
      not arithmetic, bounds throughput).  This is the stream the
      vectorized warm path exists for, and it carries the headline
      ``wall_clock_fps`` measured against :data:`WARM_PATH_BASELINE_FPS`;
    * **compute-bound** — the kernel-swapping two-LeNet stream of
      :func:`bench_engine_throughput` (the PR-3 baseline workload), where
      the full off-chip LeNet head dominates and batching cannot help —
      kept for trajectory continuity and honesty about where the gain is.

    The ``bit_identical`` flags compare every delivered output of the two
    modes byte-for-byte — the same claim ``tests/test_engine_batched.py``
    pins, measured on the bench stream itself.
    """
    from repro.engine import FrameRequest, FrameServer
    from repro.engine.workloads import ModelSpec
    from repro.nn.models import build_lenet

    if quick:
        frames = min(frames, 256)
        repeats = 1

    def engine_limited(mode: str):
        server = FrameServer(
            num_nodes=num_nodes,
            micro_batch=micro_batch,
            seed=seed,
            compute_mode=mode,
        )
        server.register_model("mlp-2b", ModelSpec("mlp", 2).build(seed))
        rng = np.random.default_rng(seed)
        stack = rng.uniform(0.0, 1.0, (frames, 1, 28, 28))
        requests = [FrameRequest(stack[i], "mlp-2b") for i in range(frames)]
        server.warmup(frame_shape=(1, 28, 28))
        return _serve_best_of(server, requests, offered_fps, repeats)

    def compute_bound(mode: str):
        lenet_frames = 32 if quick else 64
        server = FrameServer(
            num_nodes=1, micro_batch=micro_batch, seed=seed, compute_mode=mode
        )
        server.register_model("model-a", build_lenet(seed=seed))
        server.register_model("model-b", build_lenet(seed=seed + 1))
        rng = np.random.default_rng(seed)
        stack = rng.uniform(0.0, 1.0, (lenet_frames, 1, 28, 28))
        requests = [
            FrameRequest(
                stack[i], "model-a" if i < lenet_frames // 2 else "model-b"
            )
            for i in range(lenet_frames)
        ]
        server.warmup(frame_shape=(1, 28, 28))
        return _serve_best_of(server, requests, 1000.0, repeats)

    mlp_batched_fps, mlp_batched = engine_limited("batched")
    mlp_reference_fps, mlp_reference = engine_limited("reference")
    lenet_batched_fps, lenet_batched = compute_bound("batched")
    lenet_reference_fps, lenet_reference = compute_bound("reference")

    if mlp_batched.delivered != frames:
        raise RuntimeError(
            f"warm-path bench stream dropped frames ({mlp_batched.delivered}"
            f"/{frames}); lower offered_fps so the headline measures a "
            "drop-free steady state"
        )
    headline_fps = mlp_batched_fps
    return {
        "engine_limited": {
            "model": "mlp-2b",
            "frames": frames,
            "num_nodes": num_nodes,
            "micro_batch": micro_batch,
            "offered_fps": offered_fps,
            "delivered": mlp_batched.delivered,
            "batched_fps": mlp_batched_fps,
            "reference_fps": mlp_reference_fps,
            "bit_identical": _responses_bit_identical(
                mlp_batched, mlp_reference
            ),
        },
        "compute_bound": {
            "model": "lenet-4b x2 (kernel-swapping)",
            "frames": 32 if quick else 64,
            "num_nodes": 1,
            "micro_batch": micro_batch,
            "batched_fps": lenet_batched_fps,
            "reference_fps": lenet_reference_fps,
            "bit_identical": _responses_bit_identical(
                lenet_batched, lenet_reference
            ),
        },
        "wall_clock_fps": headline_fps,
        "baseline_fps": WARM_PATH_BASELINE_FPS,
        "speedup_vs_baseline": headline_fps / WARM_PATH_BASELINE_FPS,
    }


def run_warm_path_bench(quick: bool = False, seed: int = 0) -> dict[str, Any]:
    """Full ``BENCH_warm_path.json`` payload for :func:`bench_warm_path`."""
    result = bench_warm_path(quick=quick, seed=seed)
    return {
        "bench": "warm_path",
        "schema": 1,
        "quick": quick,
        **result,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def _serve_digest(report) -> str:
    """Wall-clock-free SHA-256 of one ServeReport's observable outcome.

    Hashes every response's placement, simulated-time event and output
    tensor bytes — the same fields the scheduler golden pins — so two
    digests match iff the reports are bit-identical where it matters
    (wall-clock and cache-counter fields are intentionally excluded;
    counters are compared separately where their shape is defined).
    """
    import hashlib

    digest = hashlib.sha256()
    for resp in report.responses:
        digest.update(
            repr(
                (
                    resp.index,
                    resp.model_key,
                    resp.node_id,
                    resp.event.arrival_s,
                    resp.event.start_s,
                    resp.event.finish_s,
                    resp.event.dropped,
                    resp.event.remapped,
                    resp.degraded,
                )
            ).encode()
        )
        if resp.output is not None:
            digest.update(
                np.ascontiguousarray(resp.output, dtype=float).tobytes()
            )
    digest.update(repr(report.stream.total_energy_j).encode())
    return digest.hexdigest()


#: The full-zoo warmup workload: every family at two bit widths (matches
#: the ``zoo`` scenario's model list, engine/workloads).
PARALLEL_BENCH_ZOO: tuple[tuple[str, int], ...] = (
    ("lenet", 4),
    ("lenet", 2),
    ("mlp", 4),
    ("mlp", 2),
    ("vgg16", 4),
    ("vgg16", 1),
    ("resnet18", 4),
    ("resnet18", 2),
)


def _zoo_setup(num_nodes: int, seed: int, quick: bool):
    """Shared zoo-warmup workload for the parallel/pool/store legs.

    Returns ``(specs, cold_server, probe_digest)``: the model specs, a
    factory producing a genuinely cold ``FrameServer`` (fresh empty
    ``WeightProgramCache``, every zoo model registered, optionally
    store-backed), and a probe that serves a short round-robin stream
    and returns its :func:`_serve_digest` — two servers warmed by
    different paths must probe to the same digest or the paths are not
    bit-identical.
    """
    from repro.engine.server import FrameRequest, FrameServer
    from repro.engine.workloads import ModelSpec

    specs = [
        ModelSpec(family, bits)
        for family, bits in (
            PARALLEL_BENCH_ZOO[:3] if quick else PARALLEL_BENCH_ZOO
        )
    ]
    models = {spec.key: spec.build(seed) for spec in specs}

    def cold_server(program_store=None) -> FrameServer:
        server = FrameServer(
            num_nodes=num_nodes,
            micro_batch=8,
            seed=seed,
            program_store=program_store,
        )
        for key, model in models.items():
            server.register_model(key, model)
        return server

    def probe_digest(server: FrameServer) -> str:
        rng = np.random.default_rng(seed)
        requests = []
        for index in range(2 * len(specs)):
            spec = specs[index % len(specs)]
            requests.append(
                FrameRequest(
                    rng.uniform(0.0, 1.0, spec.frame_shape), spec.key
                )
            )
        return _serve_digest(server.serve(requests, offered_fps=500.0))

    return specs, cold_server, probe_digest


def bench_parallel_warmup(
    num_nodes: int = 2,
    seed: int = 0,
    workers: int | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """Serial vs process wall-clock on a cold full-zoo warmup.

    Each measurement starts genuinely cold: a fresh ``FrameServer`` with
    a fresh (empty) ``WeightProgramCache``, every zoo model registered,
    then one :meth:`~repro.engine.server.FrameServer.warmup` — serial,
    then fanned out over the process backend.  After each warmup the
    server serves a short round-robin stream and the two
    :func:`_serve_digest` values are compared: the parallel warmup must
    leave the server in a bit-identical state.

    The process leg is timed against a **warm pool**
    (:func:`~repro.util.parallel.warm_pools` runs first): with the
    spawn-pinned persistent pool registry, steady-state fan-out is the
    claim this leg makes, and the one-time spawn+import cost is measured
    explicitly by :func:`bench_pool_reuse` instead.
    """
    from repro.util.parallel import ParallelConfig, available_cores, warm_pools

    specs, cold_server, probe_digest = _zoo_setup(num_nodes, seed, quick)

    serial_server = cold_server()
    started = time.perf_counter()
    serial_server.warmup()
    serial_s = time.perf_counter() - started

    process_server = cold_server()
    # At least two workers, or on a one-core host the serial pin would
    # silently time a second serial pass as "process_s"; forcing the
    # pool keeps the measurement honest (real IPC overhead, speedup
    # below 1 on such hosts — the payload records ``cores`` next to it).
    config = ParallelConfig(
        "process", workers if workers is not None else max(2, available_cores())
    )
    warm_pools(config)
    started = time.perf_counter()
    process_server.warmup(parallel=config)
    process_s = time.perf_counter() - started

    return {
        "models": len(specs),
        "num_nodes": num_nodes,
        "pairs": len(specs) * num_nodes,
        "workers": config.resolve_workers(),
        "serial_s": serial_s,
        "process_s": process_s,
        "speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "bit_identical": probe_digest(serial_server)
        == probe_digest(process_server),
    }


def bench_pool_reuse(
    num_nodes: int = 2,
    seed: int = 0,
    workers: int | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """Persistent-pool reuse: cold-spawn vs warm-pool zoo warmup.

    Three measurements of the same cold-cache zoo warmup:

    * **serial** — the baseline the ≥2x claim is made against;
    * **cold pool** — :func:`~repro.util.parallel.shutdown_pools` first,
      so the process leg pays the full spawn+import price the explicit
      ``spawn`` start-method pin costs (the price persistent pools
      exist to amortize);
    * **warm pool** — the pool the cold leg just built, reused.

    ``speedup`` is serial / warm-pool (the steady-state fan-out claim);
    ``reuse_gain`` is cold-pool / warm-pool (what the registry saves per
    ``parallel_map`` call after the first).  ``bit_identical`` compares
    the serial and warm-pool servers' probe digests.
    """
    from repro.util.parallel import (
        ParallelConfig,
        available_cores,
        shutdown_pools,
    )

    specs, cold_server, probe_digest = _zoo_setup(num_nodes, seed, quick)

    serial_server = cold_server()
    started = time.perf_counter()
    serial_server.warmup()
    serial_s = time.perf_counter() - started

    config = ParallelConfig(
        "process", workers if workers is not None else max(2, available_cores())
    )
    shutdown_pools()
    cold_pool_server = cold_server()
    started = time.perf_counter()
    cold_pool_server.warmup(parallel=config)
    cold_pool_s = time.perf_counter() - started

    warm_pool_server = cold_server()
    started = time.perf_counter()
    warm_pool_server.warmup(parallel=config)
    warm_pool_s = time.perf_counter() - started

    return {
        "models": len(specs),
        "num_nodes": num_nodes,
        "pairs": len(specs) * num_nodes,
        "workers": config.resolve_workers(),
        "serial_s": serial_s,
        "cold_pool_s": cold_pool_s,
        "warm_pool_s": warm_pool_s,
        "speedup": serial_s / warm_pool_s if warm_pool_s > 0 else float("inf"),
        "reuse_gain": cold_pool_s / warm_pool_s
        if warm_pool_s > 0
        else float("inf"),
        "bit_identical": probe_digest(serial_server)
        == probe_digest(warm_pool_server),
    }


def bench_shm_transport(
    seed: int = 0,
    workers: int | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """Zero-copy shared-memory transport vs plain-pickle IPC.

    Runs the :func:`bench_parallel_capacity` grid (whose probe tasks
    ship frame stacks and store-carrying caches — the large-ndarray
    traffic the shm path exists for) twice over a warm process pool:
    once with the default shared-memory threshold and once with
    ``shm_min_bytes=None`` (everything through pickle bytes).  The two
    reports must be byte-identical — the transport is an encoding, not
    a computation — and ``speedup`` records pickle / shm wall-clock.
    """
    from repro.analysis.capacity import CapacitySettings, build_capacity_report
    from repro.util.parallel import ParallelConfig, available_cores, warm_pools

    if quick:
        settings = CapacitySettings(
            scenario="diurnal",
            policies=("greedy",),
            node_counts=(1, 2),
            frames=24,
            seed=seed,
            search_iterations=2,
        )
    else:
        settings = CapacitySettings(
            scenario="poisson",
            policies=("greedy", "slo"),
            node_counts=(1, 2),
            frames=120,
            seed=seed,
            search_iterations=5,
        )

    resolved = workers if workers is not None else max(2, available_cores())
    shm_config = ParallelConfig("process", resolved)
    pickle_config = ParallelConfig("process", resolved, shm_min_bytes=None)
    warm_pools(shm_config)

    started = time.perf_counter()
    shm_report = build_capacity_report(settings, shm_config)
    shm_s = time.perf_counter() - started

    started = time.perf_counter()
    pickle_report = build_capacity_report(settings, pickle_config)
    pickle_s = time.perf_counter() - started

    return {
        "scenario": settings.scenario,
        "grid_points": len(shm_report.points),
        "workers": resolved,
        "shm_s": shm_s,
        "pickle_s": pickle_s,
        "speedup": pickle_s / shm_s if shm_s > 0 else float("inf"),
        "bit_identical": repr(shm_report.points)
        == repr(pickle_report.points),
    }


#: The warm-store headline workload: a production-scale dense layer
#: (0.5M weights).  The zoo's first layers are small enough that the
#: vectorized mapping chain runs in ~0.5ms — there the fixed npz+sha256
#: restore floor caps the gain at ~3x (recorded honestly as
#: ``zoo_warmup_gain``); at this size programming dominates and the
#: store's ≥10x claim is about real work, not fixed overhead.
WARM_STORE_LAYER_SHAPE: tuple[int, ...] = (256, 2048)


def bench_warm_store(
    num_nodes: int = 2,
    seed: int = 0,
    quick: bool = False,
) -> dict[str, Any]:
    """Content-addressed store: cold programming vs store restore.

    Two claims, measured on two workloads against throwaway
    :class:`~repro.engine.store.ProgramStore` directories:

    * **a second run programs nothing** — two serial zoo warmups over
      the same store: the cold pass runs every (model, node) mapping
      chain and writes behind; the warm pass (fresh server, fresh
      *empty* in-memory cache) must restore every pair from its npz
      record (``warm_programs_zero`` pins ``misses == 0``, and
      ``bit_identical`` pins that restored programs serve byte-for-byte
      what freshly programmed ones serve — both exact on any host and
      in both modes).  Content addressing dedupes zoo families that
      share an identical first layer, so ``entries`` may trail
      ``pairs`` while ``store_hits == entries`` always holds.
      ``zoo_warmup_gain`` records the honest warmup
      wall-clock ratio: small first layers program in ~0.5ms, so the
      fixed per-entry restore cost caps this around 3x;
    * **≥10x restore speedup** — one :data:`WARM_STORE_LAYER_SHAPE`
      dense layer (0.5M weights, program-bound), cold
      ``OpticalProcessingCore.program`` vs sha256-verified store
      restore.  Not core-dependent — it holds on a 1-core container,
      unlike the fan-out legs — and carried as the headline
      ``speedup``.
    """
    import shutil
    import tempfile

    from repro.core.opc import OpticalProcessingCore
    from repro.engine.cache import WeightProgramCache
    from repro.engine.store import ProgramStore
    from repro.nn.quant import UniformWeightQuantizer

    specs, cold_server, probe_digest = _zoo_setup(num_nodes, seed, quick)

    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        cold_store = ProgramStore(root)
        cold = cold_server(program_store=cold_store)
        started = time.perf_counter()
        cold.warmup()
        cold_s = time.perf_counter() - started

        warm_store = ProgramStore(root)
        warm = cold_server(program_store=warm_store)
        started = time.perf_counter()
        warm.warmup()
        warm_s = time.perf_counter() - started

        zoo = {
            "models": len(specs),
            "num_nodes": num_nodes,
            "pairs": len(specs) * num_nodes,
            "entries": len(warm_store),
            "store_bytes": warm_store.total_bytes(),
            "cold_warmup_s": cold_s,
            "warm_warmup_s": warm_s,
            "store_hits": warm.cache.stats.store_hits,
            "warm_programs_zero": warm.cache.stats.misses == 0,
            "bit_identical": probe_digest(cold) == probe_digest(warm),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)

    shape = (128, 1024) if quick else WARM_STORE_LAYER_SHAPE
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    opc = OpticalProcessingCore(seed=seed)
    program_s, programmed = _best_of(
        lambda: opc.program(quantized, scale), 1 if quick else 2
    )

    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        layer_store = ProgramStore(root)
        key = WeightProgramCache().key_for(opc, quantized, scale)
        layer_store.put(key, programmed, die=seed)
        restore_s, restored = _best_of(lambda: layer_store.load(key), 3)
        restored_identical = bool(
            np.array_equal(restored.realized, programmed.realized)
            and np.array_equal(restored.ideal, programmed.ideal)
            and restored.tuning == programmed.tuning
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        **zoo,
        "layer_shape": list(shape),
        "layer_weights": int(np.prod(shape)),
        "program_s": program_s,
        "restore_s": restore_s,
        "speedup": program_s / restore_s if restore_s > 0 else float("inf"),
        "restored_bit_identical": restored_identical,
        "zoo_warmup_gain": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def bench_parallel_capacity(
    seed: int = 0,
    workers: int | None = None,
    quick: bool = False,
) -> dict[str, Any]:
    """Serial vs process wall-clock on a capacity-planning grid.

    Runs the same :func:`~repro.analysis.capacity.build_capacity_report`
    grid under both backends and compares the full ``repr`` of the point
    lists — the parallel report must be byte-identical, not merely close.
    """
    from repro.analysis.capacity import CapacitySettings, build_capacity_report
    from repro.util.parallel import ParallelConfig, available_cores, warm_pools

    if quick:
        settings = CapacitySettings(
            scenario="diurnal",
            policies=("greedy",),
            node_counts=(1, 2),
            frames=24,
            seed=seed,
            search_iterations=2,
        )
    else:
        settings = CapacitySettings(
            scenario="poisson",
            policies=("greedy", "slo"),
            node_counts=(1, 2),
            frames=120,
            seed=seed,
            search_iterations=5,
        )
    started = time.perf_counter()
    serial_report = build_capacity_report(settings)
    serial_s = time.perf_counter() - started

    # Same two-worker floor as the warmup bench: the "process" leg must
    # actually cross a process boundary to be worth recording.  Same
    # warm-pool discipline too — spawn cost is bench_pool_reuse's job.
    config = ParallelConfig(
        "process", workers if workers is not None else max(2, available_cores())
    )
    warm_pools(config)
    started = time.perf_counter()
    process_report = build_capacity_report(settings, config)
    process_s = time.perf_counter() - started

    return {
        "scenario": settings.scenario,
        "grid_points": len(serial_report.points),
        "workers": config.resolve_workers(),
        "serial_s": serial_s,
        "process_s": process_s,
        "speedup": serial_s / process_s if process_s > 0 else float("inf"),
        "bit_identical": repr(serial_report.points)
        == repr(process_report.points),
    }


def run_parallel_bench(
    quick: bool = False, seed: int = 0, workers: int | None = None
) -> dict[str, Any]:
    """Full ``BENCH_parallel.json`` payload: fan-out speedup + bit-identity.

    Schema 2 adds the persistent-pool, shared-memory-transport and
    warm-store legs.  ``cores`` records where the numbers were measured:
    process fan-out on a 1-core host is pure IPC overhead (speedup < 1
    is the *honest* reading, not a failure), so the core-dependent ≥2x
    claims are asserted only on ≥4 cores in full mode
    (``benchmarks/bench_parallel.py``).  The warm-store ≥10x claim is
    *not* core-dependent — restoring an npz beats re-running the mapping
    chain on any host.  The bit-identity flags are exact on every host
    and every mode.

    ``pool_reuse`` runs first: it shuts the pool registry down to price
    the cold spawn, then leaves a warm pool behind that the remaining
    fan-out legs (deliberately) reuse.
    """
    from repro.util.parallel import available_cores

    return {
        "bench": "parallel",
        "schema": 2,
        "quick": quick,
        "cores": available_cores(),
        "pool_reuse": bench_pool_reuse(
            seed=seed, workers=workers, quick=quick
        ),
        "zoo_warmup": bench_parallel_warmup(
            seed=seed, workers=workers, quick=quick
        ),
        "capacity_grid": bench_parallel_capacity(
            seed=seed, workers=workers, quick=quick
        ),
        "shm_transport": bench_shm_transport(
            seed=seed, workers=workers, quick=quick
        ),
        "warm_store": bench_warm_store(seed=seed, quick=quick),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def run_bench(quick: bool = False, seed: int = 0) -> dict[str, Any]:
    """Run the whole perf-trajectory bench and return the JSON payload.

    ``quick`` is the CI smoke mode: fewer repeats and a shorter stream so
    the job stays in seconds; the measured *speedups* are noisier but the
    bit-identity claim is exact either way.
    """
    cold = bench_cold_program(
        repeats=2 if quick else 5, scalar_repeats=1 if quick else 2, seed=seed
    )
    warm = bench_warm_install(installs=50 if quick else 200, seed=seed)
    engine = bench_engine_throughput(
        frames=32 if quick else 64, repeats=1 if quick else 3, seed=seed
    )
    return {
        "bench": "program_latency",
        "schema": 1,
        "quick": quick,
        "cold_program": cold,
        "warm_install": warm,
        "engine": engine,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }


def render_bench(result: dict[str, Any]) -> str:
    """Human-readable summary of one :func:`run_bench` payload."""
    from repro.util.tables import format_table

    cold = result["cold_program"]
    warm = result["warm_install"]
    engine = result["engine"]
    shape = "x".join(str(d) for d in cold["workload"]["shape"])
    rows = [
        ("workload", f"{shape} @ {cold['workload']['weight_bits']}-bit"),
        ("cold program (vectorized)", f"{cold['vectorized_s'] * 1e3:.2f} ms"),
        ("cold program (scalar ref)", f"{cold['scalar_reference_s'] * 1e3:.2f} ms"),
        ("cold-program speedup", f"{cold['speedup']:.1f}x"),
        ("scalar/vectorized bit-identical", str(cold["bit_identical"])),
        ("warm install (cache hit)", f"{warm['per_install_s'] * 1e6:.1f} us"),
        ("warm vs cold", f"{warm['speedup_vs_cold']:.0f}x"),
        (
            "engine throughput",
            f"{engine['wall_clock_fps']:.0f} frames/s "
            f"({engine['frames']} frames, {engine['num_nodes']} node(s))",
        ),
        ("engine cache hits/misses", f"{engine['cache_hits']} / {engine['cache_misses']}"),
    ]
    return format_table(
        ("metric", "value"),
        rows,
        title="repro bench — weight-programming perf trajectory",
    )


def _reject_json_constant(name: str):
    raise ValueError(f"non-JSON constant {name!r} in bench payload")


def sanitize_bench_payload(value: Any) -> Any:
    """Replace non-finite floats with ``None``, recursively.

    ``json.dump`` would otherwise emit literal ``NaN``/``Infinity`` —
    tokens the JSON grammar does not allow, which break every strict
    downstream reader.  ``null`` is the explicit "no measurement" marker
    (e.g. the p99 latency of an SLO class that delivered zero frames).
    """
    if isinstance(value, dict):
        return {key: sanitize_bench_payload(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_bench_payload(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def would_clobber_full_bench(path: str, result: dict[str, Any]) -> bool:
    """Whether writing ``result`` would replace a full run with a smoke run.

    The perf-trajectory artifacts (``BENCH_*.json`` at the repo root) are
    long-lived baselines; CI smoke runs (``quick: true`` payloads, fewer
    repeats/frames) must never overwrite a full-mode entry — that
    silently degrades the trajectory every future PR measures against.
    An unreadable/schema-less existing file never blocks (it is not a
    trajectory entry worth protecting).  Legacy payloads written before
    :func:`write_bench` sanitized non-finite floats may contain literal
    ``NaN``/``Infinity``; those are tolerated (parsed leniently) but
    flagged so they get rewritten through the sanitizer.
    """
    if not result.get("quick", False) or not os.path.exists(path):
        return False
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError:
        return False
    try:
        existing = json.loads(text, parse_constant=_reject_json_constant)
    except json.JSONDecodeError:
        return False
    except ValueError:
        try:
            existing = json.loads(text)
        except json.JSONDecodeError:
            return False
        print(
            f"would_clobber_full_bench: {path} holds non-JSON NaN/Infinity "
            "constants (legacy payload) — rewrite it via write_bench"
        )
    return isinstance(existing, dict) and not existing.get("quick", False)


def write_bench(path: str, result: dict[str, Any]) -> str:
    """Write a bench payload as pretty, strictly valid JSON; returns ``path``.

    Non-finite floats serialize as ``null`` (see
    :func:`sanitize_bench_payload`); ``allow_nan=False`` backstops the
    sanitizer so a literal ``NaN`` can never reach the trajectory again.
    Refuses (skips the write, keeps the existing file) when ``result`` is
    a ``quick`` smoke payload and ``path`` already holds a full-mode
    entry — see :func:`would_clobber_full_bench`.
    """
    if would_clobber_full_bench(path, result):
        print(
            f"write_bench: refusing to overwrite full-mode {path} with a "
            "quick (smoke) payload; existing trajectory entry kept"
        )
        return path
    with open(path, "w") as handle:
        json.dump(
            sanitize_bench_payload(result),
            handle,
            indent=2,
            sort_keys=False,
            allow_nan=False,
        )
        handle.write("\n")
    return path
