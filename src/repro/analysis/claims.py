"""The paper's headline textual claims, measured against the model.

Collected from Sections III-B and IV:

* MACs per cycle: 3600 / 2000 / 3920 for K = 3 / 5 / 7;
* 4000 MRs, 400 arms, 100 weight-mapping iterations;
* 55.8 ps architecture-wide MAC -> ~7.1 TOp/s peak;
* 6.68 TOp/s/W efficiency;
* 1.92 mm^2 area; 1000 FPS;
* power reductions vs Crosslight / AppCiP / ASIC: 8.3x / 7.9x / 18.4x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fig9 import PAPER_REDUCTIONS, build_fig9
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, default_plan
from repro.core.mapping import macs_per_cycle
from repro.util.tables import format_table


@dataclass(frozen=True)
class Claim:
    """One paper claim with its measured counterpart."""

    name: str
    paper_value: float
    measured_value: float
    tolerance: float  # relative

    @property
    def relative_error(self) -> float:
        """|measured - paper| / |paper|."""
        if self.paper_value == 0:
            return abs(self.measured_value)
        return abs(self.measured_value - self.paper_value) / abs(self.paper_value)

    @property
    def holds(self) -> bool:
        """Whether the measurement is within tolerance of the paper."""
        return self.relative_error <= self.tolerance


def build_claims(config: OISAConfig | None = None, include_fig9: bool = True) -> list[Claim]:
    """Measure every headline claim."""
    cfg = config or OISAConfig()
    model = OISAEnergyModel(cfg)
    claims = [
        Claim("total MRs", 4000, cfg.total_mrs, 0.0),
        Claim("total arms", 400, cfg.total_arms, 0.0),
        Claim("weight mapping iterations", 100, cfg.weight_mapping_iterations, 0.0),
        Claim("MACs/cycle K=3", 3600, macs_per_cycle(cfg, 3), 0.0),
        Claim("MACs/cycle K=5", 2000, macs_per_cycle(cfg, 5), 0.0),
        Claim("MACs/cycle K=7", 3920, macs_per_cycle(cfg, 7), 0.0),
        Claim("peak throughput [TOp/s]", 7.1, model.peak_throughput_ops() / 1e12, 0.05),
        Claim("efficiency [TOp/s/W]", 6.68, model.efficiency_tops_per_watt(), 0.05),
        Claim("area [mm^2]", 1.92, model.area_mm2().total, 0.05),
        Claim("frame rate [FPS]", 1000, cfg.frame_rate_hz, 0.0),
    ]
    plan = default_plan(cfg)
    electronics_mw = model.electronics_power_w(plan) * 1e3
    # Paper's Table I power band is 0.12-0.34 mW; compare to the midpoint
    # with a band-sized tolerance.
    claims.append(Claim("Table I power [mW]", 0.23, electronics_mw, 0.5))
    if include_fig9:
        # One reduction claim per registered comparison platform; platforms
        # without a paper-quoted reduction are skipped.
        fig9 = build_fig9(cfg)
        display = {"AppCip": "AppCiP"}
        for name, measured in fig9.reductions_vs_oisa.items():
            paper = PAPER_REDUCTIONS.get(name)
            if paper is None:
                continue
            claims.append(
                Claim(
                    f"power reduction vs {display.get(name, name)}",
                    paper,
                    measured,
                    0.25,
                )
            )
    return claims


def render_claims(claims: list[Claim] | None = None) -> str:
    """Print the paper-vs-measured claim table."""
    claims = claims if claims is not None else build_claims()
    rows = [
        (
            claim.name,
            claim.paper_value,
            claim.measured_value,
            f"{claim.relative_error * 100:.1f}%",
            "yes" if claim.holds else "NO",
        )
        for claim in claims
    ]
    return format_table(
        ("claim", "paper", "measured", "rel err", "holds"),
        rows,
        title="Headline claims — paper vs measured",
    )
