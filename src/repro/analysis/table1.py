"""Table I: structural/performance comparison of PIS/PNS units vs OISA.

Literature rows come from :mod:`repro.baselines.literature` (the paper
reports, not re-simulated); the OISA row is generated live from the
architecture model via the platform registry, and one measured row is
appended per rebuilt comparison platform so the table tracks whatever the
registry contains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.literature import (
    LITERATURE_DESIGNS,
    PAPER_OISA_ROW,
    LiteratureDesign,
)
from repro.core.config import OISAConfig
from repro.sim.platforms import get_platform, iter_platforms
from repro.util.tables import format_table


@dataclass(frozen=True)
class Table1Data:
    """Literature rows plus the measured platform rows."""

    literature: tuple[LiteratureDesign, ...]
    oisa_row: dict
    paper_oisa_row: dict
    #: (label, row) per rebuilt comparison platform, measured live.
    platform_rows: tuple[tuple[str, dict], ...] = ()


def build_oisa_row(config: OISAConfig | None = None) -> dict:
    """Compute OISA's Table I entries from the architecture model."""
    return get_platform("oisa", config).table1_row()


def build_platform_rows(
    config: OISAConfig | None = None,
) -> tuple[tuple[str, dict], ...]:
    """One measured row per rebuilt (non-OISA) registry platform.

    Each adapter describes its own Table-I facts via ``table1_row``
    (structural flags live on the :class:`~repro.sim.platforms.Platform`
    subclass), so a newly registered platform renders correctly without
    touching this module.
    """
    return tuple(
        (f"{platform.name} (rebuilt)", platform.table1_row())
        for platform in iter_platforms(config)
        if platform.name != "OISA" and hasattr(platform, "table1_row")
    )


def build_table1(config: OISAConfig | None = None) -> Table1Data:
    """Assemble the full Table I."""
    return Table1Data(
        literature=LITERATURE_DESIGNS,
        oisa_row=build_oisa_row(config),
        paper_oisa_row=PAPER_OISA_ROW,
        platform_rows=build_platform_rows(config),
    )


def render_table1(data: Table1Data | None = None) -> str:
    """Print Table I with the measured platform rows appended."""
    data = data or build_table1()
    headers = (
        "design",
        "tech [nm]",
        "purpose",
        "scheme",
        "mem",
        "NVM",
        "pixel [um]",
        "array",
        "FPS",
        "power [mW]",
        "TOp/s/W",
    )
    rows = []
    for design in data.literature:
        rows.append(
            (
                design.reference,
                design.technology_nm,
                design.purpose,
                design.compute_scheme,
                "yes" if design.has_memory else "no",
                "yes" if design.has_nvm else "no",
                design.pixel_size_um,
                design.array_size,
                design.frame_rate_fps,
                design.power_mw,
                design.efficiency_tops_per_watt,
            )
        )
    measured_rows = (
        *data.platform_rows,
        ("OISA (measured)", data.oisa_row),
        ("OISA (paper)", data.paper_oisa_row),
    )
    for label, row in measured_rows:
        rows.append(
            (
                label,
                row["technology_nm"],
                row["purpose"],
                row["compute_scheme"],
                "yes" if row["has_memory"] else "no",
                "yes" if row["has_nvm"] else "no",
                row["pixel_size_um"],
                row["array_size"],
                row["frame_rate_fps"],
                row["power_mw"],
                row["efficiency_tops_per_watt"],
            )
        )
    return format_table(
        headers, rows, title="Table I — PIS/PNS/PIP comparison"
    )
