"""Table I: structural/performance comparison of PIS/PNS units vs OISA.

Literature rows come from :mod:`repro.baselines.literature` (the paper
reports, not re-simulated); the OISA row is generated live from the
architecture model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.literature import (
    LITERATURE_DESIGNS,
    PAPER_OISA_ROW,
    LiteratureDesign,
)
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, default_plan
from repro.util.tables import format_table


@dataclass(frozen=True)
class Table1Data:
    """Literature rows plus the measured OISA row."""

    literature: tuple[LiteratureDesign, ...]
    oisa_row: dict
    paper_oisa_row: dict


def build_oisa_row(config: OISAConfig | None = None) -> dict:
    """Compute OISA's Table I entries from the architecture model."""
    cfg = config or OISAConfig()
    model = OISAEnergyModel(cfg)
    plan = default_plan(cfg)
    electronics_mw = model.electronics_power_w(plan) * 1e3
    return {
        "technology_nm": 65,
        "purpose": "1st-layer CNN",
        "compute_scheme": "entire-array",
        "has_memory": True,
        "has_nvm": False,
        "pixel_size_um": cfg.pixel_pitch_m * 1e6,
        "array_size": f"{cfg.pixel_rows}x{cfg.pixel_cols}",
        "frame_rate_fps": f"{cfg.frame_rate_hz:.0f}",
        "power_mw": f"{electronics_mw:.4f}",
        "efficiency_tops_per_watt": f"{model.efficiency_tops_per_watt():.2f}",
    }


def build_table1(config: OISAConfig | None = None) -> Table1Data:
    """Assemble the full Table I."""
    return Table1Data(
        literature=LITERATURE_DESIGNS,
        oisa_row=build_oisa_row(config),
        paper_oisa_row=PAPER_OISA_ROW,
    )


def render_table1(data: Table1Data | None = None) -> str:
    """Print Table I with the measured OISA row appended."""
    data = data or build_table1()
    headers = (
        "design",
        "tech [nm]",
        "purpose",
        "scheme",
        "mem",
        "NVM",
        "pixel [um]",
        "array",
        "FPS",
        "power [mW]",
        "TOp/s/W",
    )
    rows = []
    for design in data.literature:
        rows.append(
            (
                design.reference,
                design.technology_nm,
                design.purpose,
                design.compute_scheme,
                "yes" if design.has_memory else "no",
                "yes" if design.has_nvm else "no",
                design.pixel_size_um,
                design.array_size,
                design.frame_rate_fps,
                design.power_mw,
                design.efficiency_tops_per_watt,
            )
        )
    for label, row in (
        ("OISA (measured)", data.oisa_row),
        ("OISA (paper)", data.paper_oisa_row),
    ):
        rows.append(
            (
                label,
                row["technology_nm"],
                row["purpose"],
                row["compute_scheme"],
                "yes" if row["has_memory"] else "no",
                "yes" if row["has_nvm"] else "no",
                row["pixel_size_um"],
                row["array_size"],
                row["frame_rate_fps"],
                row["power_mw"],
                row["efficiency_tops_per_watt"],
            )
        )
    return format_table(
        headers, rows, title="Table I — PIS/PNS/PIP comparison"
    )
