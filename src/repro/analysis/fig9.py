"""Fig. 9: normalized power of OISA / Crosslight / AppCiP / ASIC.

Sweeps the [Weight, Activation] bit-width configurations [1,2]..[4,2] on
the paper's scenario (1st layer of ResNet-18 behind a 128x128 sensor at
1000 FPS) and reports per-platform totals plus the component breakdowns the
figure's two right panels show (ADC/DAC for Crosslight vs AWC/VAM for
OISA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, resnet18_first_layer_workload
from repro.core.mapping import plan_convolution
from repro.sim.simulator import InHouseSimulator
from repro.util.tables import format_table

#: The x-axis of Fig. 9.
BIT_CONFIGS: tuple[tuple[int, int], ...] = ((1, 2), (2, 2), (3, 2), (4, 2))


@dataclass(frozen=True)
class Fig9Data:
    """Per-platform power series and breakdowns."""

    bit_configs: tuple[tuple[int, int], ...]
    power_w: dict[str, list[float]]
    breakdowns: dict[str, list[dict[str, float]]]
    reductions_vs_oisa: dict[str, float] = field(default_factory=dict)

    def average_reduction(self, platform: str) -> float:
        """Mean power ratio platform/OISA over the bit sweep."""
        oisa = np.asarray(self.power_w["OISA"])
        other = np.asarray(self.power_w[platform])
        return float(np.mean(other / oisa))


def build_fig9(config: OISAConfig | None = None) -> Fig9Data:
    """Regenerate the Fig. 9 sweep."""
    cfg = config or OISAConfig()
    simulator = InHouseSimulator(cfg)
    workload = resnet18_first_layer_workload(cfg)

    power: dict[str, list[float]] = {
        "OISA": [],
        "Crosslight": [],
        "AppCip": [],
        "ASIC": [],
    }
    breakdowns: dict[str, list[dict[str, float]]] = {
        name: [] for name in power
    }
    for weight_bits, activation_bits in BIT_CONFIGS:
        oisa = simulator.simulate_oisa_conv(workload, weight_bits)
        power["OISA"].append(oisa.average_power_w)
        breakdowns["OISA"].append(dict(oisa.breakdown.components))
        for platform in ("crosslight", "appcip", "asic"):
            report = simulator.simulate_baseline(
                platform, workload, weight_bits, activation_bits
            )
            power[report.platform].append(report.average_power_w)
            breakdowns[report.platform].append(dict(report.breakdown.components))

    data = Fig9Data(
        bit_configs=BIT_CONFIGS, power_w=power, breakdowns=breakdowns
    )
    reductions = {
        name: data.average_reduction(name)
        for name in ("Crosslight", "AppCip", "ASIC")
    }
    return Fig9Data(
        bit_configs=BIT_CONFIGS,
        power_w=power,
        breakdowns=breakdowns,
        reductions_vs_oisa=reductions,
    )


def render_fig9(data: Fig9Data | None = None) -> str:
    """Print the Fig. 9 series (log-scale power) and breakdowns."""
    data = data or build_fig9()
    headers = ["platform"] + [f"[{w},{a}] power [mW]" for w, a in data.bit_configs]
    rows = []
    for platform, series in data.power_w.items():
        rows.append([platform] + [value * 1e3 for value in series])
    table = format_table(
        headers, rows, title="Fig. 9 — average power, ResNet-18 1st layer @1000 FPS"
    )

    reduction_rows = [
        (name, data.reductions_vs_oisa[name], paper)
        for name, paper in (
            ("Crosslight", 8.3),
            ("AppCip", 7.9),
            ("ASIC", 18.4),
        )
    ]
    reductions = format_table(
        ("platform", "measured avg reduction vs OISA", "paper"),
        reduction_rows,
        title="\nAverage power reduction of OISA",
    )

    def breakdown_table(platform: str, label: str) -> str:
        names = sorted(
            {key for entry in data.breakdowns[platform] for key in entry}
        )
        rows = []
        for name in names:
            rows.append(
                [name]
                + [
                    entry.get(name, 0.0) * 1e3
                    for entry in data.breakdowns[platform]
                ]
            )
        return format_table(
            ["component"] + [f"[{w},{a}] mW" for w, a in data.bit_configs],
            rows,
            title=label,
        )

    oisa_breakdown = breakdown_table(
        "OISA", "\nOISA breakdown (AWC/VAM replace the converters)"
    )
    crosslight_breakdown = breakdown_table(
        "Crosslight", "\nCrosslight breakdown (ADC/DAC dominate)"
    )
    return "\n".join(
        [table, reductions, oisa_breakdown, crosslight_breakdown]
    )
