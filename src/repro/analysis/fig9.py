"""Fig. 9: normalized power of OISA / Crosslight / AppCiP / ASIC.

Sweeps the [Weight, Activation] bit-width configurations [1,2]..[4,2] on
the paper's scenario (1st layer of ResNet-18 behind a 128x128 sensor at
1000 FPS) and reports per-platform totals plus the component breakdowns the
figure's two right panels show (ADC/DAC for Crosslight vs AWC/VAM for
OISA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.energy import resnet18_first_layer_workload
from repro.sim.platforms import iter_platforms
from repro.util.tables import format_table

#: The x-axis of Fig. 9.
BIT_CONFIGS: tuple[tuple[int, int], ...] = ((1, 2), (2, 2), (3, 2), (4, 2))

#: The paper's quoted average power reductions of OISA, by platform name.
PAPER_REDUCTIONS: dict[str, float] = {
    "Crosslight": 8.3,
    "AppCip": 7.9,
    "ASIC": 18.4,
}


@dataclass(frozen=True)
class Fig9Data:
    """Per-platform power series and breakdowns."""

    bit_configs: tuple[tuple[int, int], ...]
    power_w: dict[str, list[float]]
    breakdowns: dict[str, list[dict[str, float]]]
    reductions_vs_oisa: dict[str, float] = field(default_factory=dict)

    def average_reduction(self, platform: str) -> float:
        """Mean power ratio platform/OISA over the bit sweep."""
        oisa = np.asarray(self.power_w["OISA"])
        other = np.asarray(self.power_w[platform])
        return float(np.mean(other / oisa))


def build_fig9(config: OISAConfig | None = None) -> Fig9Data:
    """Regenerate the Fig. 9 sweep by iterating the platform registry."""
    cfg = config or OISAConfig()
    workload = resnet18_first_layer_workload(cfg)
    platforms = [p for p in iter_platforms(cfg) if p.supports_conv]

    power: dict[str, list[float]] = {p.name: [] for p in platforms}
    breakdowns: dict[str, list[dict[str, float]]] = {
        name: [] for name in power
    }
    for weight_bits, activation_bits in BIT_CONFIGS:
        for platform in platforms:
            report = platform.simulate_conv(
                workload,
                weight_bits=weight_bits,
                activation_bits=activation_bits,
            )
            power[platform.name].append(report.average_power_w)
            breakdowns[platform.name].append(dict(report.breakdown.components))

    data = Fig9Data(
        bit_configs=BIT_CONFIGS, power_w=power, breakdowns=breakdowns
    )
    reductions = {
        platform.name: data.average_reduction(platform.name)
        for platform in platforms
        if platform.name != "OISA"
    }
    return Fig9Data(
        bit_configs=BIT_CONFIGS,
        power_w=power,
        breakdowns=breakdowns,
        reductions_vs_oisa=reductions,
    )


def render_fig9(data: Fig9Data | None = None) -> str:
    """Print the Fig. 9 series (log-scale power) and breakdowns."""
    data = data or build_fig9()
    headers = ["platform"] + [f"[{w},{a}] power [mW]" for w, a in data.bit_configs]
    rows = []
    for platform, series in data.power_w.items():
        rows.append([platform] + [value * 1e3 for value in series])
    table = format_table(
        headers, rows, title="Fig. 9 — average power, ResNet-18 1st layer @1000 FPS"
    )

    reduction_rows = [
        (name, measured, PAPER_REDUCTIONS.get(name, "-"))
        for name, measured in data.reductions_vs_oisa.items()
    ]
    reductions = format_table(
        ("platform", "measured avg reduction vs OISA", "paper"),
        reduction_rows,
        title="\nAverage power reduction of OISA",
    )

    def breakdown_table(platform: str, label: str) -> str:
        names = sorted(
            {key for entry in data.breakdowns[platform] for key in entry}
        )
        rows = []
        for name in names:
            rows.append(
                [name]
                + [
                    entry.get(name, 0.0) * 1e3
                    for entry in data.breakdowns[platform]
                ]
            )
        return format_table(
            ["component"] + [f"[{w},{a}] mW" for w, a in data.bit_configs],
            rows,
            title=label,
        )

    oisa_breakdown = breakdown_table(
        "OISA", "\nOISA breakdown (AWC/VAM replace the converters)"
    )
    crosslight_breakdown = breakdown_table(
        "Crosslight", "\nCrosslight breakdown (ADC/DAC dominate)"
    )
    return "\n".join(
        [table, reductions, oisa_breakdown, crosslight_breakdown]
    )
