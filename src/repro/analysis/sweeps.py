"""Programmatic design-space and platform sweeps with Pareto extraction.

Library counterpart of ``examples/design_space_exploration.py``: enumerate
architecture variants, evaluate the metrics the paper trades off
(throughput, efficiency, area, weight fidelity), and extract the Pareto
frontier.  :func:`sweep_platforms` additionally runs every *registered
platform* (see :mod:`repro.sim.platforms`) over a bit-configuration grid —
the uniform cross-platform sweep Fig. 9 and the ``repro sweep`` CLI
command are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel, resnet18_first_layer_workload
from repro.core.mapping import ConvWorkload
from repro.core.opc import OpticalProcessingCore
from repro.nn.quant import UniformWeightQuantizer
from repro.sim.platforms import get_platform, iter_platforms
from repro.sim.reports import SimulationReport
from repro.util.parallel import ParallelConfig, parallel_map
from repro.util.rng import derive_rng
from repro.util.tables import format_table


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated architecture variant."""

    num_banks: int
    weight_bits: int
    metrics: dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Look up one metric value."""
        return self.metrics[name]


def evaluate_design(
    num_banks: int,
    weight_bits: int,
    seed: int = 0,
) -> DesignPoint:
    """Evaluate one (banks, bits) variant on the standard metric set."""
    config = OISAConfig(num_banks=num_banks).with_weight_bits(weight_bits)
    model = OISAEnergyModel(config)
    rng = derive_rng(seed, f"dse-{num_banks}-{weight_bits}")
    weights = rng.normal(size=(16, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(weight_bits)
    quantized = quantizer.quantize(weights)
    opc = OpticalProcessingCore(config, seed=seed, enable_read_noise=False)
    programmed = opc.program(quantized, quantizer.scale(weights))
    total_error = float(
        np.sqrt(np.mean((programmed.realized - weights) ** 2))
    )
    return DesignPoint(
        num_banks=num_banks,
        weight_bits=weight_bits,
        metrics={
            "throughput_tops": model.peak_throughput_ops() / 1e12,
            "efficiency_tops_per_watt": model.efficiency_tops_per_watt(),
            "area_mm2": model.area_mm2().total,
            "weight_rms_error": total_error,
            "peak_power_w": model.peak_power_w().total,
        },
    )


def sweep_design_space(
    bank_options: tuple[int, ...] = (20, 40, 80, 160),
    bit_options: tuple[int, ...] = (1, 2, 3, 4),
    seed: int = 0,
) -> list[DesignPoint]:
    """Evaluate the cross product of bank counts and bit widths."""
    return [
        evaluate_design(banks, bits, seed=seed)
        for banks, bits in product(bank_options, bit_options)
    ]


@dataclass(frozen=True)
class PlatformSweepPoint:
    """One (platform, bit-config) evaluation of the cross-platform sweep."""

    platform: str
    weight_bits: int
    activation_bits: int
    report: SimulationReport


def _platform_point_task(task) -> PlatformSweepPoint:
    """One (platform, bit-config) evaluation, as a pure fan-out task.

    Ships the registry *key* (not the adapter object) across the process
    boundary and rebuilds the platform from the registry in the worker —
    adapters are constructed deterministically from (key, config), so the
    point is byte-identical wherever it computes.
    """
    platform_key, cfg, load, weight_bits, activation_bits = task
    platform = get_platform(platform_key, cfg)
    return PlatformSweepPoint(
        platform=platform.name,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        report=platform.simulate_conv(
            load, weight_bits=weight_bits, activation_bits=activation_bits
        ),
    )


def sweep_platforms(
    workload: ConvWorkload | None = None,
    bit_configs: tuple[tuple[int, int], ...] | None = None,
    config: OISAConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[PlatformSweepPoint]:
    """Every registered platform x every bit configuration, one workload.

    Iterates the platform registry, so a newly registered platform shows
    up in the sweep (and everything built on it) without code changes.
    The default bit grid is Fig. 9's x-axis.  The platform x bits grid
    fans out over ``parallel`` and merges in registry order, so the point
    list is byte-identical under every backend.
    """
    if bit_configs is None:
        from repro.analysis.fig9 import BIT_CONFIGS

        bit_configs = BIT_CONFIGS
    cfg = config or OISAConfig()
    load = workload or resnet18_first_layer_workload(cfg)
    tasks = [
        (platform.key, cfg, load, weight_bits, activation_bits)
        for platform in iter_platforms(cfg)
        if platform.supports_conv
        for weight_bits, activation_bits in bit_configs
    ]
    return parallel_map(_platform_point_task, tasks, parallel)


def render_platform_sweep(points: list[PlatformSweepPoint] | None = None) -> str:
    """Aligned table of the cross-platform sweep (power and efficiency)."""
    points = points if points is not None else sweep_platforms()
    rows = [
        (
            point.platform,
            f"[{point.weight_bits},{point.activation_bits}]",
            point.report.average_power_w * 1e3,
            point.report.energy_per_frame_uj,
            point.report.efficiency_tops_per_watt,
        )
        for point in points
    ]
    return format_table(
        ("platform", "bits", "avg power [mW]", "energy [uJ]", "TOp/s/W"),
        rows,
        title="Cross-platform sweep (registry-driven)",
    )


def pareto_front(
    points: list[DesignPoint],
    maximize: tuple[str, ...] = ("throughput_tops", "efficiency_tops_per_watt"),
    minimize: tuple[str, ...] = ("area_mm2", "weight_rms_error"),
) -> list[DesignPoint]:
    """Non-dominated subset under the given objectives.

    A point dominates another when it is no worse on every objective and
    strictly better on at least one.
    """
    if not points:
        return []

    def objective_vector(point: DesignPoint) -> np.ndarray:
        best_higher = [point.metric(name) for name in maximize]
        best_lower = [-point.metric(name) for name in minimize]
        return np.array(best_higher + best_lower)

    vectors = [objective_vector(point) for point in points]
    front = []
    for index, candidate in enumerate(vectors):
        dominated = any(
            np.all(other >= candidate) and np.any(other > candidate)
            for j, other in enumerate(vectors)
            if j != index
        )
        if not dominated:
            front.append(points[index])
    return front
