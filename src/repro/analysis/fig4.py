"""Fig. 4(b): AWC transient staircase — 16 tuning-current levels in 16 ns."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.awc import AwcCircuit, AwcDesign
from repro.util.tables import format_table


@dataclass(frozen=True)
class Fig4Data:
    """The staircase transient plus converter-quality metrics."""

    times_ns: np.ndarray
    current_ua: np.ndarray
    codes: np.ndarray
    settled_levels_ua: np.ndarray
    dnl_lsb: np.ndarray
    inl_lsb: np.ndarray
    monotonic: bool

    @property
    def num_levels(self) -> int:
        """Distinct levels swept (16 for the 4-bit ladder)."""
        return len(self.settled_levels_ua)

    @property
    def max_current_ua(self) -> float:
        """Top of the staircase [uA] (paper: ~400 uA)."""
        return float(self.settled_levels_ua.max())


def build_fig4(
    num_bits: int = 4, seed: int = 7, dwell_ns: float = 1.0
) -> Fig4Data:
    """Simulate the Fig. 4(b) sweep on one AWC instance."""
    circuit = AwcCircuit(AwcDesign(num_bits=num_bits), seed=seed)
    transient = circuit.staircase_transient(dwell_s=dwell_ns * 1e-9)
    return Fig4Data(
        times_ns=transient.times_s * 1e9,
        current_ua=transient["Ituning"] * 1e6,
        codes=transient["code"],
        settled_levels_ua=circuit.all_levels_a() * 1e6,
        dnl_lsb=circuit.dnl_lsb(),
        inl_lsb=circuit.inl_lsb(),
        monotonic=circuit.monotonic(),
    )


def render_fig4(data: Fig4Data | None = None) -> str:
    """Print the staircase as the series Fig. 4(b) plots."""
    data = data or build_fig4()
    rows = []
    for code, level in enumerate(data.settled_levels_ua):
        binary = format(code, f"0{int(np.log2(data.num_levels))}b")
        dnl = data.dnl_lsb[code - 1] if code > 0 else 0.0
        rows.append((f'"{binary}"', code, level, dnl, data.inl_lsb[code]))
    table = format_table(
        ("code", "value", "I_tuning [uA]", "DNL [LSB]", "INL [LSB]"),
        rows,
        title="Fig. 4(b) — AWC transient levels (paper: 16 levels, 0..~400 uA)",
    )
    footer = (
        f"\nmonotonic: {data.monotonic}   "
        f"full scale: {data.max_current_ua:.1f} uA   "
        f"worst |DNL|: {np.abs(data.dnl_lsb).max():.3f} LSB"
    )
    return table + footer
