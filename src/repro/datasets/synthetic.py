"""Procedural class-structured image generator.

Each class is defined by a smooth random *template* field; samples are
jittered, rescaled, cluttered and noised copies of their class template.
Difficulty is controlled by four knobs:

* ``noise_sigma`` — additive Gaussian pixel noise;
* ``jitter_px`` — random circular shifts (translation invariance pressure);
* ``clutter`` — how strongly a random *other* class template is mixed in;
* ``superclass_spread`` — for coarse/fine hierarchies (CIFAR-100-like),
  classes are perturbations of shared superclass templates, which squeezes
  inter-class margins.

Templates are low-pass-filtered white noise, so they have natural-image-like
spatial correlation; all pixels land in [0, 1] like a normalised sensor
frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.util.rng import derive_rng
from repro.util.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class SyntheticSpec:
    """Full description of a synthetic dataset."""

    name: str
    num_classes: int
    image_size: int
    channels: int
    train_size: int
    test_size: int
    noise_sigma: float = 0.08
    jitter_px: int = 2
    clutter: float = 0.15
    smoothness: float = 3.0
    num_superclasses: int | None = None
    superclass_spread: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_classes", self.num_classes)
        check_positive("image_size", self.image_size)
        check_positive("channels", self.channels)
        check_positive("train_size", self.train_size)
        check_positive("test_size", self.test_size)
        check_non_negative("noise_sigma", self.noise_sigma)
        check_non_negative("jitter_px", self.jitter_px)
        check_in_range("clutter", self.clutter, 0.0, 1.0)
        check_positive("smoothness", self.smoothness)
        if self.num_superclasses is not None:
            if not (0 < self.num_superclasses <= self.num_classes):
                raise ValueError(
                    "num_superclasses must be in (0, num_classes], got "
                    f"{self.num_superclasses}"
                )
            check_in_range("superclass_spread", self.superclass_spread, 0.0, 1.0)


def _smooth_field(
    rng: np.random.Generator, size: int, channels: int, smoothness: float
) -> np.ndarray:
    """Low-pass-filtered white noise normalised to zero mean, unit std."""
    field = rng.normal(size=(channels, size, size))
    field = ndimage.gaussian_filter(field, sigma=(0, smoothness, smoothness))
    field -= field.mean()
    std = field.std()
    if std > 0:
        field /= std
    return field


def make_class_templates(spec: SyntheticSpec) -> np.ndarray:
    """Per-class template fields, shape (num_classes, C, H, W).

    With ``num_superclasses`` set, fine classes share a superclass template
    plus a scaled private perturbation — mimicking CIFAR-100's coarse/fine
    hierarchy and making fine classes genuinely confusable.
    """
    rng = derive_rng(spec.seed, f"{spec.name}-templates")
    if spec.num_superclasses is None:
        return np.stack(
            [
                _smooth_field(rng, spec.image_size, spec.channels, spec.smoothness)
                for _ in range(spec.num_classes)
            ]
        )
    supers = np.stack(
        [
            _smooth_field(rng, spec.image_size, spec.channels, spec.smoothness)
            for _ in range(spec.num_superclasses)
        ]
    )
    templates = []
    for class_index in range(spec.num_classes):
        parent = supers[class_index % spec.num_superclasses]
        private = _smooth_field(rng, spec.image_size, spec.channels, spec.smoothness)
        blended = (
            (1.0 - spec.superclass_spread) * parent
            + spec.superclass_spread * private
        )
        templates.append(blended / max(blended.std(), 1e-9))
    return np.stack(templates)


def _render_split(
    spec: SyntheticSpec,
    templates: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    labels = rng.integers(0, spec.num_classes, size=count)
    images = np.empty(
        (count, spec.channels, spec.image_size, spec.image_size), dtype=np.float64
    )
    other = rng.integers(0, spec.num_classes, size=count)
    amplitudes = rng.uniform(0.8, 1.2, size=count)
    shifts_y = rng.integers(-spec.jitter_px, spec.jitter_px + 1, size=count)
    shifts_x = rng.integers(-spec.jitter_px, spec.jitter_px + 1, size=count)
    for index in range(count):
        base = templates[labels[index]]
        if spec.clutter > 0.0 and other[index] != labels[index]:
            base = (1.0 - spec.clutter) * base + spec.clutter * templates[other[index]]
        sample = amplitudes[index] * np.roll(
            base, (shifts_y[index], shifts_x[index]), axis=(1, 2)
        )
        images[index] = sample
    if spec.noise_sigma > 0.0:
        images += rng.normal(0.0, spec.noise_sigma, size=images.shape)
    # Normalise the whole split into [0, 1] like a sensor frame.
    low = images.min()
    high = images.max()
    span = max(high - low, 1e-9)
    images = (images - low) / span
    return images, labels.astype(np.int64)


def generate_dataset(
    spec: SyntheticSpec,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(x_train, y_train, x_test, y_test)`` for ``spec``.

    Train and test splits share templates (same classes) but use
    independent sampling streams, so generalisation is measured across
    jitter/noise/clutter, not across classes.
    """
    templates = make_class_templates(spec)
    train_rng = derive_rng(spec.seed, f"{spec.name}-train")
    test_rng = derive_rng(spec.seed, f"{spec.name}-test")
    x_train, y_train = _render_split(spec, templates, spec.train_size, train_rng)
    x_test, y_test = _render_split(spec, templates, spec.test_size, test_rng)
    return x_train, y_train, x_test, y_test
