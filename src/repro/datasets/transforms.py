"""Data-augmentation transforms for the synthetic training sets.

Used by the full-fidelity Table II preset to squeeze more generalisation
out of the small synthetic splits: random circular shifts (matching the
generator's jitter), horizontal flips, and intensity jitter.  All
transforms are vectorised, deterministic under a Generator, and keep pixel
values inside [0, 1] — the sensor's physical range.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_rng
from repro.util.validation import check_in_range, check_non_negative


def random_shift(
    images: np.ndarray, max_px: int, rng: np.random.Generator
) -> np.ndarray:
    """Independent circular shifts of up to ``max_px`` pixels per image."""
    check_non_negative("max_px", max_px)
    if max_px == 0:
        return images.copy()
    images = np.asarray(images)
    out = np.empty_like(images)
    shifts = rng.integers(-max_px, max_px + 1, size=(images.shape[0], 2))
    for index, (dy, dx) in enumerate(shifts):
        out[index] = np.roll(images[index], (int(dy), int(dx)), axis=(1, 2))
    return out


def random_hflip(
    images: np.ndarray, probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Horizontal flip each image with ``probability``."""
    check_in_range("probability", probability, 0.0, 1.0)
    images = np.asarray(images)
    flips = rng.random(images.shape[0]) < probability
    out = images.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def intensity_jitter(
    images: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-image multiplicative brightness jitter, clipped to [0, 1]."""
    check_non_negative("sigma", sigma)
    images = np.asarray(images)
    if sigma == 0.0:
        return images.copy()
    gains = 1.0 + rng.normal(0.0, sigma, size=(images.shape[0], 1, 1, 1))
    return np.clip(images * gains, 0.0, 1.0)


class Augmenter:
    """Composable training-time augmentation pipeline."""

    def __init__(
        self,
        shift_px: int = 2,
        hflip_probability: float = 0.0,
        jitter_sigma: float = 0.05,
        seed: int | None = None,
    ) -> None:
        check_non_negative("shift_px", shift_px)
        check_in_range("hflip_probability", hflip_probability, 0.0, 1.0)
        check_non_negative("jitter_sigma", jitter_sigma)
        self.shift_px = shift_px
        self.hflip_probability = hflip_probability
        self.jitter_sigma = jitter_sigma
        self._rng = derive_rng(seed, "augmenter")

    def __call__(self, images: np.ndarray) -> np.ndarray:
        """Apply the configured transforms to a batch."""
        out = np.asarray(images, dtype=float)
        if self.shift_px:
            out = random_shift(out, self.shift_px, self._rng)
        if self.hflip_probability > 0.0:
            out = random_hflip(out, self.hflip_probability, self._rng)
        if self.jitter_sigma > 0.0:
            out = intensity_jitter(out, self.jitter_sigma, self._rng)
        return out
