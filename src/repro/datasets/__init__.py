"""Synthetic image-classification datasets (replaces torchvision downloads).

This environment has no network access, so MNIST/SVHN/CIFAR cannot be
fetched.  The Table II experiment measures how much accuracy the OISA first
layer loses to ternary activations, low-bit weights and analog noise — a
*relative* quantity driven by input statistics (dynamic range, spatial
correlation, class separability), not by the specific natural images.  The
generators here produce deterministic, class-structured images with matched
shapes and tunable difficulty:

* :mod:`repro.datasets.synthetic` — the procedural generator.
* :mod:`repro.datasets.catalog` — presets mirroring the paper's four
  datasets (``mnist_like``, ``svhn_like``, ``cifar10_like``,
  ``cifar100_like``).
"""

from repro.datasets.catalog import (
    DATASET_PRESETS,
    Dataset,
    cifar10_like,
    cifar100_like,
    load_preset,
    mnist_like,
    svhn_like,
)
from repro.datasets.synthetic import SyntheticSpec, generate_dataset

__all__ = [
    "DATASET_PRESETS",
    "Dataset",
    "SyntheticSpec",
    "cifar10_like",
    "cifar100_like",
    "generate_dataset",
    "load_preset",
    "mnist_like",
    "svhn_like",
]
