"""Dataset presets mirroring the paper's four evaluation datasets.

Difficulty knobs are tuned so the *ordering* of the paper's Table II holds:
MNIST-like is nearly saturated, SVHN-like and CIFAR-10-like sit in the
90s/80s, and CIFAR-100-like (100 fine classes over 20 superclasses) is the
hardest.  Sizes default to laptop-scale; pass ``scale`` to grow them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Dataset:
    """A realised dataset plus the metadata the harness needs."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    image_size: int
    channels: int
    paper_model: str

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """(C, H, W) of one sample."""
        return (self.channels, self.image_size, self.image_size)


def _realise(spec: SyntheticSpec, paper_model: str) -> Dataset:
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    return Dataset(
        name=spec.name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=spec.num_classes,
        image_size=spec.image_size,
        channels=spec.channels,
        paper_model=paper_model,
    )


def mnist_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """28x28 grayscale, 10 well-separated classes (paper: MNIST on LeNet)."""
    check_positive("scale", scale)
    spec = SyntheticSpec(
        name="mnist-like",
        num_classes=10,
        image_size=28,
        channels=1,
        train_size=int(2000 * scale),
        test_size=int(600 * scale),
        noise_sigma=0.05,
        jitter_px=2,
        clutter=0.05,
        smoothness=2.5,
        seed=seed,
    )
    return _realise(spec, paper_model="LeNet")


def svhn_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """32x32 RGB, 10 classes with moderate clutter (paper: SVHN on ResNet18)."""
    check_positive("scale", scale)
    spec = SyntheticSpec(
        name="svhn-like",
        num_classes=10,
        image_size=32,
        channels=3,
        train_size=int(2000 * scale),
        test_size=int(600 * scale),
        noise_sigma=0.08,
        jitter_px=2,
        clutter=0.14,
        smoothness=3.0,
        seed=seed,
    )
    return _realise(spec, paper_model="ResNet18")


def cifar10_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """32x32 RGB, 10 textured classes (paper: CIFAR-10 on ResNet18)."""
    check_positive("scale", scale)
    spec = SyntheticSpec(
        name="cifar10-like",
        num_classes=10,
        image_size=32,
        channels=3,
        train_size=int(2000 * scale),
        test_size=int(600 * scale),
        noise_sigma=0.10,
        jitter_px=2,
        clutter=0.22,
        smoothness=3.5,
        seed=seed,
    )
    return _realise(spec, paper_model="ResNet18")


def cifar100_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """32x32 RGB, 100 fine classes over 20 superclasses (paper: CIFAR-100 on VGG16)."""
    check_positive("scale", scale)
    spec = SyntheticSpec(
        name="cifar100-like",
        num_classes=100,
        image_size=32,
        channels=3,
        train_size=int(4000 * scale),
        test_size=int(1000 * scale),
        noise_sigma=0.06,
        jitter_px=1,
        clutter=0.08,
        smoothness=3.0,
        num_superclasses=20,
        superclass_spread=0.6,
        seed=seed,
    )
    return _realise(spec, paper_model="VGG16")


#: Registry keyed by the paper's dataset names.
DATASET_PRESETS = {
    "mnist": mnist_like,
    "svhn": svhn_like,
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
}


def load_preset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Load a preset by paper dataset name (``mnist``/``svhn``/``cifar10``/``cifar100``)."""
    key = name.lower()
    if key not in DATASET_PRESETS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_PRESETS)}"
        )
    return DATASET_PRESETS[key](scale=scale, seed=seed)
