"""Latency/power simulation of first-layer workloads on every platform.

``InHouseSimulator`` reproduces the role of the paper's custom simulator:
given an array configuration and a workload it computes cycle counts,
latency, per-component energy and the headline efficiency numbers, for OISA
itself and for the three rebuilt baselines.
"""

from __future__ import annotations

from repro.baselines.appcip import AppCipAccelerator
from repro.baselines.asic import AsicAccelerator
from repro.baselines.crosslight import CrosslightAccelerator
from repro.core.config import OISAConfig
from repro.core.controller import TimingController
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import ConvWorkload, MlpWorkload, plan_convolution, plan_mlp
from repro.sim.reports import SimulationReport


class InHouseSimulator:
    """Simulate network execution on OISA and the comparison platforms."""

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()
        self.energy_model = OISAEnergyModel(self.config)
        self.controller = TimingController(self.config)
        self.crosslight = CrosslightAccelerator()
        self.appcip = AppCipAccelerator()
        self.asic = AsicAccelerator()

    # ------------------------------------------------------------------
    # OISA
    # ------------------------------------------------------------------
    def simulate_oisa_conv(
        self,
        workload: ConvWorkload,
        weight_bits: int | None = None,
        include_mapping: bool = False,
        frame_rate_hz: float | None = None,
    ) -> SimulationReport:
        """Simulate a convolutional first layer on OISA."""
        bits = weight_bits if weight_bits is not None else self.config.weight_bits
        config = self.config.with_weight_bits(bits)
        model = OISAEnergyModel(config)
        plan = plan_convolution(config, workload)
        rate = frame_rate_hz if frame_rate_hz is not None else config.frame_rate_hz
        energy = model.frame_energy_j(plan, include_mapping=include_mapping)
        return SimulationReport(
            platform="OISA",
            workload=self._workload_tag(workload),
            weight_bits=bits,
            compute_cycles=plan.compute_cycles,
            compute_time_s=model.compute_time_s(plan),
            frame_energy_j=energy.total,
            average_power_w=energy.total * rate,
            breakdown=energy.scaled(rate),
            peak_throughput_tops=model.peak_throughput_ops() / 1e12,
            efficiency_tops_per_watt=model.efficiency_tops_per_watt(
                workload.kernel_size
            ),
            frame_rate_fps=rate,
        )

    def simulate_oisa_mlp(
        self, workload: MlpWorkload, weight_bits: int | None = None
    ) -> SimulationReport:
        """Simulate a dense first layer on OISA (VOM-split partial sums)."""
        bits = weight_bits if weight_bits is not None else self.config.weight_bits
        config = self.config.with_weight_bits(bits)
        plan = plan_mlp(config, workload)
        model = OISAEnergyModel(config)
        compute_s = plan.compute_cycles * config.mac_cycle_s
        peak = model.peak_power_w(kernel_size=3)
        vom_energy = plan.vom_combines * OISAEnergyModel.VOM_ENERGY_PER_COMBINE_J
        energy = peak.total * compute_s + vom_energy
        rate = config.frame_rate_hz
        return SimulationReport(
            platform="OISA",
            workload=f"mlp-{workload.input_features}x{workload.output_features}",
            weight_bits=bits,
            compute_cycles=plan.compute_cycles,
            compute_time_s=compute_s,
            frame_energy_j=energy,
            average_power_w=energy * rate,
            peak_throughput_tops=model.peak_throughput_ops() / 1e12,
            efficiency_tops_per_watt=model.efficiency_tops_per_watt(3),
            frame_rate_fps=rate,
        )

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def simulate_baseline(
        self,
        platform: str,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
        frame_rate_hz: float = 1000.0,
    ) -> SimulationReport:
        """Simulate a baseline platform (``crosslight``/``appcip``/``asic``)."""
        key = platform.lower()
        if key == "crosslight":
            backend = self.crosslight
            cycles = backend.compute_cycles(workload)
            compute_s = cycles * self.config.mac_cycle_s
            tops = backend.peak_throughput_ops() / 1e12
        elif key == "appcip":
            backend = self.appcip
            cycles = workload.windows_per_channel
            compute_s = min(1.0 / backend.frame_rate_limit_hz(workload), 1.0)
            tops = 0.0
        elif key == "asic":
            backend = self.asic
            macs = workload.total_macs
            peak = backend.peak_throughput_macs()
            cycles = macs
            compute_s = macs / peak
            tops = 2.0 * peak / 1e12
        else:
            raise ValueError(f"unknown platform {platform!r}")

        breakdown = backend.average_power_w(
            workload,
            weight_bits=weight_bits,
            activation_bits=activation_bits,
            frame_rate_hz=frame_rate_hz,
        )
        power = breakdown.total
        return SimulationReport(
            platform=backend.name,
            workload=self._workload_tag(workload),
            weight_bits=weight_bits,
            compute_cycles=int(cycles),
            compute_time_s=compute_s,
            frame_energy_j=power / frame_rate_hz,
            average_power_w=power,
            breakdown=breakdown,
            peak_throughput_tops=tops,
            efficiency_tops_per_watt=(
                tops / power if power > 0 and tops > 0 else 0.0
            ),
            frame_rate_fps=frame_rate_hz,
        )

    def compare_all(
        self,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
    ) -> list[SimulationReport]:
        """OISA plus every baseline on the same workload/bit config."""
        reports = [self.simulate_oisa_conv(workload, weight_bits)]
        for platform in ("crosslight", "appcip", "asic"):
            reports.append(
                self.simulate_baseline(
                    platform, workload, weight_bits, activation_bits
                )
            )
        return reports

    @staticmethod
    def _workload_tag(workload: ConvWorkload) -> str:
        return (
            f"conv{workload.kernel_size}x{workload.kernel_size}-"
            f"{workload.num_kernels}k-{workload.in_channels}c-"
            f"{workload.image_height}x{workload.image_width}"
        )
