"""Latency/power simulation of first-layer workloads on every platform.

``InHouseSimulator`` reproduces the role of the paper's custom simulator:
given an array configuration and a workload it computes cycle counts,
latency, per-component energy and the headline efficiency numbers, for OISA
itself and for the three rebuilt baselines.

Since the platform-registry refactor the simulator is a thin facade over
:mod:`repro.sim.platforms`: each platform is an adapter registered under a
stable key, and the simulator just routes calls.  Use the registry directly
(:func:`~repro.sim.platforms.iter_platforms`) for new code; the facade keeps
the historical one-method-per-platform API alive.
"""

from __future__ import annotations

from repro.core.config import OISAConfig
from repro.core.controller import TimingController
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import ConvWorkload, MlpWorkload
from repro.sim.platforms import (
    Platform,
    conv_workload_tag,
    get_platform,
    platform_registry,
)
from repro.sim.reports import SimulationReport


class InHouseSimulator:
    """Simulate network execution on OISA and the comparison platforms."""

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()
        self.energy_model = OISAEnergyModel(self.config)
        self.controller = TimingController(self.config)
        self.platforms: dict[str, Platform] = {
            key: get_platform(key, self.config) for key in platform_registry()
        }
        # Backend accelerators, kept as attributes for API compatibility.
        self.crosslight = self.platforms["crosslight"].backend
        self.appcip = self.platforms["appcip"].backend
        self.asic = self.platforms["asic"].backend

    # ------------------------------------------------------------------
    # OISA
    # ------------------------------------------------------------------
    def simulate_oisa_conv(
        self,
        workload: ConvWorkload,
        weight_bits: int | None = None,
        include_mapping: bool = False,
        frame_rate_hz: float | None = None,
    ) -> SimulationReport:
        """Simulate a convolutional first layer on OISA."""
        return self.platforms["oisa"].simulate_conv(
            workload,
            weight_bits=weight_bits,
            frame_rate_hz=frame_rate_hz,
            include_mapping=include_mapping,
        )

    def simulate_oisa_mlp(
        self, workload: MlpWorkload, weight_bits: int | None = None
    ) -> SimulationReport:
        """Simulate a dense first layer on OISA (VOM-split partial sums)."""
        return self.platforms["oisa"].simulate_mlp(workload, weight_bits)

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def simulate_baseline(
        self,
        platform: str,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
        frame_rate_hz: float = 1000.0,
    ) -> SimulationReport:
        """Simulate a baseline platform (``crosslight``/``appcip``/``asic``)."""
        key = platform.lower()
        adapter = self.platforms.get(key)
        if adapter is None or key == "oisa":
            raise ValueError(f"unknown platform {platform!r}")
        return adapter.simulate_conv(
            workload,
            weight_bits=weight_bits,
            activation_bits=activation_bits,
            frame_rate_hz=frame_rate_hz,
        )

    def compare_all(
        self,
        workload: ConvWorkload,
        weight_bits: int = 4,
        activation_bits: int = 2,
    ) -> list[SimulationReport]:
        """Every registered platform on the same workload/bit config."""
        return [
            adapter.simulate_conv(
                workload,
                weight_bits=weight_bits,
                activation_bits=activation_bits,
            )
            for adapter in self.platforms.values()
            if adapter.supports_conv
        ]

    @staticmethod
    def _workload_tag(workload: ConvWorkload) -> str:
        return conv_workload_tag(workload)
