"""Fault injection for the optical core.

Photonic arrays fail in characteristic ways; this module models the four
the OISA structure exposes and measures their accuracy impact through the
hardware-in-the-loop pipeline:

* **dead MR** — a ring stuck far off resonance: both rails of the
  differential pair pass equally, so the programmed weight collapses to 0;
* **stuck AWC branch** — one ladder bit permanently forced on/off for
  every code a unit programs (a systematic gain error on its weights);
* **dead VCSEL** — an activation wavelength permanently dark: that input
  channel contributes nothing;
* **BPD gain drift** — a multiplicative gain error on an arm's readout.

All fault patterns are frozen per seed (they are manufacturing/aging
defects, not per-read noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.opc import OpticalProcessingCore
from repro.util.rng import derive_rng
from repro.util.validation import check_probability


@dataclass(frozen=True)
class FaultSpec:
    """Rates of each fault class (fractions of affected devices)."""

    dead_mr_rate: float = 0.0
    stuck_awc_branch_rate: float = 0.0
    dead_vcsel_rate: float = 0.0
    bpd_gain_sigma: float = 0.0

    def __post_init__(self) -> None:
        check_probability("dead_mr_rate", self.dead_mr_rate)
        check_probability("stuck_awc_branch_rate", self.stuck_awc_branch_rate)
        check_probability("dead_vcsel_rate", self.dead_vcsel_rate)
        if self.bpd_gain_sigma < 0:
            raise ValueError(
                f"bpd_gain_sigma must be non-negative, got {self.bpd_gain_sigma}"
            )

    @property
    def any_faults(self) -> bool:
        """Whether any fault class is active."""
        return (
            self.dead_mr_rate > 0
            or self.stuck_awc_branch_rate > 0
            or self.dead_vcsel_rate > 0
            or self.bpd_gain_sigma > 0
        )


class FaultyOpticalCore:
    """Wrap an OPC with frozen manufacturing faults.

    Drop-in replacement for :class:`~repro.core.opc.OpticalProcessingCore`
    in the :class:`~repro.core.pipeline.HardwareFirstLayerPipeline`.
    """

    def __init__(
        self,
        opc: OpticalProcessingCore,
        spec: FaultSpec,
        seed: int | None = None,
    ) -> None:
        self.opc = opc
        self.spec = spec
        self._rng = derive_rng(seed, "fault-injection")
        self._weight_mask: np.ndarray | None = None
        self._channel_mask: np.ndarray | None = None
        self._output_gain: np.ndarray | None = None

    @classmethod
    def from_programmed(
        cls,
        opc: OpticalProcessingCore,
        spec: FaultSpec,
        seed: int | None = None,
    ) -> "FaultyOpticalCore":
        """Wrap an *already-programmed* core without re-running the mapping.

        The serving-health path (:mod:`repro.engine.health`) injects upsets
        mid-stream: the die's weights are already mapped (often restored
        from the program cache), so only the fault patterns need drawing.
        """
        faulty = cls(opc, spec, seed=seed)
        faulty.freeze(opc.programmed.realized.shape)
        return faulty

    # -- delegation ------------------------------------------------------
    @property
    def config(self):
        """The wrapped core's configuration."""
        return self.opc.config

    @property
    def programmed(self):
        """The wrapped core's programming record."""
        return self.opc.programmed

    def program(self, quantized_weights: np.ndarray, scale: float):
        """Program the wrapped core, then freeze the fault patterns."""
        programmed = self.opc.program(quantized_weights, scale)
        self.freeze(programmed.realized.shape)
        return programmed

    def freeze(self, shape: tuple[int, ...]) -> None:
        """Draw and freeze the fault patterns for a weight tensor shape.

        Conv tensors (F, C, K, K) get a per-weight mask, a per-input-channel
        VCSEL mask and a per-kernel BPD gain; dense tensors (out, in) get the
        same three patterns over (out, in), in features and out features.
        The draw order is fixed (weights, channels, gains) so patterns stay
        frozen per seed regardless of how the wrapper was constructed.
        """
        self._weight_mask = self._draw_weight_mask(shape)
        if shape and len(shape) in (2, 4):
            self._channel_mask = self._draw_channel_mask(shape[1])
            self._output_gain = self._draw_output_gain(shape[0])

    # -- fault pattern construction ---------------------------------------
    def _draw_weight_mask(self, shape: tuple[int, ...]) -> np.ndarray:
        mask = np.ones(shape)
        if self.spec.dead_mr_rate > 0:
            dead = self._rng.random(shape) < self.spec.dead_mr_rate
            mask[dead] = 0.0
        if self.spec.stuck_awc_branch_rate > 0:
            # A stuck branch in unit u perturbs every weight that unit
            # programs; approximate by a +/-25% gain error on a random
            # fraction of weights matching the unit share.
            affected = self._rng.random(shape) < self.spec.stuck_awc_branch_rate
            sign = self._rng.choice([-1.0, 1.0], size=shape)
            mask = np.where(affected, mask * (1.0 + 0.25 * sign), mask)
        return mask

    def _draw_channel_mask(self, channels: int) -> np.ndarray:
        mask = np.ones(channels)
        if self.spec.dead_vcsel_rate > 0:
            dead = self._rng.random(channels) < self.spec.dead_vcsel_rate
            mask[dead] = 0.0
        return mask

    def _draw_output_gain(self, out_channels: int) -> np.ndarray:
        if self.spec.bpd_gain_sigma > 0:
            return 1.0 + self._rng.normal(
                0.0, self.spec.bpd_gain_sigma, size=out_channels
            )
        return np.ones(out_channels)

    # -- compute -----------------------------------------------------------
    def convolve(
        self, activations: np.ndarray, stride: int = 1, padding: int = 0
    ) -> np.ndarray:
        """Faulty convolution: masks weights/inputs, drifts BPD gains."""
        if self._weight_mask is None:
            raise RuntimeError("program() must run before convolve()")
        activations = np.asarray(activations, dtype=float)
        if self._channel_mask is not None:
            activations = activations * self._channel_mask[None, :, None, None]

        # Convolve with the masked weights through the same noisy readout
        # path the healthy core uses.
        from repro.nn.functional import conv2d_forward

        masked = self.opc.programmed.realized * self._weight_mask
        out, _ = conv2d_forward(activations, masked, None, stride, padding)
        out = self.opc._add_read_noise(out, masked)
        if self._output_gain is not None:
            out = out * self._output_gain[None, :, None, None]
        return out

    def dot(self, activations: np.ndarray) -> np.ndarray:
        """Faulty dense product (the MLP / VOM-split first-layer mode)."""
        if self._weight_mask is None:
            raise RuntimeError("program() must run before dot()")
        activations = np.asarray(activations, dtype=float)
        if self._channel_mask is not None:
            activations = activations * self._channel_mask[None, :]
        masked = self.opc.programmed.realized * self._weight_mask
        out = activations @ masked.T
        out = self.opc._add_read_noise(out, masked)
        if self._output_gain is not None:
            out = out * self._output_gain[None, :]
        return out

    @property
    def weight_error_relative(self) -> float:
        """RMS error the faults add to the realized weights, full-scale units.

        The SNR watchdog (:mod:`repro.engine.health`) converts this into an
        equivalent resolvable bit count and compares it against the
        architecture's weight precision.
        """
        if self._weight_mask is None:
            raise RuntimeError("program() must run before weight_error_relative")
        realized = self.opc.programmed.realized
        full_scale = float(np.max(np.abs(realized)))
        if full_scale == 0.0:
            return 0.0
        faulted = realized * self._weight_mask
        if self._channel_mask is not None:
            # A dark input wavelength is equivalent (for the MAC) to
            # zeroing every weight on that input channel — axis 1 of a
            # conv tensor, the in-features axis of a dense tensor.
            faulted = faulted * self._channel_mask.reshape(
                (1, -1) + (1,) * (faulted.ndim - 2)
            )
        if self._output_gain is not None:
            gain = self._output_gain.reshape(
                (-1,) + (1,) * (faulted.ndim - 1)
            )
            faulted = faulted * gain
        error = float(np.sqrt(np.mean((faulted - realized) ** 2)))
        return error / full_scale


def accuracy_under_faults(
    model,
    dataset,
    weight_bits: int,
    specs: list[FaultSpec],
    oisa_seed: int = 7,
    fault_seed: int = 11,
) -> list[tuple[FaultSpec, float]]:
    """Evaluate a trained QAT model under a sweep of fault specs."""
    from repro.core.config import OISAConfig
    from repro.core.pipeline import HardwareFirstLayerPipeline

    results = []
    for spec in specs:
        opc = OpticalProcessingCore(
            OISAConfig().with_weight_bits(weight_bits), seed=oisa_seed
        )
        faulty = FaultyOpticalCore(opc, spec, seed=fault_seed)
        pipeline = HardwareFirstLayerPipeline(model, faulty)
        accuracy = pipeline.evaluate(dataset.x_test, dataset.y_test)
        results.append((spec, accuracy))
    return results
