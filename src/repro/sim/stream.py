"""Sustained video-stream simulation on one OISA node.

The paper quotes steady-state numbers (1000 FPS, per-frame energy with the
mapping amortised away).  This module simulates an actual frame stream —
including kernel swaps mid-stream, frames arriving faster than the budget,
and the resulting drop/latency statistics — which is what a deployment
study needs beyond single-frame arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from repro.core.config import OISAConfig
from repro.core.controller import TimingController
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import ConvWorkload, plan_convolution
from repro.util.validation import check_positive


def nearest_rank_percentile(values: list[float], fraction: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation).

    ``fraction`` in (0, 1]; returns ``sorted(values)[ceil(fraction*n)-1]``.
    Pure-Python on purpose: the SLO accounting built on this must be
    bit-reproducible across NumPy versions.  NaN for an empty list.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(math.ceil(fraction * len(ordered)), 1)
    return ordered[rank - 1]


@dataclass(frozen=True)
class StreamEvent:
    """One frame's fate in the stream."""

    index: int
    arrival_s: float
    start_s: float
    finish_s: float
    dropped: bool
    remapped: bool

    @property
    def latency_s(self) -> float:
        """Capture-to-features latency (NaN when dropped)."""
        return float("nan") if self.dropped else self.finish_s - self.arrival_s


@dataclass
class StreamReport:
    """Aggregate statistics of a simulated stream."""

    events: list[StreamEvent] = field(default_factory=list)
    total_energy_j: float = 0.0

    @property
    def frames(self) -> int:
        """Frames offered to the node."""
        return len(self.events)

    @property
    def dropped(self) -> int:
        """Frames dropped because the pipe was busy."""
        return sum(event.dropped for event in self.events)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered frames dropped."""
        return self.dropped / self.frames if self.frames else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean capture-to-features latency over delivered frames."""
        latencies = [e.latency_s for e in self.events if not e.dropped]
        return sum(latencies) / len(latencies) if latencies else float("nan")

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile over delivered frames [s]."""
        latencies = [e.latency_s for e in self.events if not e.dropped]
        return nearest_rank_percentile(latencies, fraction)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile capture-to-features latency [s]."""
        return self.latency_percentile(0.99)

    def deadline_hit_rate(self, deadline_s: float) -> float:
        """Fraction of *offered* frames delivered within ``deadline_s``.

        Drops count as misses — the quantity an SLO attainment report
        cares about (see :mod:`repro.engine.admission` for the per-class
        version).
        """
        check_positive("deadline_s", deadline_s)
        if not self.events:
            return 0.0
        hits = sum(
            1
            for e in self.events
            if not e.dropped and e.latency_s <= deadline_s + 1e-12
        )
        return hits / len(self.events)

    @property
    def sustained_fps(self) -> float:
        """Delivered frames per second of simulated time."""
        if not self.events:
            return 0.0
        span = self.events[-1].finish_s - self.events[0].arrival_s
        delivered = self.frames - self.dropped
        return delivered / span if span > 0 else 0.0

    @property
    def average_power_w(self) -> float:
        """Energy over the simulated span."""
        if not self.events:
            return 0.0
        span = self.events[-1].finish_s - self.events[0].arrival_s
        return self.total_energy_j / span if span > 0 else 0.0


class StreamSimulator:
    """Event-driven single-node stream simulation.

    Frames arrive at ``offered_fps``; each occupies the pipeline for the
    plan's exposure-overlapped service time.  A frame arriving while the
    pipe is busy is dropped (global shutter sensors cannot queue light).
    Every ``remap_every`` frames the controller reloads a new kernel set
    and pays the mapping phase (``remap_every = 0`` disables swaps).
    """

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()
        self.controller = TimingController(self.config)
        self.energy_model = OISAEnergyModel(self.config)

    def run(
        self,
        workload: ConvWorkload,
        num_frames: int,
        offered_fps: float,
        remap_every: int = 0,
        tuning_latency_s: float = 4e-6,
    ) -> StreamReport:
        """Simulate ``num_frames`` arrivals at ``offered_fps``."""
        check_positive("num_frames", num_frames)
        check_positive("offered_fps", offered_fps)
        if remap_every < 0:
            raise ValueError(f"remap_every must be >= 0, got {remap_every}")

        plan = plan_convolution(self.config, workload)
        steady = self.controller.frame_timing(plan)
        remap = self.controller.frame_timing(
            plan, remap_weights=True, tuning_latency_s=tuning_latency_s
        )
        steady_energy = self.energy_model.frame_energy_j(plan).total
        remap_energy = self.energy_model.frame_energy_j(
            plan, include_mapping=True
        ).total

        interval = 1.0 / offered_fps
        report = StreamReport()
        pipe_free_at = 0.0
        for index in range(num_frames):
            arrival = index * interval
            remapped = remap_every > 0 and index % remap_every == 0
            timing = remap if remapped else steady
            if arrival < pipe_free_at - 1e-12:  # tolerance for FP accumulation
                report.events.append(
                    StreamEvent(index, arrival, arrival, arrival, True, remapped)
                )
                continue
            service = timing.pipelined_s
            start = arrival
            finish = start + timing.sequential_s
            pipe_free_at = start + service
            report.events.append(
                StreamEvent(index, arrival, start, finish, False, remapped)
            )
            report.total_energy_j += remap_energy if remapped else steady_energy
        return report

    def max_sustainable_fps(self, workload: ConvWorkload) -> float:
        """Highest drop-free offered rate for a steady kernel set."""
        plan = plan_convolution(self.config, workload)
        timing = self.controller.frame_timing(plan)
        return 1.0 / timing.pipelined_s
