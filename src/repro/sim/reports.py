"""Typed simulation records and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.energy import PowerBreakdown
from repro.util.tables import format_table


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of simulating one workload on one platform."""

    platform: str
    workload: str
    weight_bits: int
    compute_cycles: int
    compute_time_s: float
    frame_energy_j: float
    average_power_w: float
    breakdown: PowerBreakdown = field(default_factory=PowerBreakdown)
    peak_throughput_tops: float = 0.0
    efficiency_tops_per_watt: float = 0.0
    frame_rate_fps: float = 0.0

    @property
    def energy_per_frame_uj(self) -> float:
        """Frame energy in microjoules."""
        return self.frame_energy_j * 1e6


def render_report(reports: list[SimulationReport], title: str = "") -> str:
    """Render a list of reports as an aligned comparison table."""
    headers = (
        "platform",
        "bits",
        "cycles",
        "compute [us]",
        "energy [uJ]",
        "avg power [mW]",
        "TOp/s",
        "TOp/s/W",
    )
    rows = [
        (
            report.platform,
            report.weight_bits,
            report.compute_cycles,
            report.compute_time_s * 1e6,
            report.energy_per_frame_uj,
            report.average_power_w * 1e3,
            report.peak_throughput_tops,
            report.efficiency_tops_per_watt,
        )
        for report in reports
    ]
    return format_table(headers, rows, title=title or None)
