"""End-to-end accuracy simulation — the Fig. 7 evaluation loop.

For each (dataset, [W:A] configuration):

1. train the paper's network for that dataset with QAT (ternary input
   activation + ``W``-bit first-layer weights, straight-through
   estimators) on the NumPy substrate;
2. map the trained first-layer weights onto a behavioral OPC (AWC
   mismatch, MR crosstalk) and run inference with BPD read noise — the
   "1st layer" box of Fig. 7;
3. run the remaining layers as the behavioral float model ("2nd to last
   layer") and report test accuracy.

Results are cached on disk keyed by every knob, so benchmark reruns are
cheap.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.datasets.catalog import Dataset, load_preset
from repro.nn.layers import Sequential
from repro.nn.models import (
    FirstLayerConfig,
    build_lenet,
    build_resnet18,
    build_vgg16,
)
from repro.nn.optim import SGD, CosineLR
from repro.nn.train import Trainer


@dataclass(frozen=True)
class AccuracyResult:
    """Accuracy of one (dataset, configuration) cell of Table II."""

    dataset: str
    config_label: str
    weight_bits: int | None
    software_accuracy: float
    hardware_accuracy: float | None
    weight_relative_error: float | None
    epochs: int
    seed: int

    @property
    def reported_accuracy(self) -> float:
        """The Table II cell: hardware when applicable, else software."""
        if self.hardware_accuracy is not None:
            return self.hardware_accuracy
        return self.software_accuracy


@dataclass(frozen=True)
class Table2Settings:
    """Scale knobs for the Table II run.

    The paper trains full-width networks on GPUs; ``fast`` shrinks widths
    and epochs so the whole table regenerates in minutes on a CPU while
    preserving every qualitative trend (the quantization/noise behaviour
    under study does not depend on network width).
    """

    dataset_scale: float = 0.5
    epochs: int = 2
    #: The 100-class VGG cells need a longer schedule to leave the noise
    #: floor; this overrides ``epochs`` for VGG16 datasets.
    vgg_epochs: int = 6
    lenet_width: float = 1.0
    resnet_width: float = 0.125
    vgg_width: float = 0.125
    batch_size: int = 32
    learning_rate: float = 0.05
    seed: int = 0
    oisa_seed: int = 7

    @classmethod
    def fast(cls) -> "Table2Settings":
        """Benchmark-friendly preset (~minutes for the full table)."""
        return cls()

    @classmethod
    def full(cls) -> "Table2Settings":
        """Higher-fidelity preset for the examples (tens of minutes)."""
        return cls(
            dataset_scale=1.0,
            epochs=4,
            vgg_epochs=8,
            resnet_width=0.25,
            vgg_width=0.25,
        )


#: The [W:A] configurations of Table II, in print order.
TABLE2_CONFIGS: tuple[FirstLayerConfig, ...] = (
    FirstLayerConfig(weight_bits=None, ternary_input=False),  # baseline
    FirstLayerConfig(weight_bits=4),
    FirstLayerConfig(weight_bits=3),
    FirstLayerConfig(weight_bits=2),
    FirstLayerConfig(weight_bits=1),
)

#: Datasets of Table II in print order.
TABLE2_DATASETS = ("mnist", "svhn", "cifar10", "cifar100")

#: Accuracy rows the paper reports for prior accelerators (literature
#: values, not re-simulated): {row: {dataset: accuracy%}}.
PAPER_ACCURACY_ROWS = {
    "paper-baseline": {"mnist": 99.6, "svhn": 97.5, "cifar10": 91.37, "cifar100": 78.4},
    "FBNA": {"svhn": 96.9, "cifar10": 88.61, "cifar100": 71.5},
    "AppCiP": {"svhn": 96.4, "cifar10": 89.51},
    "PISA": {"mnist": 95.12, "svhn": 90.35, "cifar10": 79.80, "cifar100": 61.6},
    "OISA[4:2]": {"mnist": 95.21, "svhn": 91.74, "cifar10": 81.23, "cifar100": 61.38},
    "OISA[3:2]": {"mnist": 96.18, "svhn": 94.36, "cifar10": 84.45, "cifar100": 66.89},
    "OISA[2:2]": {"mnist": 96.25, "svhn": 93.20, "cifar10": 83.85, "cifar100": 66.94},
    "OISA[1:2]": {"mnist": 95.75, "svhn": 93.16, "cifar10": 83.64, "cifar100": 66.06},
}


def _build_model(
    dataset: Dataset, config: FirstLayerConfig, settings: Table2Settings
) -> Sequential:
    if dataset.paper_model == "LeNet":
        return build_lenet(
            num_classes=dataset.num_classes,
            in_channels=dataset.channels,
            input_size=dataset.image_size,
            width_multiplier=settings.lenet_width,
            first_layer=config,
            seed=settings.seed,
        )
    if dataset.paper_model == "ResNet18":
        return build_resnet18(
            num_classes=dataset.num_classes,
            in_channels=dataset.channels,
            width_multiplier=settings.resnet_width,
            first_layer=config,
            seed=settings.seed,
        )
    if dataset.paper_model == "VGG16":
        return build_vgg16(
            num_classes=dataset.num_classes,
            in_channels=dataset.channels,
            width_multiplier=settings.vgg_width,
            first_layer=config,
            seed=settings.seed,
        )
    raise ValueError(f"unknown paper model {dataset.paper_model!r}")


def train_qat_model(
    dataset: Dataset, config: FirstLayerConfig, settings: Table2Settings
) -> tuple[Sequential, float]:
    """Train one model; returns (model, software test accuracy)."""
    model = _build_model(dataset, config, settings)
    optimizer = SGD(model.parameters(), momentum=0.9, weight_decay=1e-4)
    schedule = CosineLR(settings.learning_rate, settings.learning_rate * 1e-2)
    trainer = Trainer(model, optimizer, schedule, seed=settings.seed)
    epochs = (
        settings.vgg_epochs if dataset.paper_model == "VGG16" else settings.epochs
    )
    trainer.fit(
        dataset.x_train,
        dataset.y_train,
        epochs=epochs,
        batch_size=settings.batch_size,
    )
    return model, trainer.evaluate(dataset.x_test, dataset.y_test)


def evaluate_hardware_accuracy(
    model: Sequential,
    dataset: Dataset,
    weight_bits: int,
    oisa_seed: int,
) -> tuple[float, float]:
    """Run the model's first layer on the behavioral OPC.

    Returns (hardware accuracy, relative realized-weight error).
    """
    config = OISAConfig().with_weight_bits(weight_bits)
    opc = OpticalProcessingCore(config, seed=oisa_seed)
    pipeline = HardwareFirstLayerPipeline(model, opc)
    accuracy = pipeline.evaluate(dataset.x_test, dataset.y_test)
    return accuracy, pipeline.weight_error_report()["relative_error"]


def run_cell(
    dataset: Dataset, config: FirstLayerConfig, settings: Table2Settings
) -> AccuracyResult:
    """One (dataset, configuration) cell: train + hardware evaluation."""
    model, software_accuracy = train_qat_model(dataset, config, settings)
    hardware_accuracy = None
    weight_error = None
    if config.weight_bits is not None:
        hardware_accuracy, weight_error = evaluate_hardware_accuracy(
            model, dataset, config.weight_bits, settings.oisa_seed
        )
    return AccuracyResult(
        dataset=dataset.name,
        config_label=config.label,
        weight_bits=config.weight_bits,
        software_accuracy=software_accuracy,
        hardware_accuracy=hardware_accuracy,
        weight_relative_error=weight_error,
        epochs=settings.epochs,
        seed=settings.seed,
    )


def _cache_key(dataset_name: str, config: FirstLayerConfig, settings: Table2Settings) -> str:
    payload = {
        "dataset": dataset_name,
        "config": config.label,
        "settings": asdict(settings),
    }
    return json.dumps(payload, sort_keys=True)


def _load_cache(path: str) -> dict:
    if path and os.path.exists(path):
        with open(path) as handle:
            return json.load(handle)
    return {}


def _store_cache(path: str, cache: dict) -> None:
    if path:
        with open(path, "w") as handle:
            json.dump(cache, handle, indent=1)


def run_table2(
    settings: Table2Settings | None = None,
    datasets: tuple[str, ...] = TABLE2_DATASETS,
    configs: tuple[FirstLayerConfig, ...] = TABLE2_CONFIGS,
    cache_path: str | None = None,
) -> list[AccuracyResult]:
    """Regenerate Table II: every dataset x configuration cell.

    ``cache_path`` (a JSON file) makes repeated benchmark runs incremental.
    """
    settings = settings or Table2Settings.fast()
    cache = _load_cache(cache_path) if cache_path else {}
    results: list[AccuracyResult] = []
    for dataset_name in datasets:
        dataset = load_preset(
            dataset_name, scale=settings.dataset_scale, seed=settings.seed
        )
        for config in configs:
            key = _cache_key(dataset_name, config, settings)
            if key in cache:
                results.append(AccuracyResult(**cache[key]))
                continue
            result = run_cell(dataset, config, settings)
            results.append(result)
            cache[key] = asdict(result)
            # Flush after every cell: training runs are minutes-long and
            # an interrupted sweep should resume where it stopped.
            if cache_path:
                _store_cache(cache_path, cache)
    return results
