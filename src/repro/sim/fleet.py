"""Fleet-level model of the paper's Fig. 2 multi-node IoT deployment.

Library counterpart of ``examples/multi_node_iot.py``: N OISA nodes stream
first-layer features to a cloud aggregator, compared against conventional
nodes shipping raw digitised frames.  Captures the paper's thing-centric
argument quantitatively: per-node energy, bytes on the wire, and the fleet
aggregate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.adc_dac import AdcModel
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import ConvWorkload, plan_convolution
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RadioModel:
    """Edge-radio energy/throughput model (BLE / 802.15.4 class)."""

    energy_per_byte_j: float = 180e-9
    throughput_bps: float = 1e6

    def __post_init__(self) -> None:
        check_positive("energy_per_byte_j", self.energy_per_byte_j)
        check_positive("throughput_bps", self.throughput_bps)

    def transmit_energy_j(self, num_bytes: int) -> float:
        """Radio energy for a payload [J]."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return self.energy_per_byte_j * num_bytes

    def transmit_time_s(self, num_bytes: int) -> float:
        """Airtime for a payload [s]."""
        return 8.0 * num_bytes / self.throughput_bps


@dataclass(frozen=True)
class NodeReport:
    """Per-frame cost of one node under one strategy."""

    strategy: str
    compute_energy_j: float
    payload_bytes: int
    radio_energy_j: float

    @property
    def total_energy_j(self) -> float:
        """Compute + radio energy per frame."""
        return self.compute_energy_j + self.radio_energy_j


@dataclass(frozen=True)
class FleetReport:
    """Aggregate comparison of the two strategies across the fleet."""

    num_nodes: int
    oisa: NodeReport
    cloud_centric: NodeReport

    @property
    def energy_reduction(self) -> float:
        """Cloud-centric energy over OISA energy (per node and fleet)."""
        return self.cloud_centric.total_energy_j / self.oisa.total_energy_j

    @property
    def traffic_reduction(self) -> float:
        """Raw-frame bytes over feature bytes."""
        return self.cloud_centric.payload_bytes / self.oisa.payload_bytes

    def fleet_energy_per_frame_j(self, strategy: str) -> float:
        """Total fleet energy per captured frame under a strategy."""
        report = self.oisa if strategy == "oisa" else self.cloud_centric
        return report.total_energy_j * self.num_nodes


class FleetModel:
    """Compare OISA nodes against cloud-centric nodes (Fig. 2)."""

    #: Bits per transmitted first-layer feature (4-bit magnitude + sign).
    FEATURE_BITS = 5
    #: Spatial pooling applied to features before transmission.
    POOL_FACTOR = 2

    def __init__(
        self,
        config: OISAConfig | None = None,
        radio: RadioModel | None = None,
        sensor_adc: AdcModel | None = None,
    ) -> None:
        self.config = config or OISAConfig()
        self.radio = radio or RadioModel()
        self.sensor_adc = sensor_adc or AdcModel(bits=8)
        self.energy_model = OISAEnergyModel(self.config)

    def oisa_node(self, workload: ConvWorkload) -> NodeReport:
        """OISA strategy: compute first layer in-sensor, ship features."""
        plan = plan_convolution(self.config, workload)
        compute = self.energy_model.frame_energy_j(plan).total
        outputs = (
            workload.num_kernels
            * (workload.output_height // self.POOL_FACTOR)
            * (workload.output_width // self.POOL_FACTOR)
        )
        payload = math.ceil(outputs * self.FEATURE_BITS / 8)
        return NodeReport(
            strategy="oisa",
            compute_energy_j=compute,
            payload_bytes=payload,
            radio_energy_j=self.radio.transmit_energy_j(payload),
        )

    def cloud_centric_node(self, workload: ConvWorkload) -> NodeReport:
        """Conventional strategy: digitise every pixel, ship the frame."""
        pixels = (
            workload.image_height * workload.image_width * workload.in_channels
        )
        compute = self.sensor_adc.energy_per_conversion_j() * pixels
        payload = pixels  # 8-bit pixels
        return NodeReport(
            strategy="cloud-centric",
            compute_energy_j=compute,
            payload_bytes=payload,
            radio_energy_j=self.radio.transmit_energy_j(payload),
        )

    def sustainable_fps(self, workload: ConvWorkload) -> float:
        """Highest drop-free per-node rate for a steady kernel set [FPS].

        The analytic ceiling of one node's exposure-overlapped service
        time — the single-model upper bound the capacity-planning curves
        (:mod:`repro.analysis.capacity`) compare the simulated policies
        against.  Mixed scenarios sit below it (kernel swaps pay remap
        phases), queueing policies approach it from below.  Delegates to
        :meth:`~repro.sim.stream.StreamSimulator.max_sustainable_fps` —
        one definition of the bound, fleet-facing name.
        """
        from repro.sim.stream import StreamSimulator

        return StreamSimulator(self.config).max_sustainable_fps(workload)

    def fleet_capacity_fps(
        self, workload: ConvWorkload, num_nodes: int
    ) -> float:
        """Aggregate drop-free rate of ``num_nodes`` nodes [FPS]."""
        check_positive("num_nodes", num_nodes)
        return num_nodes * self.sustainable_fps(workload)

    def compare(self, workload: ConvWorkload, num_nodes: int) -> FleetReport:
        """Fleet-level comparison of the two strategies."""
        check_positive("num_nodes", num_nodes)
        return FleetReport(
            num_nodes=num_nodes,
            oisa=self.oisa_node(workload),
            cloud_centric=self.cloud_centric_node(workload),
        )
