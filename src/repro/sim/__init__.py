"""The paper's "custom in-house simulator" (Fig. 7, bottom-right box).

* :mod:`repro.sim.simulator` — latency/power/energy simulation of network
  execution on OISA and the baseline platforms, with configurable array
  geometry and peripheral selection.
* :mod:`repro.sim.accuracy` — the full Fig. 7 loop: quantization-aware
  training (NumPy substrate), first layer through the behavioral hardware,
  remaining layers as the behavioral DNN model, inference accuracy out.
* :mod:`repro.sim.platforms` — the platform registry: one adapter per
  evaluated platform (OISA + rebuilt baselines) behind a uniform
  ``simulate_conv``/``simulate_mlp`` interface.
* :mod:`repro.sim.reports` — typed result records and text rendering.
"""

from repro.sim.accuracy import (
    AccuracyResult,
    Table2Settings,
    evaluate_hardware_accuracy,
    run_table2,
    train_qat_model,
)
from repro.sim.faults import FaultSpec, FaultyOpticalCore, accuracy_under_faults
from repro.sim.fleet import FleetModel, FleetReport, RadioModel
from repro.sim.platforms import (
    Platform,
    get_platform,
    iter_platforms,
    platform_registry,
    register_platform,
)
from repro.sim.reports import SimulationReport, render_report
from repro.sim.simulator import InHouseSimulator
from repro.sim.stream import StreamReport, StreamSimulator

__all__ = [
    "AccuracyResult",
    "FaultSpec",
    "FaultyOpticalCore",
    "FleetModel",
    "FleetReport",
    "InHouseSimulator",
    "Platform",
    "RadioModel",
    "SimulationReport",
    "StreamReport",
    "StreamSimulator",
    "get_platform",
    "iter_platforms",
    "platform_registry",
    "register_platform",
    "Table2Settings",
    "accuracy_under_faults",
    "evaluate_hardware_accuracy",
    "render_report",
    "run_table2",
    "train_qat_model",
]
