"""Platform registry: one uniform evaluation surface for every platform.

The paper's evaluation compares OISA against three rebuilt baselines
(CrossLight-like, AppCiP-like, DaDianNao-like ASIC) on the same first-layer
workloads.  Historically each analysis script re-enumerated those platforms
by hand; this module makes the set *data*:

* :class:`Platform` — the adapter interface: ``simulate_conv`` /
  ``simulate_mlp`` plus capability flags and parameter metadata;
* :func:`register_platform` — class decorator adding an adapter under a
  stable key;
* :func:`platform_registry` — the registered keys in canonical comparison
  order (OISA first, then the baselines);
* :func:`get_platform` / :func:`iter_platforms` — adapter construction
  bound to one :class:`~repro.core.config.OISAConfig`.

Adding a platform is now a one-file change: subclass :class:`Platform`,
decorate it, and every registry-driven consumer (``analysis/table1``,
``analysis/fig9``, ``analysis/sweeps``, ``analysis/claims``,
``analysis/robustness_report``, the ``compare``/``sweep`` CLI commands
and the benches) picks it up.

Units: simulation reports carry energies in joules, powers in watts,
times in seconds, throughputs in TOp/s and efficiencies in TOp/s/W —
the quantities of the paper's Fig. 9 and Table I.  Paper anchors:
Table I (structural flags: in-sensor, memory, NVM, technology node),
Fig. 9 (the [weight:activation] bit grid all ``simulate_conv`` calls
default to), Section V (the three rebuilt comparison platforms).

Capability flags are honest interfaces: ``supports_conv``/
``supports_mlp`` gate the ``simulate_*`` methods, and
``fault_injectable`` marks the platforms whose hardware surface
:mod:`repro.sim.faults` can degrade (only OISA models the optical fault
physics; the digital baselines are exempt in robustness sweeps).
Changing any adapter's numbers is a golden-guarded event: Table 1 /
Fig. 9 / claims ``repr()`` outputs must stay bit-identical
(``tests/test_goldens.py``) unless the change is intentional and the
goldens are regenerated.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.appcip import AppCipAccelerator
from repro.baselines.asic import AsicAccelerator
from repro.baselines.crosslight import CrosslightAccelerator
from repro.core.config import OISAConfig
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import (
    ConvWorkload,
    MlpWorkload,
    plan_convolution,
    plan_mlp,
)
from repro.sim.reports import SimulationReport

_REGISTRY: dict[str, type["Platform"]] = {}


def register_platform(key: str):
    """Class decorator: register a :class:`Platform` subclass under ``key``."""

    def decorator(cls: type["Platform"]) -> type["Platform"]:
        lowered = key.lower()
        if lowered in _REGISTRY and _REGISTRY[lowered] is not cls:
            raise ValueError(f"platform key {lowered!r} is already registered")
        cls.key = lowered
        _REGISTRY[lowered] = cls
        return cls

    return decorator


def platform_registry() -> tuple[str, ...]:
    """Registered platform keys, in canonical comparison order."""
    return tuple(_REGISTRY)


def get_platform(key: str, config: OISAConfig | None = None) -> "Platform":
    """Construct the adapter registered under ``key``.

    Raises ``ValueError`` for unknown keys (the error the old hand-rolled
    ``simulate_baseline`` dispatch raised).
    """
    cls = _REGISTRY.get(key.lower())
    if cls is None:
        raise ValueError(f"unknown platform {key!r}")
    return cls(config)


def iter_platforms(config: OISAConfig | None = None) -> Iterator["Platform"]:
    """Yield one adapter per registered platform, bound to ``config``."""
    for key in platform_registry():
        yield get_platform(key, config)


class Platform:
    """Adapter interface every registered platform implements.

    Subclasses fill in the class attributes and override the ``simulate_*``
    methods they support; the base implementations raise
    ``NotImplementedError`` so capability flags and behaviour stay in sync.
    """

    #: Registry key (set by :func:`register_platform`).
    key: str = ""
    #: Display name used in reports/tables.
    name: str = ""
    #: Whether :meth:`simulate_conv` is implemented.
    supports_conv: bool = False
    #: Whether :meth:`simulate_mlp` is implemented.
    supports_mlp: bool = False
    #: Whether the platform computes inside the sensor (in/near-pixel).
    in_sensor: bool = False
    #: Whether the platform holds weights in on-unit memory (Table I "mem").
    has_memory: bool = True
    #: Whether the weight store is non-volatile (Table I "NVM").
    has_nvm: bool = False
    #: Fabrication node reported in Table I.
    technology_nm: int = 65
    #: Whether the platform exposes a hardware-in-the-loop fault surface
    #: (:mod:`repro.sim.faults`) that :mod:`repro.analysis.robustness_report`
    #: can degrade; digital baselines are assumed fault-free.
    fault_injectable: bool = False

    def __init__(self, config: OISAConfig | None = None) -> None:
        self.config = config or OISAConfig()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def parameters(self) -> dict[str, object]:
        """Structural parameter metadata (Table-I style facts)."""
        return {
            "key": self.key,
            "name": self.name,
            "supports_conv": self.supports_conv,
            "supports_mlp": self.supports_mlp,
            "in_sensor": self.in_sensor,
            "has_memory": self.has_memory,
            "has_nvm": self.has_nvm,
            "technology_nm": self.technology_nm,
            "fault_injectable": self.fault_injectable,
        }

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate_conv(
        self,
        workload: ConvWorkload,
        weight_bits: int | None = None,
        activation_bits: int = 2,
        frame_rate_hz: float | None = None,
        include_mapping: bool = False,
    ) -> SimulationReport:
        """Simulate a convolutional first layer on this platform."""
        raise NotImplementedError(f"{self.name} does not simulate convolutions")

    def simulate_mlp(
        self, workload: MlpWorkload, weight_bits: int | None = None
    ) -> SimulationReport:
        """Simulate a dense first layer on this platform."""
        raise NotImplementedError(f"{self.name} does not simulate dense layers")


def conv_workload_tag(workload: ConvWorkload) -> str:
    """Canonical workload label used across all platform reports."""
    return (
        f"conv{workload.kernel_size}x{workload.kernel_size}-"
        f"{workload.num_kernels}k-{workload.in_channels}c-"
        f"{workload.image_height}x{workload.image_width}"
    )


@register_platform("oisa")
class OISAPlatform(Platform):
    """The paper's architecture, evaluated live from the energy model."""

    name = "OISA"
    supports_conv = True
    supports_mlp = True
    in_sensor = True
    fault_injectable = True

    def __init__(self, config: OISAConfig | None = None) -> None:
        super().__init__(config)
        self.energy_model = OISAEnergyModel(self.config)

    def parameters(self) -> dict[str, object]:
        cfg = self.config
        return {
            **super().parameters(),
            "num_banks": cfg.num_banks,
            "total_mrs": cfg.total_mrs,
            "total_arms": cfg.total_arms,
            "weight_bits": cfg.weight_bits,
            "frame_rate_hz": cfg.frame_rate_hz,
        }

    def simulate_conv(
        self,
        workload: ConvWorkload,
        weight_bits: int | None = None,
        activation_bits: int = 2,
        frame_rate_hz: float | None = None,
        include_mapping: bool = False,
    ) -> SimulationReport:
        bits = weight_bits if weight_bits is not None else self.config.weight_bits
        config = self.config.with_weight_bits(bits)
        model = OISAEnergyModel(config)
        plan = plan_convolution(config, workload)
        rate = frame_rate_hz if frame_rate_hz is not None else config.frame_rate_hz
        energy = model.frame_energy_j(plan, include_mapping=include_mapping)
        return SimulationReport(
            platform=self.name,
            workload=conv_workload_tag(workload),
            weight_bits=bits,
            compute_cycles=plan.compute_cycles,
            compute_time_s=model.compute_time_s(plan),
            frame_energy_j=energy.total,
            average_power_w=energy.total * rate,
            breakdown=energy.scaled(rate),
            peak_throughput_tops=model.peak_throughput_ops() / 1e12,
            efficiency_tops_per_watt=model.efficiency_tops_per_watt(
                workload.kernel_size
            ),
            frame_rate_fps=rate,
        )

    def simulate_mlp(
        self, workload: MlpWorkload, weight_bits: int | None = None
    ) -> SimulationReport:
        bits = weight_bits if weight_bits is not None else self.config.weight_bits
        config = self.config.with_weight_bits(bits)
        plan = plan_mlp(config, workload)
        model = OISAEnergyModel(config)
        energy = model.mlp_frame_energy_j(plan)
        rate = config.frame_rate_hz
        return SimulationReport(
            platform=self.name,
            workload=f"mlp-{workload.input_features}x{workload.output_features}",
            weight_bits=bits,
            compute_cycles=plan.compute_cycles,
            compute_time_s=model.mlp_compute_time_s(plan),
            frame_energy_j=energy.total,
            average_power_w=energy.total * rate,
            breakdown=energy.scaled(rate),
            peak_throughput_tops=model.peak_throughput_ops() / 1e12,
            efficiency_tops_per_watt=model.efficiency_tops_per_watt(3),
            frame_rate_fps=rate,
        )

    def table1_row(self) -> dict:
        """OISA's measured Table I entries (bit-identical to the old path)."""
        from repro.core.energy import default_plan

        cfg = self.config
        model = self.energy_model
        plan = default_plan(cfg)
        electronics_mw = model.electronics_power_w(plan) * 1e3
        return {
            "technology_nm": 65,
            "purpose": "1st-layer CNN",
            "compute_scheme": "entire-array",
            "has_memory": True,
            "has_nvm": False,
            "pixel_size_um": cfg.pixel_pitch_m * 1e6,
            "array_size": f"{cfg.pixel_rows}x{cfg.pixel_cols}",
            "frame_rate_fps": f"{cfg.frame_rate_hz:.0f}",
            "power_mw": f"{electronics_mw:.4f}",
            "efficiency_tops_per_watt": f"{model.efficiency_tops_per_watt():.2f}",
        }


class BaselinePlatform(Platform):
    """Shared conv-report assembly for the three rebuilt baselines.

    Subclasses provide the backend accelerator plus the cycle/throughput
    arithmetic; the power breakdown always comes from the backend's
    ``average_power_w``.
    """

    supports_conv = True
    #: Default bit configuration of the baseline comparison (Fig. 9's
    #: rightmost [4, 2] point).
    DEFAULT_WEIGHT_BITS = 4

    def __init__(self, config: OISAConfig | None = None) -> None:
        super().__init__(config)
        self.backend = self._build_backend()
        self.name = self.backend.name

    def _build_backend(self):
        raise NotImplementedError

    def _conv_costs(self, workload: ConvWorkload) -> tuple[float, float, float]:
        """Return (cycles, compute_time_s, peak_throughput_tops)."""
        raise NotImplementedError

    def table1_row(self) -> dict:
        """Measured Table-I style entries on the reference workload.

        The rebuilt baselines have no literature row of their own (the
        paper compares them in Fig. 9), so this reports the adapter's
        structural flags plus the measured average power behind the same
        128x128 sensor scenario.
        """
        from repro.core.energy import resnet18_first_layer_workload

        cfg = self.config
        report = self.simulate_conv(resnet18_first_layer_workload(cfg))
        return {
            "technology_nm": self.technology_nm,
            "purpose": "1st-layer CNN",
            "compute_scheme": "in-pixel" if self.in_sensor else "off-sensor",
            "has_memory": self.has_memory,
            "has_nvm": self.has_nvm,
            "pixel_size_um": cfg.pixel_pitch_m * 1e6,
            "array_size": f"{cfg.pixel_rows}x{cfg.pixel_cols}",
            "frame_rate_fps": f"{report.frame_rate_fps:.0f}",
            "power_mw": f"{report.average_power_w * 1e3:.4f}",
            "efficiency_tops_per_watt": (
                f"{report.efficiency_tops_per_watt:.2f}"
                if report.efficiency_tops_per_watt > 0
                else "-"
            ),
        }

    def simulate_conv(
        self,
        workload: ConvWorkload,
        weight_bits: int | None = None,
        activation_bits: int = 2,
        frame_rate_hz: float | None = None,
        include_mapping: bool = False,
    ) -> SimulationReport:
        bits = weight_bits if weight_bits is not None else self.DEFAULT_WEIGHT_BITS
        rate = frame_rate_hz if frame_rate_hz is not None else 1000.0
        cycles, compute_s, tops = self._conv_costs(workload)
        breakdown = self.backend.average_power_w(
            workload,
            weight_bits=bits,
            activation_bits=activation_bits,
            frame_rate_hz=rate,
        )
        power = breakdown.total
        return SimulationReport(
            platform=self.name,
            workload=conv_workload_tag(workload),
            weight_bits=bits,
            compute_cycles=int(cycles),
            compute_time_s=compute_s,
            frame_energy_j=power / rate,
            average_power_w=power,
            breakdown=breakdown,
            peak_throughput_tops=tops,
            efficiency_tops_per_watt=(
                tops / power if power > 0 and tops > 0 else 0.0
            ),
            frame_rate_fps=rate,
        )


@register_platform("crosslight")
class CrosslightPlatform(BaselinePlatform):
    """CrossLight-like silicon-photonic PIS (separate banks + converters)."""

    def _build_backend(self) -> CrosslightAccelerator:
        return CrosslightAccelerator()

    def parameters(self) -> dict[str, object]:
        return {
            **super().parameters(),
            "weight_arms": self.backend.weight_arms,
            "laser_power_w": self.backend.config.laser_power_w,
        }

    def _conv_costs(self, workload: ConvWorkload) -> tuple[float, float, float]:
        cycles = self.backend.compute_cycles(workload)
        compute_s = cycles * self.config.mac_cycle_s
        tops = self.backend.peak_throughput_ops() / 1e12
        return cycles, compute_s, tops


@register_platform("appcip")
class AppCipPlatform(BaselinePlatform):
    """AppCiP-like analog processing-in-pixel platform."""

    in_sensor = True
    has_nvm = True
    technology_nm = 45

    def _build_backend(self) -> AppCipAccelerator:
        return AppCipAccelerator()

    def parameters(self) -> dict[str, object]:
        return {
            **super().parameters(),
            "analog_mac_energy_j": self.backend.config.analog_mac_energy_j,
        }

    def _conv_costs(self, workload: ConvWorkload) -> tuple[float, float, float]:
        cycles = workload.windows_per_channel
        compute_s = min(1.0 / self.backend.frame_rate_limit_hz(workload), 1.0)
        return cycles, compute_s, 0.0


@register_platform("asic")
class AsicPlatform(BaselinePlatform):
    """DaDianNao-like digital ASIC behind a conventional sensor."""

    technology_nm = 45

    def _build_backend(self) -> AsicAccelerator:
        return AsicAccelerator()

    def parameters(self) -> dict[str, object]:
        return {
            **super().parameters(),
            "num_tiles": self.backend.config.num_tiles,
        }

    def _conv_costs(self, workload: ConvWorkload) -> tuple[float, float, float]:
        macs = workload.total_macs
        peak = self.backend.peak_throughput_macs()
        compute_s = macs / peak
        tops = 2.0 * peak / 1e12
        return macs, compute_s, tops
