"""Analytical memory models (replaces CACTI and NVSIM).

The paper uses CACTI for OISA's kernel banks and the ASIC baseline's
eDRAM/SRAM, and NVSIM for the non-volatile banks of the AppCiP/PISA-style
electronic PIS baseline.  Only scalar energy/latency/area outputs of those
tools enter the architecture comparison, so we provide calibrated analytical
models with the same interface role.
"""

from repro.memarch.cacti import EdramModel, SramModel
from repro.memarch.nvsim import NvmModel

__all__ = ["EdramModel", "NvmModel", "SramModel"]
