"""NVSIM-style non-volatile memory model (RRAM-class).

PISA and AppCiP store network weights in non-volatile banks; their defining
cost is the *write* path — NVM writes are one to two orders of magnitude
more expensive than reads and wear the cells.  The paper's background
section calls this out explicitly ("power-demanding write operations in
non-volatile memories ... elevate the overall power consumption").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class NvmModel:
    """RRAM-like NVM bank (NVSIM-calibrated trends, 45–65 nm)."""

    capacity_bytes: int
    word_bits: int = 32
    technology_nm: int = 45
    anchor_capacity_bytes: int = 4096
    anchor_read_energy_j: float = 2.5e-12
    anchor_write_energy_j: float = 85e-12
    anchor_read_time_s: float = 1.5e-9
    anchor_write_time_s: float = 12e-9
    anchor_leakage_w: float = 0.4e-6
    anchor_area_mm2: float = 0.006
    endurance_cycles: float = 1e8

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("word_bits", self.word_bits)
        check_positive("technology_nm", self.technology_nm)

    def _capacity_ratio(self) -> float:
        return self.capacity_bytes / self.anchor_capacity_bytes

    def _node_scale(self) -> float:
        return (self.technology_nm / 45.0) ** 2

    def read_energy_j(self) -> float:
        """Energy of one word read [J]."""
        return (
            self.anchor_read_energy_j
            * math.sqrt(self._capacity_ratio())
            * self._node_scale()
            * (self.word_bits / 32.0)
        )

    def write_energy_j(self) -> float:
        """Energy of one word write [J] (the dominant NVM cost)."""
        return (
            self.anchor_write_energy_j
            * math.sqrt(self._capacity_ratio())
            * self._node_scale()
            * (self.word_bits / 32.0)
        )

    def read_time_s(self) -> float:
        """Read latency [s]."""
        return self.anchor_read_time_s * math.sqrt(self._capacity_ratio())

    def write_time_s(self) -> float:
        """Write latency [s]."""
        return self.anchor_write_time_s * math.sqrt(self._capacity_ratio())

    def leakage_power_w(self) -> float:
        """Static power [W]; NVM arrays leak far less than SRAM."""
        return self.anchor_leakage_w * self._capacity_ratio()

    def area_mm2(self) -> float:
        """Macro area [mm^2]."""
        return self.anchor_area_mm2 * self._capacity_ratio() * (
            self.technology_nm / 45.0
        ) ** 2

    def lifetime_writes(self) -> float:
        """Total word-writes before wear-out across the array."""
        words = self.capacity_bytes * 8 / self.word_bits
        return words * self.endurance_cycles
