"""CACTI-style SRAM / eDRAM energy, latency and area estimators.

Calibrated to CACTI 5.1-class outputs for 45–65 nm nodes: per-access energy
grows roughly with the square root of capacity (bitline/wordline lengths),
leakage and area grow linearly.  These trends are what the architecture
comparison consumes; absolute constants are anchored to published numbers
for 1–64 KiB arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class SramModel:
    """SRAM macro model.

    Anchors (45 nm, CACTI-class): a 4 KiB array reads at ~5 pJ/32-bit word
    with ~0.5 ns access and ~0.016 mm^2; energy scales ~sqrt(capacity).
    """

    capacity_bytes: int
    word_bits: int = 32
    technology_nm: int = 45
    anchor_capacity_bytes: int = 4096
    anchor_read_energy_j: float = 5e-12
    anchor_access_time_s: float = 0.5e-9
    anchor_leakage_w: float = 6e-6
    anchor_area_mm2: float = 0.016
    write_energy_factor: float = 1.15

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("word_bits", self.word_bits)
        check_positive("technology_nm", self.technology_nm)

    def _capacity_ratio(self) -> float:
        return self.capacity_bytes / self.anchor_capacity_bytes

    def _node_scale(self) -> float:
        # Dynamic energy ~ node^2 relative to the 45 nm anchor.
        return (self.technology_nm / 45.0) ** 2

    def read_energy_j(self) -> float:
        """Energy of one word read [J]."""
        return (
            self.anchor_read_energy_j
            * math.sqrt(self._capacity_ratio())
            * self._node_scale()
            * (self.word_bits / 32.0)
        )

    def write_energy_j(self) -> float:
        """Energy of one word write [J]."""
        return self.read_energy_j() * self.write_energy_factor

    def access_time_s(self) -> float:
        """Random-access latency [s]."""
        return self.anchor_access_time_s * math.sqrt(self._capacity_ratio())

    def leakage_power_w(self) -> float:
        """Static leakage [W], linear in capacity."""
        return self.anchor_leakage_w * self._capacity_ratio() * (
            self.technology_nm / 45.0
        )

    def area_mm2(self) -> float:
        """Macro area [mm^2], linear in capacity."""
        return self.anchor_area_mm2 * self._capacity_ratio() * (
            self.technology_nm / 45.0
        ) ** 2


@dataclass(frozen=True)
class EdramModel:
    """eDRAM macro model for the DaDianNao-like ASIC tiles.

    Anchors follow the DaDianNao paper's 28–45 nm eDRAM characteristics:
    denser but slower than SRAM, with refresh power proportional to
    capacity.
    """

    capacity_bytes: int
    word_bits: int = 64
    technology_nm: int = 45
    anchor_capacity_bytes: int = 2 * 1024 * 1024
    anchor_read_energy_j: float = 50e-12
    anchor_access_time_s: float = 2.2e-9
    anchor_refresh_power_w: float = 45e-6
    anchor_area_mm2: float = 1.4
    write_energy_factor: float = 1.1

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("word_bits", self.word_bits)
        check_positive("technology_nm", self.technology_nm)

    def _capacity_ratio(self) -> float:
        return self.capacity_bytes / self.anchor_capacity_bytes

    def read_energy_j(self) -> float:
        """Energy of one word read [J]."""
        return (
            self.anchor_read_energy_j
            * math.sqrt(self._capacity_ratio())
            * (self.technology_nm / 45.0) ** 2
            * (self.word_bits / 64.0)
        )

    def write_energy_j(self) -> float:
        """Energy of one word write [J]."""
        return self.read_energy_j() * self.write_energy_factor

    def access_time_s(self) -> float:
        """Random-access latency [s]."""
        return self.anchor_access_time_s * math.sqrt(self._capacity_ratio())

    def refresh_power_w(self) -> float:
        """Standing refresh power [W]."""
        return self.anchor_refresh_power_w * self._capacity_ratio()

    def area_mm2(self) -> float:
        """Macro area [mm^2]."""
        return self.anchor_area_mm2 * self._capacity_ratio() * (
            self.technology_nm / 45.0
        ) ** 2
