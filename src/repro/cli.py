"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro.cli summary            # headline performance counters
    python -m repro.cli claims             # paper-vs-measured claim table
    python -m repro.cli fig4 | fig8 | fig9 # figure regenerations
    python -m repro.cli table1             # Table I
    python -m repro.cli table2 [--fast]    # Table II (trains networks!)
    python -m repro.cli compare            # platform comparison report
    python -m repro.cli sweep              # registry-driven platform sweep
    python -m repro.cli serve              # batched frame-serving demo
    python -m repro.cli bench              # perf bench -> BENCH_program.json
    python -m repro.cli cache stats        # on-disk program store inventory

(Installed as the ``repro`` console script via ``pyproject.toml``.)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_summary(_args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.accelerator import OISAAccelerator

    oisa = OISAAccelerator(seed=0)
    weights = np.random.default_rng(0).normal(size=(64, 3, 3, 3)) * 0.1
    oisa.program_conv(weights, padding=1)
    for key, value in oisa.performance_summary().items():
        print(f"{key:28s}: {value:.6g}")
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    from repro.analysis.claims import build_claims, render_claims

    claims = build_claims(include_fig9=True)
    print(render_claims(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _cmd_fig4(_args: argparse.Namespace) -> int:
    from repro.analysis.fig4 import render_fig4

    print(render_fig4())
    return 0


def _cmd_fig8(_args: argparse.Namespace) -> int:
    from repro.analysis.fig8 import render_fig8

    print(render_fig8())
    return 0


def _cmd_fig9(_args: argparse.Namespace) -> int:
    from repro.analysis.fig9 import render_fig9

    print(render_fig9())
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.analysis.table1 import render_table1

    print(render_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis.table2 import build_table2, ordering_checks, render_table2
    from repro.sim.accuracy import Table2Settings

    settings = Table2Settings.fast() if args.fast else Table2Settings.full()
    data = build_table2(settings=settings, cache_path=args.cache)
    print(render_table2(data))
    checks = ordering_checks(data)
    for name, holds in checks.items():
        print(f"{name:32s}: {'holds' if holds else 'VIOLATED'}")
    return 0 if all(checks.values()) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(args.output, table2_cache=args.table2_cache)
    print(f"report written to {path}")
    return 0


def _cmd_compare(_args: argparse.Namespace) -> int:
    from repro.core.energy import resnet18_first_layer_workload
    from repro.sim.reports import render_report
    from repro.sim.simulator import InHouseSimulator

    simulator = InHouseSimulator()
    workload = resnet18_first_layer_workload()
    reports = simulator.compare_all(workload, weight_bits=4)
    print(render_report(reports, title="Platform comparison — ResNet-18 first layer"))
    return 0


def _parallel_from_args(args: argparse.Namespace):
    """Build the fan-out config from ``--backend``/``--workers`` flags.

    Returns ``None`` for the pure-default case so call sites keep their
    historical serial signature; ``--workers 1`` deliberately resolves to
    the serial loop (the degenerate pin, see
    :class:`repro.util.parallel.ParallelConfig`).
    """
    from repro.util.parallel import ParallelConfig

    backend = getattr(args, "backend", "serial")
    workers = getattr(args, "workers", None)
    if backend == "serial" and workers is None:
        return None
    # --workers N without --backend means "fan out": default to process,
    # the backend that buys wall-clock on multi-core hosts.
    if backend == "serial" and workers is not None and workers > 1:
        backend = "process"
    return ParallelConfig(backend=backend, workers=workers)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import render_platform_sweep, sweep_platforms

    parallel = _parallel_from_args(args)
    print(render_platform_sweep(sweep_platforms(parallel=parallel)))
    if args.platforms:
        from repro.sim.platforms import iter_platforms

        print("\nregistered platforms:")
        for platform in iter_platforms():
            print(f"  {platform.key:12s}: {platform.parameters()}")
    if args.fault_profile != "none":
        from dataclasses import replace

        from repro.engine.health import FaultProfile
        from repro.analysis.robustness_report import (
            RobustnessSettings,
            build_robustness_report,
            render_robustness_report,
        )

        profile = FaultProfile.named(args.fault_profile)
        settings = (
            RobustnessSettings.fast() if args.fast else RobustnessSettings()
        )
        # The profile's fault classes (stuck branches, gain drift, ...)
        # ride along at every swept dead-MR rate.
        settings = replace(
            settings, base_spec=profile.fault_spec, label=profile.name
        )
        print()
        print(
            render_robustness_report(
                build_robustness_report(settings, parallel=parallel)
            )
        )
    if args.capacity:
        from dataclasses import replace

        from repro.analysis.capacity import (
            CapacitySettings,
            build_capacity_report,
            render_capacity_report,
        )

        capacity = (
            CapacitySettings.fast() if args.fast else CapacitySettings()
        )
        if args.capacity_scenario:
            capacity = replace(capacity, scenario=args.capacity_scenario)
        if args.capacity_policies:
            capacity = replace(
                capacity,
                policies=tuple(
                    token.strip()
                    for token in args.capacity_policies.split(",")
                    if token.strip()
                ),
            )
        if args.capacity_nodes:
            capacity = replace(
                capacity,
                node_counts=tuple(
                    int(token)
                    for token in args.capacity_nodes.split(",")
                    if token.strip()
                ),
            )
        print()
        print(
            render_capacity_report(
                build_capacity_report(
                    capacity,
                    parallel=parallel,
                    program_store=args.program_store,
                )
            )
        )
    if args.resilience:
        from dataclasses import replace

        from repro.analysis.robustness_report import (
            ResilienceSettings,
            build_resilience_report,
            render_resilience_report,
        )

        settings = (
            ResilienceSettings.fast() if args.fast else ResilienceSettings()
        )
        settings = replace(
            settings,
            chaos_plan=args.chaos_plan,
            retry_policy=args.retry_policy,
            spares=args.spares,
        )
        print()
        print(render_resilience_report(build_resilience_report(settings)))
    return 0


def _na_if_nan(value: float, spec: str) -> str:
    """Format a stream metric, rendering NaN as ``n/a``.

    Latency statistics are NaN when a stream (or SLO class) delivers zero
    frames — e.g. greedy under overload shedding a whole batch tier; the
    table must say "no measurement", not print ``nan``.
    """
    return "n/a" if value != value else f"{value:{spec}}"


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine import FrameServer
    from repro.engine.workloads import build_scenario, models_scenario
    from repro.util.tables import format_table

    # The request stream comes from the workload layer: a registered
    # scenario (default: the historical two-LeNet demo, byte-for-byte),
    # or an ad-hoc zoo mix via --models.
    if args.models:
        scenario = models_scenario(
            args.models,
            frames=args.frames,
            offered_fps=args.fps,
            seed=args.seed,
        )
    else:
        scenario = build_scenario(
            args.scenario,
            frames=args.frames,
            offered_fps=args.fps,
            seed=args.seed,
        )
    resilient = (
        args.chaos_plan != "none"
        or args.retry_policy != "none"
        or args.spares > 0
        or args.brownout != "none"
    )
    parallel = _parallel_from_args(args)
    warm = None
    if args.shards > 0:
        # The sharded control plane builds plain shard servers — the
        # fault/chaos/failover layers do not compose with node_limit
        # autoscaling (see FrameServer.serve).
        if resilient or args.fault_profile != "none":
            raise SystemExit(
                "--shards does not compose with --fault-profile/"
                "--chaos-plan/--retry-policy/--spares/--brownout; "
                "shard servers are built plain"
            )
        from repro.engine import AutoscalerConfig, ControlPlane

        autoscaler = (
            AutoscalerConfig.parse(args.autoscale)
            if args.autoscale is not None
            else None
        )
        plane = ControlPlane(
            shards=args.shards,
            nodes_per_shard=args.nodes,
            micro_batch=args.batch,
            seed=args.seed,
            policy=args.policy,
            router=args.router,
            autoscaler=autoscaler,
            program_store=args.program_store,
        )
        report = plane.serve_scenario(
            scenario, offered_fps=args.fps, placement=args.placement
        )
        store = plane.cache.store
    else:
        if args.autoscale is not None:
            raise SystemExit("--autoscale requires --shards")
        server = FrameServer(
            num_nodes=args.nodes,
            micro_batch=args.batch,
            seed=args.seed,
            fault_profile=args.fault_profile,
            policy=args.policy,
            chaos_plan=args.chaos_plan,
            retry_policy=args.retry_policy,
            spares=args.spares,
            brownout=args.brownout,
            program_store=args.program_store,
        )
        # --workers/--backend fan the cold warmup out before serving; the
        # serve report is bit-identical either way (the parallel layer's
        # ordered-merge contract), only the programming wall-clock moves.
        # A failover configuration also warms up front (serially when no
        # fan-out is requested): pre-warmed programs are what make spare
        # activation pure cache hits.
        if parallel is not None or resilient:
            for key, model in scenario.models.items():
                server.register_model(key, model)
            warm = server.warmup(parallel=parallel)
        report = server.serve_scenario(scenario, offered_fps=args.fps)
        store = server.cache.store
    rows = [
        ("scenario", scenario.name),
        ("models", ", ".join(scenario.model_keys)),
        ("policy", args.policy),
        ("frames offered", report.stream.frames),
        ("frames delivered", report.delivered),
        ("drop rate", f"{report.stream.drop_rate:.3f}"),
        ("mean latency [ms]", _na_if_nan(report.stream.mean_latency_s * 1e3, ".3f")),
        ("sustained FPS (simulated)", _na_if_nan(report.stream.sustained_fps, ".0f")),
        ("wall-clock FPS (host)", f"{report.wall_clock_fps:.0f}"),
        ("cache hits / misses", f"{report.cache_hits} / {report.cache_misses}"),
        ("frame energy total [uJ]", f"{report.stream.total_energy_j * 1e6:.3f}"),
        ("radio energy [mJ]", f"{report.radio_energy_j * 1e3:.3f}"),
        ("payload [kB]", f"{report.payload_bytes / 1e3:.1f}"),
    ]
    if store is not None:
        rows.append(
            (
                "program store (loads / writes / entries)",
                f"{store.stats.hits} / {store.stats.writes} / {len(store)}",
            )
        )
    if warm is not None:
        backend = parallel.effective_backend if parallel is not None else "serial"
        rows.append(
            (
                "warmup (models x nodes)",
                f"{warm['models']} x {warm['nodes']} in "
                f"{warm['wall_clock_s'] * 1e3:.1f} ms "
                f"[{backend}]",
            )
        )
    rows.extend(
        (f"frames on node {node}", count)
        for node, count in sorted(report.node_frames.items())
    )
    if report.controlplane is not None:
        plane_report = report.controlplane
        rows.extend(
            (
                ("shards", ", ".join(plane_report.shards)),
                ("router", plane_report.router),
                (
                    "routes (tenant|model -> shard)",
                    ", ".join(
                        f"{pair}->{shard}"
                        for pair, shard in plane_report.routes.items()
                    )
                    or "-",
                ),
                (
                    "reroutes / preloads",
                    f"{plane_report.reroutes} / {plane_report.preloads}",
                ),
                (
                    "node-seconds (active / static)",
                    f"{plane_report.node_seconds:.4f} / "
                    f"{plane_report.static_node_seconds:.4f}",
                ),
            )
        )
        if plane_report.autoscaled:
            rows.extend(
                (
                    (
                        "node-seconds saved",
                        f"{plane_report.node_seconds_saved_frac * 100:.1f}%",
                    ),
                    (
                        "scaling windows / decisions",
                        f"{plane_report.windows} / "
                        f"{len(plane_report.decisions)}",
                    ),
                )
            )
    if report.health is not None:
        health = report.health
        rows.extend(
            (
                ("fault profile", health.profile),
                ("upsets / recalibrations", f"{health.upsets} / {health.recalibrations}"),
                (
                    "degraded frames",
                    f"{health.degraded_frames} ({health.degraded_fraction * 100:.1f}%)",
                ),
                ("peak thermal drift [K]", f"{health.peak_drift_k:.3f}"),
                ("recalibration energy [nJ]", f"{health.recalibration_energy_j * 1e9:.2f}"),
                ("dead nodes", str(health.dead_nodes) if health.dead_nodes else "-"),
            )
        )
        if health.chaos_events:
            rows.append(("chaos events fired", health.chaos_events))
    if report.resilience is not None:
        from repro.engine.failover import availability, recovery_time_s

        res = report.resilience
        recovery = recovery_time_s(report)
        rows.extend(
            (
                ("retry policy", res.retry_policy),
                ("availability", f"{availability(report) * 100:.1f}%"),
                (
                    "lost in flight / recovered / abandoned",
                    f"{res.frames_lost_in_flight} / {res.frames_recovered} "
                    f"/ {res.frames_abandoned}",
                ),
                (
                    "retries scheduled / dispatched / denied",
                    f"{res.retries_scheduled} / {res.retries_dispatched} "
                    f"/ {res.retry_budget_denials}",
                ),
                (
                    "spares activated / configured",
                    f"{res.spares_activated} / {res.spares_configured}",
                ),
                ("wasted dispatch energy [nJ]", f"{res.wasted_energy_j * 1e9:.2f}"),
            )
        )
        if recovery is not None:
            rows.append(
                (
                    "recovery time [ms]",
                    "never"
                    if recovery != recovery or recovery == float("inf")
                    else f"{recovery * 1e3:.2f}",
                )
            )
    if report.brownout is not None:
        brown = report.brownout
        rows.extend(
            (
                ("brownout peak tier", brown.peak_tier_name),
                (
                    "brownout shed / reduced-bits frames",
                    f"{brown.shed_frames} / {brown.reduced_bits_frames}",
                ),
            )
        )
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=f"FrameServer — {args.nodes} node(s), micro-batch {args.batch}",
        )
    )
    if report.slo is not None:
        slo_rows = [
            (
                stats.name,
                stats.priority,
                "-"
                if stats.deadline_s is None
                else f"{stats.deadline_s * 1e3:.1f}",
                stats.offered,
                stats.delivered,
                _na_if_nan(stats.hit_rate, ".3f"),
                "n/a"
                if stats.p99_latency_s != stats.p99_latency_s
                else f"{stats.p99_latency_s * 1e3:.2f}",
                stats.shed,
                stats.expired,
                stats.lost,
            )
            for stats in sorted(
                report.slo.classes.values(),
                key=lambda s: (-s.priority, s.name),
            )
        ]
        print()
        print(
            format_table(
                (
                    "class",
                    "prio",
                    "deadline [ms]",
                    "offered",
                    "delivered",
                    "hit rate",
                    "p99 [ms]",
                    "shed",
                    "expired",
                    "lost",
                ),
                slo_rows,
                title=f"SLO outcomes — policy {report.slo.policy!r}",
            )
        )
    if report.brownout is not None and report.brownout.transitions:
        print("\nbrownout transitions:")
        for transition in report.brownout.transitions:
            print(
                f"  t={transition.time_s * 1e3:8.2f} ms  "
                f"tier {transition.from_tier} -> {transition.to_tier} "
                f"({transition.to_name}): pressure {transition.pressure:.2f}, "
                f"{transition.reason}"
            )
    if (
        report.controlplane is not None
        and report.controlplane.decisions
    ):
        print("\nscaling decisions:")
        for decision in report.controlplane.decisions:
            print(f"  {decision.line()}")
    if report.health is not None and report.health.events:
        print("\nhealth events:")
        for event in report.health.events:
            print(
                f"  t={event.time_s * 1e3:8.2f} ms  node {event.node_id}  "
                f"{event.kind}: {event.detail}"
            )
    if args.check_slo:
        # SLO gate (CI-friendly): every class with a deadline must hit it
        # at >= --slo-target over offered frames, else exit nonzero.
        if report.slo is None:
            print(
                "\n--check-slo: no SLO accounting on this configuration "
                "(no classes and a non-queueing policy)"
            )
            return 1
        failures = []
        print(f"\nSLO check (target {args.slo_target:.2f}):")
        for stats in sorted(
            report.slo.classes.values(), key=lambda s: (-s.priority, s.name)
        ):
            if stats.deadline_s is None:
                print(f"  {stats.name:16s}: no deadline — exempt")
                continue
            ok = stats.hit_rate >= args.slo_target
            print(
                f"  {stats.name:16s}: hit rate {stats.hit_rate:.3f} "
                f"{'>=' if ok else '<'} {args.slo_target:.2f} "
                f"{'OK' if ok else 'MISS'}"
            )
            if not ok:
                failures.append(stats.name)
        if failures:
            print(f"--check-slo: FAILED for {', '.join(failures)}")
            return 1
        print("--check-slo: all classes meet the target")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.perf import (
        render_bench,
        run_bench,
        would_clobber_full_bench,
        write_bench,
    )

    result = run_bench(quick=args.quick, seed=args.seed)
    print(render_bench(result))
    kept = would_clobber_full_bench(args.output, result)
    path = write_bench(args.output, result)
    if kept:
        print(f"\nfull-mode perf trajectory entry at {path} kept")
    else:
        print(f"\nperf trajectory entry written to {path}")
    if not result["cold_program"]["bit_identical"]:
        print("ERROR: vectorized program() diverged from the scalar reference")
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the on-disk program store.

    ``stats`` prints the inventory, ``verify`` integrity-checks every
    entry (exit 1 when any is corrupt), ``purge`` removes every
    current-schema entry.  Table output matches ``repro serve``'s
    reporting style.
    """
    import os

    from repro.engine.store import STORE_SCHEMA_VERSION, ProgramStore
    from repro.util.tables import format_table

    if args.action in ("stats", "purge") and not os.path.isdir(
        args.program_store
    ):
        # stats/purge on a store that was never written is an empty
        # answer, not a directory-creating side effect.
        print(f"program store {args.program_store!r}: no store directory")
        return 0
    store = ProgramStore(args.program_store)
    if args.action == "purge":
        removed = store.purge()
        print(
            f"program store {store.root!r}: purged {removed} entr"
            f"{'y' if removed == 1 else 'ies'}"
        )
        return 0
    verified = store.verify() if args.action == "verify" else None
    rows = [
        ("store path", store.root),
        ("schema version", STORE_SCHEMA_VERSION),
        ("schema token", ProgramStore.schema_token()),
        ("entries", len(store)),
        ("bytes on disk", store.total_bytes()),
    ]
    if verified is not None:
        rows.append(("verified ok", len(verified["ok"])))
        rows.append(("corrupt", len(verified["corrupt"])))
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=f"program store — {args.action}",
        )
    )
    if verified is not None and verified["corrupt"]:
        print("\ncorrupt entries (kept for inspection; purge to remove):")
        for key in verified["corrupt"]:
            print(f"  {key}")
        return 1
    return 0


def _add_parallel_flags(sub: argparse.ArgumentParser) -> None:
    """``--workers``/``--backend`` for the multi-core fan-out layer.

    Outputs are byte-identical under every backend (the ordered-merge
    contract of :mod:`repro.util.parallel`); the flags only move
    wall-clock.  ``--workers 1`` is the serial path by definition.
    """
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out worker count (default: one per core; 1 = serial)",
    )
    sub.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "thread", "process"),
        help="fan-out executor backend (results are bit-identical under "
        "every backend; 'process' buys wall-clock on multi-core hosts)",
    )


def _add_store_flag(sub: argparse.ArgumentParser) -> None:
    """``--program-store`` for the on-disk program-artifact tier.

    Results are bit-identical with or without a store (store-restored
    programs are byte-equal to freshly programmed ones); the flag only
    kills repeat programming across runs.
    """
    sub.add_argument(
        "--program-store",
        default=None,
        metavar="PATH",
        help="directory of content-addressed programmed-weight artifacts "
        "(engine/store); a second run against the same store programs "
        "nothing",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OISA (DATE 2024) reproduction — regenerate paper artifacts",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in (
        ("summary", _cmd_summary, "headline performance counters"),
        ("claims", _cmd_claims, "paper-vs-measured claim table"),
        ("fig4", _cmd_fig4, "AWC staircase (Fig. 4b)"),
        ("fig8", _cmd_fig8, "VAM thresholding (Fig. 8)"),
        ("fig9", _cmd_fig9, "power comparison (Fig. 9)"),
        ("table1", _cmd_table1, "PIS/PNS comparison (Table I)"),
        ("compare", _cmd_compare, "in-house simulator platform report"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.set_defaults(handler=handler)
    table2 = subparsers.add_parser("table2", help="accuracy table (Table II)")
    table2.add_argument("--fast", action="store_true", help="fast preset")
    table2.add_argument("--cache", default=".table2_cli_cache.json")
    table2.set_defaults(handler=_cmd_table2)
    report = subparsers.add_parser("report", help="write the full reproduction report")
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--table2-cache", default=".table2_bench_cache.json")
    report.set_defaults(handler=_cmd_report)
    sweep = subparsers.add_parser(
        "sweep", help="registry-driven cross-platform sweep"
    )
    sweep.add_argument(
        "--platforms", action="store_true", help="also list platform metadata"
    )
    sweep.add_argument(
        "--fault-profile",
        default="none",
        choices=("none", "drift", "transient", "harsh"),
        help="also run the accuracy-vs-fault-rate robustness sweep "
        "(any non-none profile enables it and contributes its fault classes)",
    )
    sweep.add_argument(
        "--fast",
        action="store_true",
        help="trimmed grids (tier-1-test preset; applies to robustness "
        "and capacity sweeps)",
    )
    sweep.add_argument(
        "--capacity",
        action="store_true",
        help="also run the capacity-planning search "
        "(sustainable FPS vs nodes vs policy; analysis/capacity)",
    )
    sweep.add_argument(
        "--capacity-scenario",
        default=None,
        help="workload scenario for --capacity (default: poisson, "
        "or diurnal with --fast)",
    )
    sweep.add_argument(
        "--capacity-policies",
        default=None,
        help="comma list of policies for --capacity (e.g. 'greedy,slo')",
    )
    sweep.add_argument(
        "--capacity-nodes",
        default=None,
        help="comma list of node counts for --capacity (e.g. '1,2,4')",
    )
    sweep.add_argument(
        "--resilience",
        action="store_true",
        help="also run the failover ladder under chaos "
        "(no-failover vs retry vs retry+spares; analysis/robustness_report)",
    )
    sweep.add_argument(
        "--chaos-plan",
        default="node-loss",
        help="chaos plan for --resilience (engine/chaos registry)",
    )
    sweep.add_argument(
        "--retry-policy",
        default="deadline",
        help="retry policy for the --resilience failover rungs",
    )
    sweep.add_argument(
        "--spares",
        type=int,
        default=1,
        help="spare budget for the --resilience retry+spares rung",
    )
    _add_parallel_flags(sweep)
    _add_store_flag(sweep)
    sweep.set_defaults(handler=_cmd_sweep)
    serve = subparsers.add_parser(
        "serve", help="batched frame-serving engine demo"
    )
    serve.add_argument("--frames", type=int, default=64)
    serve.add_argument("--fps", type=float, default=1000.0)
    serve.add_argument("--nodes", type=int, default=2)
    serve.add_argument("--batch", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--scenario",
        default="default",
        help="workload scenario (engine/workloads registry: default, "
        "poisson, poisson-burst, diurnal, mixed-tenants, chaos, "
        "diurnal-regions, zoo)",
    )
    serve.add_argument(
        "--models",
        default=None,
        help="ad-hoc zoo mix overriding --scenario, e.g. "
        "'lenet:4,mlp:2,vgg16:1' (family[:weight_bits])",
    )
    serve.add_argument(
        "--policy",
        default="greedy",
        choices=("greedy", "edf", "slo"),
        help="scheduling policy (greedy-FIFO, earliest-deadline-first, "
        "priority + per-tenant weighted fair queuing)",
    )
    serve.add_argument(
        "--fault-profile",
        default="none",
        choices=("none", "drift", "transient", "harsh"),
        help="degradation scenario to serve under",
    )
    serve.add_argument(
        "--chaos-plan",
        default="none",
        choices=(
            "none",
            "node-loss",
            "region-outage",
            "correlated-upsets",
            "cache-storm",
            "latency-spike",
            "rolling",
        ),
        help="injected fleet-failure schedule (engine/chaos registry); "
        "deterministic per seed",
    )
    serve.add_argument(
        "--retry-policy",
        default="none",
        choices=("none", "deadline", "aggressive"),
        help="deadline-aware re-dispatch of frames killed in flight",
    )
    serve.add_argument(
        "--spares",
        type=int,
        default=0,
        help="warm-standby spare budget (spares adopt the failed node's "
        "die seed, so pre-warmed programs activate as cache hits)",
    )
    serve.add_argument(
        "--brownout",
        default="none",
        choices=("none", "standard"),
        help="degradation-tier admission ladder under overload/capacity loss",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve through the sharded control plane with this many "
        "shards (0 = plain single-fleet path); --nodes becomes the "
        "per-shard node count",
    )
    serve.add_argument(
        "--router",
        default="rendezvous",
        choices=("rendezvous", "hash"),
        help="tenant-to-shard routing policy (engine/router registry)",
    )
    serve.add_argument(
        "--autoscale",
        default=None,
        metavar="MIN:MAX[:WINDOW_S]",
        help="autoscale each shard's active node count between MIN and "
        "MAX, observing load every WINDOW_S simulated seconds "
        "(requires --shards)",
    )
    serve.add_argument(
        "--placement",
        default="replicate",
        choices=("replicate", "partition"),
        help="zoo placement across shards (replicate everywhere, or "
        "partition round-robin with spillover)",
    )
    serve.add_argument(
        "--check-slo",
        action="store_true",
        help="exit nonzero when any SLO class with a deadline misses the "
        "--slo-target deadline-hit rate",
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=0.95,
        help="deadline-hit target for --check-slo (default 0.95)",
    )
    _add_parallel_flags(serve)
    _add_store_flag(serve)
    serve.set_defaults(handler=_cmd_serve)
    bench = subparsers.add_parser(
        "bench",
        help="weight-programming perf bench (writes BENCH_program.json)",
    )
    bench.add_argument("--output", default="BENCH_program.json")
    bench.add_argument(
        "--quick", action="store_true", help="CI smoke mode (fewer repeats)"
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(handler=_cmd_bench)
    cache = subparsers.add_parser(
        "cache",
        help="inspect/maintain the on-disk program store (engine/store)",
    )
    cache.add_argument(
        "action",
        choices=("stats", "verify", "purge"),
        help="stats: inventory table; verify: integrity-check every "
        "entry (exit 1 on corruption); purge: remove every entry",
    )
    cache.add_argument(
        "--program-store",
        default=".program-store",
        metavar="PATH",
        help="store directory (default: .program-store)",
    )
    cache.set_defaults(handler=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
