"""Quantizers for OISA's low-bit-width first layer.

The paper trains networks whose first convolution sees **ternary (2-bit)
activations** (the VAM's {0, 1, 2} symbols) and **1-to-4-bit weights** (the
AWC's current levels).  Training uses the straight-through estimator (STE):
quantize in the forward pass, pass gradients through (with saturation
clipping) in the backward pass.

* :class:`UniformWeightQuantizer` — sign-magnitude uniform quantizer
  matching the OPC's differential rails: an ``n``-bit weight is an
  ``n``-bit *magnitude* (the AWC's ``2^n`` current levels) with the sign
  selecting the positive or negative waveguide, so the integer range is
  ``[-(2^b - 1), +(2^b - 1)]``.  ``bits == 1`` degenerates to binary
  {-1, +1} * scale, matching the paper's "[1:2]" configuration (BNN-style
  first layer).
* :class:`TernaryActivation` — maps normalised pixel intensities through
  the two VAM thresholds onto {0, 1/2, 1} (i.e. symbols {0, 1, 2} scaled to
  unit range).
* :class:`QuantConv2D` — a :class:`~repro.nn.layers.Conv2D` whose forward
  weights are fake-quantized; the float master copy receives STE gradients.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dense
from repro.util.validation import check_in_range


class UniformWeightQuantizer:
    """Symmetric uniform fake-quantizer with per-tensor scaling."""

    def __init__(self, bits: int) -> None:
        check_in_range("bits", bits, 1, 8)
        self.bits = int(bits)

    @property
    def num_positive_levels(self) -> int:
        """Number of strictly-positive integer levels (2^bits - 1)."""
        if self.bits == 1:
            return 1
        return (1 << self.bits) - 1

    def scale(self, weights: np.ndarray) -> float:
        """Per-tensor scale: max |w| mapped to the top integer level."""
        max_abs = float(np.max(np.abs(weights))) if weights.size else 0.0
        if max_abs == 0.0:
            return 1.0
        return max_abs / self.num_positive_levels

    def quantize_int(self, weights: np.ndarray) -> tuple[np.ndarray, float]:
        """Return (integer codes, scale); ``w ~ codes * scale``."""
        weights = np.asarray(weights, dtype=float)
        scale = self.scale(weights)
        if self.bits == 1:
            codes = np.where(weights >= 0.0, 1, -1)
            return codes.astype(np.int64), scale
        top = self.num_positive_levels
        codes = np.clip(np.round(weights / scale), -top, top)
        return codes.astype(np.int64), scale

    def quantize(self, weights: np.ndarray) -> np.ndarray:
        """Fake-quantize: float weights snapped onto the integer grid."""
        codes, scale = self.quantize_int(weights)
        return codes.astype(float) * scale

    def ste_grad_mask(self, weights: np.ndarray) -> np.ndarray:
        """STE clipping mask: gradients vanish outside the representable range."""
        weights = np.asarray(weights, dtype=float)
        limit = self.num_positive_levels * self.scale(weights)
        return (np.abs(weights) <= limit).astype(float)


def ternarize(
    intensities: np.ndarray,
    low_threshold: float = 1.0 / 3.0,
    high_threshold: float = 2.0 / 3.0,
) -> np.ndarray:
    """Map unit-range intensities onto ternary symbols {0, 1, 2}.

    Mirrors the VAM: one count per crossed sense-amplifier threshold.
    """
    if not (0.0 <= low_threshold < high_threshold <= 1.0):
        raise ValueError(
            f"thresholds must satisfy 0 <= low < high <= 1, got "
            f"({low_threshold}, {high_threshold})"
        )
    x = np.asarray(intensities, dtype=float)
    return (x > low_threshold).astype(np.int8) + (x > high_threshold).astype(np.int8)


class TernaryActivation:
    """Differentiable (STE) ternary activation for QAT.

    ``forward`` returns symbols scaled to {0, 0.5, 1} so downstream layers
    see unit-range inputs; ``backward`` passes gradients through inside the
    clip range [0, 1].
    """

    def __init__(
        self,
        low_threshold: float = 1.0 / 3.0,
        high_threshold: float = 2.0 / 3.0,
    ) -> None:
        if not (0.0 <= low_threshold < high_threshold <= 1.0):
            raise ValueError("invalid ternary thresholds")
        self.low_threshold = low_threshold
        self.high_threshold = high_threshold
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x >= 0.0) & (x <= 1.0)
        symbols = ternarize(x, self.low_threshold, self.high_threshold)
        return symbols.astype(float) / 2.0

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)

    def symbols(self, x: np.ndarray) -> np.ndarray:
        """Raw ternary symbols {0, 1, 2} (what the VCSEL actually emits)."""
        return ternarize(x, self.low_threshold, self.high_threshold)


class QuantConv2D(Conv2D):
    """Convolution with fake-quantized weights (QAT, STE backward).

    The float master weights live in ``self.weight``; every forward pass
    snaps them onto the ``bits``-bit grid.  An optional ``weight_transform``
    lets the hardware model inject its non-ideal level map (AWC mismatch,
    MR transmission) *after* quantization, so hardware-in-the-loop
    evaluation reuses this layer unchanged.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bits: int = 4,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = False,
        seed: int | None = None,
        weight_transform=None,
    ) -> None:
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            use_bias=use_bias,
            seed=seed,
        )
        self.quantizer = UniformWeightQuantizer(bits)
        self.weight_transform = weight_transform
        self._ste_mask: np.ndarray | None = None

    @property
    def bits(self) -> int:
        """Weight bit-width."""
        return self.quantizer.bits

    def effective_weight(self) -> np.ndarray:
        quantized = self.quantizer.quantize(self.weight.data)
        self._ste_mask = self.quantizer.ste_grad_mask(self.weight.data)
        if self.weight_transform is not None:
            quantized = self.weight_transform(quantized)
        return quantized

    def apply_weight_grad_transform(self, grad_w: np.ndarray) -> np.ndarray:
        if self._ste_mask is None:
            return grad_w
        return grad_w * self._ste_mask


class QuantDense(Dense):
    """Dense layer with fake-quantized weights (the MLP first layer).

    The OISA mapping splits each output neuron's dot product across banks
    and recombines partial sums in the VOM; numerically that is still one
    quantized matrix product, which is what this layer trains against.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bits: int = 4,
        use_bias: bool = False,
        seed: int | None = None,
        weight_transform=None,
    ) -> None:
        super().__init__(in_features, out_features, use_bias=use_bias, seed=seed)
        self.quantizer = UniformWeightQuantizer(bits)
        self.weight_transform = weight_transform
        self._ste_mask: np.ndarray | None = None

    @property
    def bits(self) -> int:
        """Weight bit-width."""
        return self.quantizer.bits

    def effective_weight(self) -> np.ndarray:
        """Quantized (and optionally hardware-transformed) weights."""
        quantized = self.quantizer.quantize(self.weight.data)
        self._ste_mask = self.quantizer.ste_grad_mask(self.weight.data)
        if self.weight_transform is not None:
            quantized = self.weight_transform(quantized)
        return quantized

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        self._effective = self.effective_weight()
        out = x @ self._effective.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_w = grad_out.T @ self._x
        if self._ste_mask is not None:
            grad_w = grad_w * self._ste_mask
        self.weight.grad += grad_w
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self._effective
