"""Mini-batch trainer with deterministic shuffling.

Small by design: the Table II experiments train several compact networks and
need nothing beyond seeded shuffling, LR schedules, loss/accuracy tracking
and batched evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Sequential
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.optim import ConstantLR, LRSchedule, Optimizer
from repro.util.rng import derive_rng


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def best_val_accuracy(self) -> float:
        """Best validation accuracy seen (0 when never evaluated)."""
        return max(self.val_accuracy, default=0.0)


class Trainer:
    """Train a :class:`~repro.nn.layers.Sequential` classifier."""

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        schedule: LRSchedule | None = None,
        loss: SoftmaxCrossEntropy | None = None,
        seed: int | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.schedule = schedule or ConstantLR(0.01)
        self.loss = loss or SoftmaxCrossEntropy()
        self._rng = derive_rng(seed, "trainer-shuffle")

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        epochs: int,
        batch_size: int = 64,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Run ``epochs`` of mini-batch SGD; returns the training curves."""
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        n = x_train.shape[0]
        if y_train.shape[0] != n:
            raise ValueError("x_train and y_train sizes differ")
        history = TrainingHistory()
        steps_per_epoch = max(n // batch_size, 1)
        total_steps = epochs * steps_per_epoch
        step = 0
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            epoch_hits = 0.0
            batches = 0
            for start in range(0, n - batch_size + 1, batch_size):
                indices = order[start : start + batch_size]
                x_batch = x_train[indices]
                y_batch = y_train[indices]
                logits = self.model.forward(x_batch, training=True)
                loss_value = self.loss.forward(logits, y_batch)
                self.optimizer.zero_grad()
                self.model.backward(self.loss.backward())
                lr = self.schedule.lr_at(step, total_steps)
                self.optimizer.step(lr)
                epoch_loss += loss_value
                epoch_hits += accuracy(logits, y_batch)
                batches += 1
                step += 1
            history.train_loss.append(epoch_loss / max(batches, 1))
            history.train_accuracy.append(epoch_hits / max(batches, 1))
            if x_val is not None and y_val is not None:
                history.val_accuracy.append(self.evaluate(x_val, y_val))
        return history

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference logits with ``training=False``."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(
                self.model.forward(x[start : start + batch_size], training=False)
            )
        return np.concatenate(outputs, axis=0)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> float:
        """Top-1 accuracy on a held-out set."""
        logits = self.predict_logits(x, batch_size=batch_size)
        return accuracy(logits, y)
