"""Pure-NumPy deep-learning substrate (replaces the paper's PyTorch stack).

Implements exactly what the paper's evaluation framework needs (Fig. 7):

* quantization-aware training of small CNNs/MLPs with straight-through
  estimators (:mod:`repro.nn.quant`),
* the network zoo used in Table II — LeNet, ResNet-18 (CIFAR variant) and
  VGG-16, all width-scalable (:mod:`repro.nn.models`),
* a mini-batch trainer with deterministic seeding (:mod:`repro.nn.train`).

Layers follow an explicit forward/backward protocol (no autograd tape);
gradients are exact and unit-tested against finite differences.
"""

from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    Parameter,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.models import build_lenet, build_mlp, build_resnet18, build_vgg16
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepLR
from repro.nn.quant import (
    QuantConv2D,
    QuantDense,
    TernaryActivation,
    UniformWeightQuantizer,
    ternarize,
)
from repro.nn.train import Trainer, TrainingHistory

__all__ = [
    "Adam",
    "AvgPool2D",
    "BatchNorm2D",
    "ConstantLR",
    "Conv2D",
    "CosineLR",
    "Dense",
    "Flatten",
    "GlobalAvgPool2D",
    "Layer",
    "MaxPool2D",
    "Parameter",
    "QuantConv2D",
    "QuantDense",
    "ReLU",
    "Residual",
    "SGD",
    "Sequential",
    "SoftmaxCrossEntropy",
    "StepLR",
    "TernaryActivation",
    "Trainer",
    "TrainingHistory",
    "UniformWeightQuantizer",
    "accuracy",
    "build_lenet",
    "build_mlp",
    "build_resnet18",
    "build_vgg16",
    "confusion_matrix",
    "ternarize",
    "top_k_accuracy",
]
