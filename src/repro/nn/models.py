"""The network zoo used by the paper's Table II.

* LeNet (MNIST-class 28x28 inputs),
* ResNet-18, CIFAR variant (3x3 stem, four 2-block stages),
* VGG-16 (13 conv + 3 dense layers).

Every builder accepts a ``width_multiplier`` so the NumPy trainer can run
the same *architectures* at laptop scale (the paper trains full-width models
on GPUs; width only rescales capacity, not the quantization behaviour under
study), and a first-layer configuration matching OISA: ternary input
activation plus a 1-to-4-bit quantized first convolution.  All later layers
stay in float, mirroring the paper's split between the in-sensor first layer
and the off-chip processor for "the 2nd-to-last layer".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.quant import QuantConv2D, QuantDense, TernaryActivation
from repro.util.rng import spawn_seeds


@dataclass(frozen=True)
class FirstLayerConfig:
    """How the sensor-facing first convolution is quantized.

    ``weight_bits = None`` disables quantization entirely (the float
    software baseline).  ``ternary_input`` applies the VAM's two-threshold
    activation to the incoming frame.
    """

    weight_bits: int | None = 4
    ternary_input: bool = True

    def __post_init__(self) -> None:
        if self.weight_bits is not None and not (1 <= self.weight_bits <= 4):
            raise ValueError(
                f"weight_bits must be in [1, 4] or None, got {self.weight_bits}"
            )

    @property
    def label(self) -> str:
        """Paper-style "[W:A]" tag, e.g. ``[4:2]`` or ``baseline``."""
        if self.weight_bits is None:
            return "baseline"
        activation_bits = 2 if self.ternary_input else 32
        return f"[{self.weight_bits}:{activation_bits}]"


class TernaryInputLayer(Layer):
    """Layer adapter around :class:`~repro.nn.quant.TernaryActivation`."""

    def __init__(self) -> None:
        self.activation = TernaryActivation()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.activation.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.activation.backward(grad_out)


def _first_conv(
    config: FirstLayerConfig,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int,
    padding: int,
    seed: int,
) -> Layer:
    if config.weight_bits is None:
        return Conv2D(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            use_bias=False,
            seed=seed,
        )
    return QuantConv2D(
        in_channels,
        out_channels,
        kernel_size,
        bits=config.weight_bits,
        stride=stride,
        padding=padding,
        use_bias=False,
        seed=seed,
    )


def _scaled(width: int, multiplier: float) -> int:
    return max(int(round(width * multiplier)), 4)


def build_lenet(
    num_classes: int = 10,
    in_channels: int = 1,
    input_size: int = 28,
    width_multiplier: float = 1.0,
    first_layer: FirstLayerConfig | None = None,
    seed: int | None = None,
) -> Sequential:
    """LeNet-5-style network for MNIST-class inputs."""
    config = first_layer or FirstLayerConfig()
    seeds = spawn_seeds(seed, 5)
    c1 = _scaled(6, width_multiplier)
    c2 = _scaled(16, width_multiplier)
    d1 = _scaled(120, width_multiplier)
    d2 = _scaled(84, width_multiplier)
    after_pool = input_size // 4  # two 2x2 pools, 'same' first conv
    layers: list[Layer] = []
    if config.ternary_input:
        layers.append(TernaryInputLayer())
    layers.extend(
        [
            _first_conv(config, in_channels, c1, 5, 1, 2, seeds[0]),
            BatchNorm2D(c1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, 5, stride=1, padding=2, seed=seeds[1]),
            BatchNorm2D(c2),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(c2 * after_pool * after_pool, d1, seed=seeds[2]),
            ReLU(),
            Dense(d1, d2, seed=seeds[3]),
            ReLU(),
            Dense(d2, num_classes, seed=seeds[4]),
        ]
    )
    return Sequential(layers)


def _basic_block(
    in_channels: int, out_channels: int, stride: int, seeds: list[int]
) -> Residual:
    main = Sequential(
        [
            Conv2D(
                in_channels,
                out_channels,
                3,
                stride=stride,
                padding=1,
                use_bias=False,
                seed=seeds[0],
            ),
            BatchNorm2D(out_channels),
            ReLU(),
            Conv2D(
                out_channels,
                out_channels,
                3,
                stride=1,
                padding=1,
                use_bias=False,
                seed=seeds[1],
            ),
            BatchNorm2D(out_channels),
        ]
    )
    shortcut: Layer | None = None
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            [
                Conv2D(
                    in_channels,
                    out_channels,
                    1,
                    stride=stride,
                    use_bias=False,
                    seed=seeds[2],
                ),
                BatchNorm2D(out_channels),
            ]
        )
    return Residual(main, shortcut)


def build_resnet18(
    num_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    first_layer: FirstLayerConfig | None = None,
    seed: int | None = None,
) -> Sequential:
    """ResNet-18 (CIFAR variant: 3x3 stem, no initial max-pool).

    Stages of [2, 2, 2, 2] basic blocks at widths (64, 128, 256, 512) times
    ``width_multiplier``, strides (1, 2, 2, 2).
    """
    config = first_layer or FirstLayerConfig()
    widths = [_scaled(w, width_multiplier) for w in (64, 128, 256, 512)]
    seeds = spawn_seeds(seed, 2 + 4 * 2 * 3)
    seed_iter = iter(seeds)

    layers: list[Layer] = []
    if config.ternary_input:
        layers.append(TernaryInputLayer())
    layers.extend(
        [
            _first_conv(config, in_channels, widths[0], 3, 1, 1, next(seed_iter)),
            BatchNorm2D(widths[0]),
            ReLU(),
        ]
    )
    in_width = widths[0]
    for stage, width in enumerate(widths):
        for block in range(2):
            stride = 2 if (stage > 0 and block == 0) else 1
            block_seeds = [next(seed_iter) for _ in range(3)]
            layers.append(_basic_block(in_width, width, stride, block_seeds))
            layers.append(ReLU())
            in_width = width
    layers.extend([GlobalAvgPool2D(), Dense(in_width, num_classes, seed=next(seed_iter))])
    return Sequential(layers)


#: VGG-16 convolutional plan: channel counts with 'M' marking 2x2 max-pools.
VGG16_PLAN: tuple = (
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M",
    512, 512, 512, "M",
)


def build_vgg16(
    num_classes: int = 100,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    first_layer: FirstLayerConfig | None = None,
    seed: int | None = None,
) -> Sequential:
    """VGG-16 for 32x32 inputs (13 conv + 3 dense layers)."""
    config = first_layer or FirstLayerConfig()
    num_convs = sum(1 for entry in VGG16_PLAN if entry != "M")
    seeds = spawn_seeds(seed, num_convs + 3)
    seed_iter = iter(seeds)

    layers: list[Layer] = []
    if config.ternary_input:
        layers.append(TernaryInputLayer())
    channels = in_channels
    first = True
    for entry in VGG16_PLAN:
        if entry == "M":
            layers.append(MaxPool2D(2))
            continue
        width = _scaled(int(entry), width_multiplier)
        if first:
            layers.append(_first_conv(config, channels, width, 3, 1, 1, next(seed_iter)))
            first = False
        else:
            layers.append(
                Conv2D(channels, width, 3, padding=1, use_bias=False, seed=next(seed_iter))
            )
        layers.extend([BatchNorm2D(width), ReLU()])
        channels = width
    hidden = _scaled(512, width_multiplier)
    layers.extend(
        [
            Flatten(),
            Dense(channels, hidden, seed=next(seed_iter)),
            ReLU(),
            Dense(hidden, hidden, seed=next(seed_iter)),
            ReLU(),
            Dense(hidden, num_classes, seed=next(seed_iter)),
        ]
    )
    return Sequential(layers)


def build_mlp(
    num_classes: int = 10,
    in_features: int = 784,
    hidden: tuple[int, ...] = (256, 128),
    width_multiplier: float = 1.0,
    first_layer: FirstLayerConfig | None = None,
    seed: int | None = None,
) -> Sequential:
    """Multi-layer perceptron with an OISA-compatible first layer.

    The paper dedicates the VOM to exactly this case: the first dense
    layer's dot products exceed one arm, so partial sums are split across
    banks and recombined.  Inputs are flattened frames in [0, 1].
    """
    config = first_layer or FirstLayerConfig()
    seeds = spawn_seeds(seed, len(hidden) + 1)
    widths = [_scaled(width, width_multiplier) for width in hidden]

    layers: list[Layer] = []
    if config.ternary_input:
        layers.append(TernaryInputLayer())
    if config.weight_bits is None:
        layers.append(Dense(in_features, widths[0], use_bias=False, seed=seeds[0]))
    else:
        layers.append(
            QuantDense(
                in_features, widths[0], bits=config.weight_bits, seed=seeds[0]
            )
        )
    layers.append(ReLU())
    previous = widths[0]
    for index, width in enumerate(widths[1:], start=1):
        layers.extend([Dense(previous, width, seed=seeds[index]), ReLU()])
        previous = width
    layers.append(Dense(previous, num_classes, seed=seeds[-1]))
    return Sequential(layers)


def find_first_quant_conv(model: Sequential) -> QuantConv2D | None:
    """Locate the sensor-facing quantized convolution, if any."""
    for layer in model:
        if isinstance(layer, QuantConv2D):
            return layer
        if isinstance(layer, Conv2D):
            return None
    return None


def set_first_layer_weight_transform(model: Sequential, transform) -> None:
    """Install a hardware weight transform on the first quantized conv.

    Raises ``ValueError`` when the model has no quantized first layer (the
    float baseline cannot run through the OISA hardware path).
    """
    conv = find_first_quant_conv(model)
    if conv is None:
        raise ValueError("model has no QuantConv2D first layer")
    conv.weight_transform = transform
