"""Array-level neural-network primitives (im2col convolution, pooling).

All tensors follow the NCHW layout.  The convolution is implemented with
``im2col`` so a conv reduces to one GEMM — the standard trick that keeps
NumPy training tractable for the network sizes Table II needs.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output ({out}) for size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pad_nchw(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW tensor."""
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold an NCHW tensor into convolution columns.

    Returns an array of shape ``(N, C * KH * KW, OH * OW)`` whose columns
    are the receptive fields of each output position.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x = pad_nchw(x, padding)

    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel_h, kernel_w), axis=(2, 3)
    )  # (N, C, H', W', KH, KW)
    windows = windows[:, :, ::stride, ::stride, :, :]
    # -> (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH*OW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        n, c * kernel_h * kernel_w, out_h * out_w
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back into an NCHW tensor (im2col adjoint).

    Overlapping positions accumulate, which is exactly the gradient of
    ``im2col``.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    reshaped = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += reshaped[
                :, :, ky, kx, :, :
            ]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    Returns ``(output, cols)``; ``cols`` is cached for the backward pass.
    ``weight`` has shape ``(F, C, KH, KW)``.
    """
    n = x.shape[0]
    f, _, kernel_h, kernel_w = weight.shape
    out_h = conv_output_size(x.shape[2], kernel_h, stride, padding)
    out_w = conv_output_size(x.shape[3], kernel_w, stride, padding)
    cols = im2col(x, kernel_h, kernel_w, stride, padding)
    flat_w = weight.reshape(f, -1)
    out = np.einsum("fk,nkp->nfp", flat_w, cols, optimize=True)
    if bias is not None:
        out += bias[None, :, None]
    return out.reshape(n, f, out_h, out_w), cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
    with_bias: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Convolution backward pass.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    n, f = grad_out.shape[:2]
    _, _, kernel_h, kernel_w = weight.shape
    grad_flat = grad_out.reshape(n, f, -1)  # (N, F, P)
    grad_weight = np.einsum("nfp,nkp->fk", grad_flat, cols, optimize=True).reshape(
        weight.shape
    )
    grad_bias = grad_flat.sum(axis=(0, 2)) if with_bias else None
    flat_w = weight.reshape(f, -1)
    grad_cols = np.einsum("fk,nfp->nkp", flat_w, grad_flat, optimize=True)
    grad_x = col2im(grad_cols, x_shape, kernel_h, kernel_w, stride, padding)
    return grad_x, grad_weight, grad_bias


def maxpool2d_forward(
    x: np.ndarray, pool: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling forward; returns ``(output, argmax_mask_indices)``."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, pool, stride, 0)
    out_w = conv_output_size(w, pool, stride, 0)
    windows = np.lib.stride_tricks.sliding_window_view(x, (pool, pool), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    flat = windows.reshape(n, c, out_h, out_w, pool * pool)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out, arg


def maxpool2d_backward(
    grad_out: np.ndarray,
    arg: np.ndarray,
    x_shape: tuple[int, int, int, int],
    pool: int,
    stride: int,
) -> np.ndarray:
    """Max pooling backward: route gradients to the argmax positions."""
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    ky = arg // pool
    kx = arg % pool
    oy = np.arange(out_h)[None, None, :, None]
    ox = np.arange(out_w)[None, None, None, :]
    rows = oy * stride + ky
    cols = ox * stride + kx
    nn = np.arange(n)[:, None, None, None]
    cc = np.arange(c)[None, :, None, None]
    np.add.at(grad_x, (nn, cc, rows, cols), grad_out)
    return grad_x


def avgpool2d_forward(x: np.ndarray, pool: int, stride: int) -> np.ndarray:
    """Average pooling forward."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (pool, pool), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    return windows.mean(axis=(-2, -1))


def avgpool2d_backward(
    grad_out: np.ndarray, x_shape: tuple[int, int, int, int], pool: int, stride: int
) -> np.ndarray:
    """Average pooling backward: spread gradients uniformly over windows."""
    grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    share = grad_out / (pool * pool)
    for ky in range(pool):
        for kx in range(pool):
            grad_x[
                :,
                :,
                ky : ky + stride * out_h : stride,
                kx : kx + stride * out_w : stride,
            ] += share
    return grad_x


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable row softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
