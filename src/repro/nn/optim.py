"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Parameter
from repro.util.validation import check_non_negative, check_positive


class LRSchedule:
    """Learning-rate schedule interface."""

    def lr_at(self, step: int, total_steps: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        check_positive("lr", lr)
        self.lr = lr

    def lr_at(self, step: int, total_steps: int) -> float:
        return self.lr


class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        check_positive("lr", lr)
        check_positive("step_size", step_size)
        check_positive("gamma", gamma)
        self.lr = lr
        self.step_size = int(step_size)
        self.gamma = gamma

    def lr_at(self, step: int, total_steps: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class CosineLR(LRSchedule):
    """Cosine decay from ``lr`` to ``min_lr`` over the training run."""

    def __init__(self, lr: float, min_lr: float = 0.0) -> None:
        check_positive("lr", lr)
        check_non_negative("min_lr", min_lr)
        if min_lr > lr:
            raise ValueError("min_lr must not exceed lr")
        self.lr = lr
        self.min_lr = min_lr

    def lr_at(self, step: int, total_steps: int) -> float:
        if total_steps <= 1:
            return self.lr
        progress = min(step / (total_steps - 1), 1.0)
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: list[Parameter], weight_decay: float = 0.0) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        check_non_negative("weight_decay", weight_decay)
        self.parameters = parameters
        self.weight_decay = weight_decay

    def step(self, lr: float) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        parameters: list[Parameter],
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, weight_decay)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self, lr: float) -> None:
        check_non_negative("lr", lr)
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity -= lr * grad
            parameter.data += velocity


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, weight_decay)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]
        self._t = 0

    def step(self, lr: float) -> None:
        check_non_negative("lr", lr)
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
