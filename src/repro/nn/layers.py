"""Layer zoo with explicit forward/backward passes.

Every layer implements::

    y = layer.forward(x, training=...)
    grad_x = layer.backward(grad_y)

``backward`` must be called after the matching ``forward`` (layers cache
what they need).  Parameters are :class:`Parameter` objects exposing
``data``/``grad`` arrays that optimizers update in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import functional as F
from repro.util.rng import derive_rng


@dataclass
class Parameter:
    """A trainable tensor with its accumulated gradient."""

    data: np.ndarray
    grad: np.ndarray = field(init=False)
    name: str = ""

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.data.size)


class Layer:
    """Base layer: parameter-free identity by default."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (possibly empty)."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero every parameter gradient."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(parameter.size for parameter in self.parameters())


def _he_init(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class Conv2D(Layer):
    """2D convolution (NCHW) backed by im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        seed: int | None = None,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ValueError("conv dimensions must be positive")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = derive_rng(seed, f"conv-{in_channels}-{out_channels}-{kernel_size}")
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _he_init((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng),
            name="conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if use_bias else None
        self._cache: tuple | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def effective_weight(self) -> np.ndarray:
        """Weight used in the forward pass; hook point for quantization."""
        return self.weight.data

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        weight = self.effective_weight()
        bias = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(x, weight, bias, self.stride, self.padding)
        self._cache = (x.shape, cols, weight)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols, weight = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_out, cols, x_shape, weight, self.stride, self.padding,
            with_bias=self.bias is not None,
        )
        self.weight.grad += self.apply_weight_grad_transform(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.grad += grad_b
        return grad_x

    def apply_weight_grad_transform(self, grad_w: np.ndarray) -> np.ndarray:
        """Hook for quantizers (straight-through estimators)."""
        return grad_w


class Dense(Layer):
    """Fully-connected layer ``y = x W^T + b`` on (N, D) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        seed: int | None = None,
    ) -> None:
        if min(in_features, out_features) < 1:
            raise ValueError("dense dimensions must be positive")
        rng = derive_rng(seed, f"dense-{in_features}-{out_features}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _he_init((out_features, in_features), in_features, rng), name="dense.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="dense.bias") if use_bias else None
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad_out.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)


class BatchNorm2D(Layer):
    """Batch normalisation over (N, H, W) per channel with running stats."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        if channels < 1:
            raise ValueError(f"channels must be positive, got {channels}")
        if not (0.0 < momentum <= 1.0):
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels), name="bn.gamma")
        self.beta = Parameter(np.zeros(channels), name="bn.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: tuple | None = None

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, training, x.shape)
        return (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, training, shape = self._cache
        n, _, h, w = shape
        m = n * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        gamma = self.gamma.data[None, :, None, None]
        if not training:
            return grad_out * gamma * inv_std[None, :, None, None]
        grad_xhat = grad_out * gamma
        sum_grad = grad_xhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_xhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (grad_xhat - sum_grad / m - x_hat * sum_grad_xhat / m)
        )


class MaxPool2D(Layer):
    """Max pooling with square window."""

    def __init__(self, pool: int = 2, stride: int | None = None) -> None:
        if pool < 1:
            raise ValueError(f"pool must be positive, got {pool}")
        self.pool = pool
        self.stride = stride if stride is not None else pool
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out, arg = F.maxpool2d_forward(x, self.pool, self.stride)
        self._cache = (arg, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        arg, x_shape = self._cache
        return F.maxpool2d_backward(grad_out, arg, x_shape, self.pool, self.stride)


class AvgPool2D(Layer):
    """Average pooling with square window."""

    def __init__(self, pool: int = 2, stride: int | None = None) -> None:
        if pool < 1:
            raise ValueError(f"pool must be positive, got {pool}")
        self.pool = pool
        self.stride = stride if stride is not None else pool
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return F.avgpool2d_forward(x, self.pool, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return F.avgpool2d_backward(grad_out, self._x_shape, self.pool, self.stride)


class GlobalAvgPool2D(Layer):
    """Global average pooling: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), self._x_shape
        ).copy()


class Flatten(Layer):
    """Flatten all axes after the batch axis."""

    def __init__(self) -> None:
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = list(layers)

    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]


class Residual(Layer):
    """Residual connection: ``y = main(x) + shortcut(x)``.

    ``shortcut`` defaults to identity; pass a projection (1x1 conv + BN)
    when shapes change, as in ResNet downsampling blocks.
    """

    def __init__(self, main: Layer, shortcut: Layer | None = None) -> None:
        self.main = main
        self.shortcut = shortcut

    def parameters(self) -> list[Parameter]:
        params = list(self.main.parameters())
        if self.shortcut is not None:
            params.extend(self.shortcut.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        main_out = self.main.forward(x, training=training)
        skip_out = (
            self.shortcut.forward(x, training=training)
            if self.shortcut is not None
            else x
        )
        if main_out.shape != skip_out.shape:
            raise ValueError(
                f"residual shape mismatch: main {main_out.shape} vs "
                f"shortcut {skip_out.shape}"
            )
        return main_out + skip_out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_main = self.main.backward(grad_out)
        if self.shortcut is not None:
            grad_skip = self.shortcut.backward(grad_out)
        else:
            grad_skip = grad_out
        return grad_main + grad_skip
