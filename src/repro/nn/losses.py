"""Loss functions for classifier training."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.util.validation import check_probability


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy with integer labels and optional smoothing.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits (already divided by the batch size).
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        check_probability("label_smoothing", label_smoothing)
        self.label_smoothing = label_smoothing
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
            )
        n, k = logits.shape
        if labels.min() < 0 or labels.max() >= k:
            raise ValueError("labels out of range")
        probs = softmax(logits)
        targets = np.full((n, k), self.label_smoothing / k)
        targets[np.arange(n), labels] += 1.0 - self.label_smoothing
        self._cache = (probs, targets)
        log_probs = np.log(np.clip(probs, 1e-12, None))
        return float(-(targets * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, targets = self._cache
        return (probs - targets) / probs.shape[0]
