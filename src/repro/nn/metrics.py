"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1] from logits (N, K) and integer labels (N,)."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError("logits must be (N, K) and labels (N,)")
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy in [0, 1]."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(
    logits: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Row-true, column-predicted confusion counts."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=int)
    predictions = logits.argmax(axis=1)
    k = num_classes if num_classes is not None else logits.shape[1]
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
