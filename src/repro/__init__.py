"""OISA reproduction: Optical In-Sensor Accelerator (DATE 2024).

A full-system, device-to-architecture reproduction of Morsali et al.,
*"OISA: Architecting an Optical In-Sensor Accelerator for Efficient Visual
Computing"* — see DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quick start::

    import numpy as np
    from repro import OISAAccelerator

    oisa = OISAAccelerator(seed=0)
    weights = np.random.default_rng(0).normal(size=(64, 3, 3, 3)) * 0.1
    oisa.program_conv(weights, padding=1)
    frame = np.random.default_rng(1).uniform(0, 1, (3, 128, 128))
    result = oisa.process_frame(frame)
    print(result.features.shape, oisa.performance_summary())

Subpackages
-----------
``repro.core``
    The paper's contribution: config, mapping, OPC, VAM, AWC, VOM,
    controller, energy model, accelerator facade.
``repro.photonics`` / ``repro.circuits``
    Device substrates (microrings, VCSELs, photodiodes; pixels, sense
    amps, the AWC ladder) replacing Lumerical / Cadence.
``repro.nn`` / ``repro.datasets``
    NumPy QAT deep-learning substrate and synthetic dataset stand-ins
    replacing PyTorch / torchvision.
``repro.baselines``
    Crosslight-like, AppCiP-like and DaDianNao-like comparators plus the
    Table I literature registry.
``repro.sim`` / ``repro.analysis``
    The in-house latency/power simulator (with the platform registry in
    ``repro.sim.platforms``), the Fig. 7 accuracy loop, and one harness
    per paper table/figure.
``repro.engine``
    The batched frame-serving engine: weight-program cache plus the
    micro-batched multi-node ``FrameServer``.
"""

from repro.core import (
    OISAAccelerator,
    OISAConfig,
    OISAEnergyModel,
    OpticalProcessingCore,
)

__version__ = "1.0.0"

__all__ = [
    "OISAAccelerator",
    "OISAConfig",
    "OISAEnergyModel",
    "OpticalProcessingCore",
    "__version__",
]
