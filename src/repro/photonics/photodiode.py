"""Photodiode and balanced-photodiode (BPD) readout.

At the end of each OISA arm two photodiodes subtract the "positive-weight"
and "negative-weight" waveguide powers (Fig. 2), converting the optical dot
product into a differential photocurrent.  The model covers:

* responsivity-based photocurrent,
* shot noise ``sigma_sh^2 = 2 q R (P+ + P-) B``,
* thermal (Johnson) noise of the load/TIA ``sigma_th^2 = 4 k T B / R_L``,
* conversion to an output voltage through a transimpedance gain.

Default device constants follow the germanium waveguide photodiodes used by
ROBIN (Sunny et al., ACM TECS 2021 — the paper's BPD reference [17]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_rng
from repro.util.units import (
    ELEMENTARY_CHARGE_C,
    GHZ,
    KB_J_PER_K,
    ROOM_TEMPERATURE_K,
)
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Photodiode:
    """Single photodiode with shot/thermal noise."""

    responsivity_a_per_w: float = 1.1
    bandwidth_hz: float = 25.0 * GHZ
    dark_current_a: float = 40.0e-9
    load_resistance_ohm: float = 1.0e4
    temperature_k: float = ROOM_TEMPERATURE_K

    def __post_init__(self) -> None:
        check_positive("responsivity_a_per_w", self.responsivity_a_per_w)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_non_negative("dark_current_a", self.dark_current_a)
        check_positive("load_resistance_ohm", self.load_resistance_ohm)
        check_positive("temperature_k", self.temperature_k)

    def photocurrent_a(self, optical_power_w: np.ndarray | float) -> np.ndarray:
        """Mean photocurrent [A] for incident optical power [W]."""
        power = np.asarray(optical_power_w, dtype=float)
        if (power < 0).any():
            raise ValueError("optical power must be non-negative")
        return np.asarray(self.responsivity_a_per_w * power + self.dark_current_a)

    def shot_noise_sigma_a(self, optical_power_w: float) -> float:
        """Shot-noise RMS current [A] at the given incident power."""
        current = float(self.photocurrent_a(optical_power_w))
        return float(
            np.sqrt(2.0 * ELEMENTARY_CHARGE_C * current * self.bandwidth_hz)
        )

    def thermal_noise_sigma_a(self) -> float:
        """Johnson-noise RMS current [A] of the load resistance."""
        return float(
            np.sqrt(
                4.0
                * KB_J_PER_K
                * self.temperature_k
                * self.bandwidth_hz
                / self.load_resistance_ohm
            )
        )


@dataclass(frozen=True)
class BalancedPhotodiode:
    """Differential pair of photodiodes implementing optical subtraction.

    ``read`` returns the differential photocurrent for (P+, P-) pairs with
    optional sampled noise; ``snr`` reports the small-signal signal-to-noise
    ratio the architecture uses to bound the arm's effective bit resolution.
    """

    photodiode: Photodiode = Photodiode()
    tia_gain_ohm: float = 5.0e3

    def __post_init__(self) -> None:
        check_positive("tia_gain_ohm", self.tia_gain_ohm)

    def differential_current_a(
        self,
        positive_power_w: np.ndarray | float,
        negative_power_w: np.ndarray | float,
    ) -> np.ndarray:
        """Noise-free differential photocurrent [A]."""
        pos = self.photodiode.photocurrent_a(positive_power_w)
        neg = self.photodiode.photocurrent_a(negative_power_w)
        return np.asarray(pos - neg)

    def noise_sigma_a(
        self, positive_power_w: float, negative_power_w: float
    ) -> float:
        """Total RMS noise current [A] for one differential read.

        Shot noise depends on the *sum* of the two branch powers (the two
        diodes fluctuate independently); thermal noise enters once per
        branch.
        """
        total_power = positive_power_w + negative_power_w
        shot = self.photodiode.shot_noise_sigma_a(total_power)
        thermal = self.photodiode.thermal_noise_sigma_a() * np.sqrt(2.0)
        return float(np.sqrt(shot**2 + thermal**2))

    def read(
        self,
        positive_power_w: np.ndarray,
        negative_power_w: np.ndarray,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> np.ndarray:
        """Sample noisy differential photocurrents [A].

        Vectorised over arbitrary array shapes; per-element noise sigma is
        computed from each element's branch powers.
        """
        pos = np.asarray(positive_power_w, dtype=float)
        neg = np.asarray(negative_power_w, dtype=float)
        mean = self.differential_current_a(pos, neg)
        total = pos + neg
        shot_sq = (
            2.0
            * ELEMENTARY_CHARGE_C
            * (self.photodiode.responsivity_a_per_w * total + 2 * self.photodiode.dark_current_a)
            * self.photodiode.bandwidth_hz
        )
        thermal_sq = 2.0 * self.photodiode.thermal_noise_sigma_a() ** 2
        sigma = np.sqrt(shot_sq + thermal_sq)
        generator = rng if rng is not None else derive_rng(seed, "bpd-read")
        return np.asarray(mean + generator.normal(0.0, 1.0, size=mean.shape) * sigma)

    def output_voltage_v(self, differential_current_a: np.ndarray | float) -> np.ndarray:
        """Convert differential current to a TIA output voltage [V]."""
        return np.asarray(
            np.asarray(differential_current_a, dtype=float) * self.tia_gain_ohm
        )

    def snr(self, positive_power_w: float, negative_power_w: float) -> float:
        """Signal-to-noise ratio (linear) of one differential read."""
        signal = abs(
            float(self.differential_current_a(positive_power_w, negative_power_w))
        )
        sigma = self.noise_sigma_a(positive_power_w, negative_power_w)
        return signal / sigma if sigma > 0 else float("inf")

    def effective_bits(self, full_scale_power_w: float) -> float:
        """Effective number of bits resolvable at a full-scale input.

        Standard ENOB formula ``(SNR_dB - 1.76) / 6.02`` with the SNR taken
        at full scale against the zero-signal noise floor.  The paper tunes
        devices so this lands near 4 bits.
        """
        snr = self.snr(full_scale_power_w, 0.0)
        if snr <= 1.0:
            return 0.0
        snr_db = 20.0 * np.log10(snr)
        return max((snr_db - 1.76) / 6.02, 0.0)
