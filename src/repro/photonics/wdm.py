"""Wavelength-division multiplexing grid and inter-channel crosstalk.

Inside an OISA arm, each of the (up to) 10 MRs is tuned near a distinct
wavelength channel.  Because MR resonances have Lorentzian tails, the MR
assigned to channel *j* also slightly attenuates the light of channel *i*;
the product of those parasitic attenuations is the arm's crosstalk error.
``crosstalk_matrix`` captures exactly that: entry ``(i, j)`` is the power
transmission channel *i* experiences from the ring serving channel *j*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.util.units import NM
from repro.util.validation import check_positive


@dataclass(frozen=True)
class WdmGrid:
    """A uniform wavelength grid centred on the MR design wavelength.

    The paper's arm holds 10 MRs; with a measured FSR of ~18 nm a channel
    spacing of 1.6 nm (≈200 GHz) keeps all channels within one FSR while
    leaving several FWHM (~0.31 nm at Q = 5000) between neighbours.
    """

    center_wavelength_m: float = 1550.0 * NM
    channel_spacing_m: float = 1.6 * NM
    num_channels: int = 10

    def __post_init__(self) -> None:
        check_positive("center_wavelength_m", self.center_wavelength_m)
        check_positive("channel_spacing_m", self.channel_spacing_m)
        if self.num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {self.num_channels}")

    def wavelengths_m(self) -> np.ndarray:
        """Channel wavelengths [m], symmetric around the grid centre."""
        offsets = np.arange(self.num_channels) - (self.num_channels - 1) / 2.0
        return self.center_wavelength_m + offsets * self.channel_spacing_m

    def channel_detunings_m(self, channel: int) -> np.ndarray:
        """Detuning of every channel relative to ``channel`` [m]."""
        wavelengths = self.wavelengths_m()
        return wavelengths - wavelengths[channel]

    def span_m(self) -> float:
        """Total wavelength span of the grid [m]."""
        return (self.num_channels - 1) * self.channel_spacing_m


def crosstalk_matrix(
    grid: WdmGrid,
    ring: MicroringResonator | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Power-transmission matrix ``X[i, j]`` of ring *j* seen by channel *i*.

    Parameters
    ----------
    grid:
        The wavelength grid; one ring per channel.
    ring:
        Prototype resonator used for every channel (the arm replicates one
        design).  Defaults to the paper's Q≈5000 device.
    weights:
        Optional per-ring target transmissions in ``[T_min, 1]``.  When
        given, ring *j* is detuned to realise ``weights[j]`` on its own
        channel, and its Lorentzian tail is evaluated on every other channel.
        When omitted all rings sit exactly on their channel (weight =
        ``T_min``).

    Returns
    -------
    numpy.ndarray
        ``(num_channels, num_channels)`` matrix; the diagonal holds each
        ring's own (weighted) transmission, off-diagonals the parasitic
        attenuation of neighbouring channels.
    """
    prototype = ring or MicroringResonator()
    n = grid.num_channels
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(
                f"weights must have shape ({n},), got {weights.shape}"
            )
        shifts = np.asarray(prototype.detuning_for_transmission(weights))
    else:
        shifts = np.zeros(n)

    # Detuning of channel i from ring j's *tuned* resonance position.
    wavelengths = grid.wavelengths_m()
    detunings = wavelengths[:, None] - (wavelengths[None, :] + shifts[None, :])
    return prototype.lorentzian_transmission(detunings)


def crosstalk_matrices(
    grid: WdmGrid,
    weights: np.ndarray,
    ring: MicroringResonator | None = None,
) -> np.ndarray:
    """Batched :func:`crosstalk_matrix` over a stack of arms.

    ``weights`` is ``(..., num_channels)`` — one per-ring transmission
    vector per arm; any number of leading batch dimensions is allowed.
    Returns the ``(..., num_channels, num_channels)`` Lorentzian-tail
    tensor whose entry ``[..., i, j]`` is the transmission channel *i*
    experiences from ring *j* of that arm.  Elementwise the float ops are
    exactly :func:`crosstalk_matrix`'s, just broadcast — results are
    bit-identical to the arm-by-arm loop.
    """
    prototype = ring or MicroringResonator()
    n = grid.num_channels
    weights = np.asarray(weights, dtype=float)
    if weights.ndim < 1 or weights.shape[-1] != n:
        raise ValueError(
            f"weights must have shape (..., {n}), got {weights.shape}"
        )
    shifts = np.asarray(prototype.detuning_for_transmission(weights))
    wavelengths = grid.wavelengths_m()
    detunings = wavelengths[:, None] - (wavelengths[None, :] + shifts[..., None, :])
    return prototype.lorentzian_transmission(detunings)


def effective_arm_transmission(
    grid: WdmGrid,
    weights: np.ndarray,
    ring: MicroringResonator | None = None,
) -> np.ndarray:
    """Per-channel transmission of a whole arm including crosstalk.

    Channel *i* is attenuated by *every* ring in the arm, so its effective
    weight is ``prod_j X[i, j]`` — the diagonal (intended weight) times the
    accumulated parasitic tails.  The architecture layer compares this
    against the ideal ``weights`` to quantify crosstalk-induced weight error.
    """
    matrix = crosstalk_matrix(grid, ring=ring, weights=np.asarray(weights, float))
    return matrix.prod(axis=1)


def effective_arm_transmissions(
    grid: WdmGrid,
    weights: np.ndarray,
    ring: MicroringResonator | None = None,
) -> np.ndarray:
    """Batched :func:`effective_arm_transmission` over ``(..., n)`` arms.

    One broadcasted tail tensor and one product reduction replace the
    per-arm Python loop; the reduction runs over the same contiguous
    ``num_channels`` axis in the same order, so results are bit-identical.
    """
    matrices = crosstalk_matrices(grid, weights, ring=ring)
    return matrices.prod(axis=-1)
