"""VCSEL model and the ternary non-return-to-zero (NRZ) encoding.

The VCSEL Activation Modulator (VAM, Fig. 3 of the paper) drives one VCSEL
per pixel column with a bias current selected by two sense-amplifier outputs,
producing *three* optical power levels that encode the ternary activation
{0, 1, 2}.  Crucially the VCSEL is never switched fully off: a standing bias
keeps it above threshold ("non-returning-to-zero") to avoid the warm-up
energy and delay of a cold start (paper cites Breuer et al. [24]).

The model here is the standard piecewise-linear L-I curve:

``P_opt = eta_slope * (I - I_th)`` for ``I > I_th``, else ~0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import MA, UA
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Vcsel:
    """Piecewise-linear VCSEL with electrical-power accounting.

    Default numbers follow the flip-chip-bonded C-band VCSEL of Kaur et al.
    (ECOC 2015, the paper's reference [30]): threshold ~1 mA, slope
    efficiency ~0.3 W/A, forward voltage ~1.8 V, relaxation-limited warm-up
    of a few nanoseconds when started from cold.
    """

    threshold_current_a: float = 0.15 * MA
    slope_efficiency_w_per_a: float = 0.3
    forward_voltage_v: float = 1.8
    warmup_time_s: float = 2.0e-9
    warmup_energy_j: float = 0.7e-12

    def __post_init__(self) -> None:
        check_positive("threshold_current_a", self.threshold_current_a)
        check_positive("slope_efficiency_w_per_a", self.slope_efficiency_w_per_a)
        check_positive("forward_voltage_v", self.forward_voltage_v)
        check_non_negative("warmup_time_s", self.warmup_time_s)
        check_non_negative("warmup_energy_j", self.warmup_energy_j)

    def optical_power_w(self, current_a: np.ndarray | float) -> np.ndarray:
        """Emitted optical power [W] for drive current [A] (L-I curve)."""
        current = np.asarray(current_a, dtype=float)
        above = np.clip(current - self.threshold_current_a, 0.0, None)
        return np.asarray(self.slope_efficiency_w_per_a * above)

    def electrical_power_w(self, current_a: np.ndarray | float) -> np.ndarray:
        """Electrical power drawn from the driver [W] (``I * V_f``)."""
        return np.asarray(np.asarray(current_a, dtype=float) * self.forward_voltage_v)

    def current_for_power(self, optical_power_w: float) -> float:
        """Drive current [A] needed for a target optical power [W]."""
        check_non_negative("optical_power_w", optical_power_w)
        return self.threshold_current_a + optical_power_w / self.slope_efficiency_w_per_a


@dataclass(frozen=True)
class TernaryVcselEncoder:
    """Maps ternary symbols {0, 1, 2} onto three VCSEL power levels.

    ``bias_current_a`` implements the always-on NRZ floor (symbol 0 still
    emits a small optical power, which the balanced-photodiode subtraction
    cancels in the differential arm).  ``step_current_a`` is the increment
    contributed by each of the S1/S2 switch transistors in the driver.
    """

    vcsel: Vcsel = Vcsel()
    bias_current_a: float = 0.2 * MA
    step_current_a: float = 250.0 * UA

    def __post_init__(self) -> None:
        if self.bias_current_a < self.vcsel.threshold_current_a:
            raise ValueError(
                "NRZ bias current must keep the VCSEL above threshold: "
                f"bias {self.bias_current_a} A < threshold "
                f"{self.vcsel.threshold_current_a} A"
            )
        check_positive("step_current_a", self.step_current_a)

    def drive_current_a(self, symbols: np.ndarray | int) -> np.ndarray:
        """Drive current [A] for ternary ``symbols`` in {0, 1, 2}."""
        symbols = np.asarray(symbols)
        if symbols.size and (symbols.min() < 0 or symbols.max() > 2):
            raise ValueError("ternary symbols must lie in {0, 1, 2}")
        return np.asarray(self.bias_current_a + symbols * self.step_current_a)

    def optical_power_w(self, symbols: np.ndarray | int) -> np.ndarray:
        """Optical power [W] emitted for ternary ``symbols``."""
        return self.vcsel.optical_power_w(self.drive_current_a(symbols))

    def power_levels_w(self) -> np.ndarray:
        """The three optical power levels [W] for symbols (0, 1, 2)."""
        return self.optical_power_w(np.arange(3))

    def symbol_energy_j(self, symbol: int, symbol_time_s: float) -> float:
        """Electrical energy [J] to hold ``symbol`` for ``symbol_time_s``."""
        check_positive("symbol_time_s", symbol_time_s)
        current = float(self.drive_current_a(symbol))
        return float(self.vcsel.electrical_power_w(current)) * symbol_time_s

    def mean_symbol_power_w(self, symbol_probabilities=(1 / 3, 1 / 3, 1 / 3)) -> float:
        """Average electrical power [W] over a ternary symbol distribution."""
        probs = np.asarray(symbol_probabilities, dtype=float)
        if probs.shape != (3,) or abs(probs.sum() - 1.0) > 1e-9 or (probs < 0).any():
            raise ValueError("symbol_probabilities must be 3 non-negative values summing to 1")
        currents = self.drive_current_a(np.arange(3))
        return float((self.vcsel.electrical_power_w(currents) * probs).sum())

    def rz_symbol_energy_j(self, symbol: int, symbol_time_s: float) -> float:
        """Energy [J] for a return-to-zero scheme (ablation comparator).

        RZ turns the VCSEL off between symbols, so every non-zero symbol
        pays the cold-start warm-up energy and the bias no longer idles.
        Used by the NRZ-vs-RZ ablation bench to show why the paper keeps the
        laser biased on.
        """
        check_positive("symbol_time_s", symbol_time_s)
        if symbol == 0:
            return 0.0
        current = float(self.drive_current_a(symbol))
        hold = float(self.vcsel.electrical_power_w(current)) * symbol_time_s
        return hold + self.vcsel.warmup_energy_j
