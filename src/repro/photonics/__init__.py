"""Silicon-photonics device substrate for OISA.

This package replaces the paper's Lumerical device work with closed-form
coupled-mode-theory models.  It provides everything the architecture layer
consumes:

* :mod:`repro.photonics.microring` — all-pass microring resonator (MR)
  transmission, Q-factor, FWHM, free spectral range and resonance tuning.
* :mod:`repro.photonics.wdm` — wavelength grids and the inter-channel
  crosstalk matrix of an arm of MRs.
* :mod:`repro.photonics.vcsel` — VCSEL L-I behaviour and the ternary
  non-return-to-zero bias scheme used by the activation modulator.
* :mod:`repro.photonics.photodiode` — photodiode / balanced-photodiode
  readout with shot and thermal noise.
* :mod:`repro.photonics.waveguide` — loss budget along an arm.
* :mod:`repro.photonics.tuning` — thermo-optic / electro-optic hybrid tuning
  power and latency.
* :mod:`repro.photonics.noise` — composable noise injectors applied to
  photonic dot products.
"""

from repro.photonics.microring import MicroringDesign, MicroringResonator
from repro.photonics.noise import (
    CompositeNoise,
    CrosstalkNoise,
    FixedPatternNoise,
    GaussianReadNoise,
    NoiseModel,
    RelativeIntensityNoise,
)
from repro.photonics.photodiode import BalancedPhotodiode, Photodiode
from repro.photonics.tuning import HybridTuning, TuningBudget
from repro.photonics.vcsel import TernaryVcselEncoder, Vcsel
from repro.photonics.waveguide import ArmLossBudget, Waveguide
from repro.photonics.wdm import (
    WdmGrid,
    crosstalk_matrices,
    crosstalk_matrix,
    effective_arm_transmission,
    effective_arm_transmissions,
)

__all__ = [
    "ArmLossBudget",
    "BalancedPhotodiode",
    "CompositeNoise",
    "CrosstalkNoise",
    "FixedPatternNoise",
    "GaussianReadNoise",
    "HybridTuning",
    "MicroringDesign",
    "MicroringResonator",
    "NoiseModel",
    "Photodiode",
    "RelativeIntensityNoise",
    "TernaryVcselEncoder",
    "TuningBudget",
    "Vcsel",
    "Waveguide",
    "WdmGrid",
    "crosstalk_matrices",
    "crosstalk_matrix",
    "effective_arm_transmission",
    "effective_arm_transmissions",
]
