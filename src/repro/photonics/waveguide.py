"""Waveguide propagation and the per-arm optical loss budget.

OISA routes each VCSEL's light through a splitter/coupler, down a bus
waveguide past (up to) 10 MRs, and into a balanced photodiode (Fig. 2).  The
architecture model only needs the *aggregate* power penalty of that path —
this module assembles it from standard silicon-photonics loss constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import db_to_linear
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Waveguide:
    """Straight silicon strip waveguide loss model."""

    propagation_loss_db_per_cm: float = 2.0
    bend_loss_db: float = 0.01

    def __post_init__(self) -> None:
        check_non_negative("propagation_loss_db_per_cm", self.propagation_loss_db_per_cm)
        check_non_negative("bend_loss_db", self.bend_loss_db)

    def propagation_loss_db(self, length_m: float) -> float:
        """Propagation loss [dB] over ``length_m``."""
        check_non_negative("length_m", length_m)
        return self.propagation_loss_db_per_cm * (length_m * 100.0)

    def transmission(self, length_m: float, num_bends: int = 0) -> float:
        """Linear power transmission over a path with ``num_bends`` bends."""
        if num_bends < 0:
            raise ValueError(f"num_bends must be non-negative, got {num_bends}")
        loss_db = self.propagation_loss_db(length_m) + num_bends * self.bend_loss_db
        return db_to_linear(-loss_db)


@dataclass(frozen=True)
class ArmLossBudget:
    """End-to-end loss budget of one OISA arm.

    Components (all in dB):

    * ``coupler_loss_db`` — VCSEL-to-chip grating/edge coupler (paper ref
      [30] reports ~1.5 dB for laser-ablated SU8 prism flip-chip bonding);
    * ``splitter_loss_db`` — power splitter feeding the arm;
    * ``per_ring_insertion_db`` — off-resonance insertion loss each MR adds
      to the bus;
    * ``mux_loss_db`` — wavelength multiplexer combining the pixel VCSELs;
    * waveguide propagation over ``arm_length_m``.
    """

    waveguide: Waveguide = Waveguide()
    coupler_loss_db: float = 1.5
    splitter_loss_db: float = 0.3
    mux_loss_db: float = 0.5
    per_ring_insertion_db: float = 0.05
    arm_length_m: float = 500e-6

    def __post_init__(self) -> None:
        check_non_negative("coupler_loss_db", self.coupler_loss_db)
        check_non_negative("splitter_loss_db", self.splitter_loss_db)
        check_non_negative("mux_loss_db", self.mux_loss_db)
        check_non_negative("per_ring_insertion_db", self.per_ring_insertion_db)
        check_positive("arm_length_m", self.arm_length_m)

    def total_loss_db(self, num_rings: int) -> float:
        """Total path loss [dB] for an arm holding ``num_rings`` MRs."""
        if num_rings < 0:
            raise ValueError(f"num_rings must be non-negative, got {num_rings}")
        return (
            self.coupler_loss_db
            + self.splitter_loss_db
            + self.mux_loss_db
            + num_rings * self.per_ring_insertion_db
            + self.waveguide.propagation_loss_db(self.arm_length_m)
        )

    def transmission(self, num_rings: int) -> float:
        """Linear power transmission of the arm path."""
        return db_to_linear(-self.total_loss_db(num_rings))

    def required_laser_power_w(
        self, detector_power_w: float, num_rings: int
    ) -> float:
        """Laser power [W] needed so ``detector_power_w`` reaches the BPD."""
        check_positive("detector_power_w", detector_power_w)
        return detector_power_w / self.transmission(num_rings)
