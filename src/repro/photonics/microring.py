"""All-pass microring resonator (MR) model.

The paper designs an MR with a 5 um radius and a 760 nm ring waveguide width
(Section III, "MR Device Engineering"), reporting a quality factor of roughly
5000 — deliberately *low* so that the resonance is broad enough to carry
multi-bit weights robustly.  Here we model the MR with standard coupled-mode
theory (Bogaerts et al., "Silicon microring resonators", Laser Photonics
Rev. 2012):

* through-port power transmission
  ``T(phi) = (a^2 - 2 r a cos(phi) + r^2) / (1 - 2 r a cos(phi) + (r a)^2)``
  with self-coupling ``r``, single-pass amplitude ``a`` and round-trip phase
  ``phi = 2 pi n_eff L / lambda``;
* free spectral range ``FSR = lambda^2 / (n_g L)``;
* full width at half maximum ``FWHM = (1 - r a) lambda^2 / (pi n_g L sqrt(r a))``;
* loaded quality factor ``Q = lambda / FWHM``.

Weights are imprinted by *detuning* the resonance relative to the carrier
wavelength: on resonance the carrier is maximally attenuated (weight ~ 0),
far off resonance it passes untouched (weight ~ 1).  The class exposes the
inverse map (`detuning_for_transmission`) the Approximate Weight Converter
uses to translate a target transmission into a tuning shift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.units import UM, NM
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MicroringDesign:
    """Geometric and material parameters of an all-pass MR.

    Defaults follow the paper: radius 5 um, ring waveguide width 760 nm, and
    a target loaded Q of ~5000 at 1550 nm.  ``n_eff``/``n_g`` are typical
    values for a 760 nm-wide silicon strip waveguide in the C-band.
    """

    radius_m: float = 5.0 * UM
    waveguide_width_m: float = 760.0 * NM
    n_eff: float = 2.36
    n_g: float = 4.20
    resonance_wavelength_m: float = 1550.0 * NM
    round_trip_loss_db: float = 0.25
    self_coupling: float = 0.9756

    def __post_init__(self) -> None:
        check_positive("radius_m", self.radius_m)
        check_positive("waveguide_width_m", self.waveguide_width_m)
        check_positive("n_eff", self.n_eff)
        check_positive("n_g", self.n_g)
        check_positive("resonance_wavelength_m", self.resonance_wavelength_m)
        check_in_range("self_coupling", self.self_coupling, 0.0, 1.0)

    @property
    def circumference_m(self) -> float:
        """Ring round-trip length [m]."""
        return 2.0 * math.pi * self.radius_m

    @property
    def single_pass_amplitude(self) -> float:
        """Round-trip field amplitude ``a`` from the round-trip power loss."""
        return 10.0 ** (-self.round_trip_loss_db / 20.0)


def solve_coupling_for_q(
    target_q: float,
    design: MicroringDesign | None = None,
    iterations: int = 60,
) -> float:
    """Find the self-coupling coefficient ``r`` that yields ``target_q``.

    Uses bisection on the monotone map r -> Q (for fixed loss ``a``); higher
    self-coupling (weaker bus coupling) gives a sharper resonance.
    """
    check_positive("target_q", target_q)
    base = design or MicroringDesign()
    a = base.single_pass_amplitude

    def loaded_q(r: float) -> float:
        ra = r * a
        lam = base.resonance_wavelength_m
        fwhm = (1.0 - ra) * lam**2 / (
            math.pi * base.n_g * base.circumference_m * math.sqrt(ra)
        )
        return lam / fwhm

    low, high = 1e-3, 1.0 - 1e-9
    if loaded_q(high) < target_q:
        raise ValueError(
            f"target Q {target_q:.0f} unreachable with round-trip loss "
            f"{base.round_trip_loss_db} dB (max {loaded_q(high):.0f})"
        )
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if loaded_q(mid) < target_q:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


class MicroringResonator:
    """Behavioral all-pass MR with resonance tuning.

    Parameters
    ----------
    design:
        Geometry/material description.  The default design lands at a loaded
        Q of roughly 5000, matching the paper.
    tuning_shift_m:
        Current resonance shift applied by the tuning circuit [m].  Positive
        shifts move the resonance to longer wavelengths.
    """

    def __init__(self, design: MicroringDesign | None = None) -> None:
        self.design = design or MicroringDesign()
        self.tuning_shift_m = 0.0
        # Snap the effective index to the nearest resonance order so the
        # declared resonance wavelength is an *exact* resonance (physically:
        # pick the longitudinal mode closest to the nominal n_eff).
        order = round(
            self.design.n_eff
            * self.design.circumference_m
            / self.design.resonance_wavelength_m
        )
        self._n_eff = (
            order
            * self.design.resonance_wavelength_m
            / self.design.circumference_m
        )

    # ------------------------------------------------------------------
    # Spectral quantities
    # ------------------------------------------------------------------
    @property
    def resonance_wavelength_m(self) -> float:
        """Current (tuned) resonance wavelength [m]."""
        return self.design.resonance_wavelength_m + self.tuning_shift_m

    @property
    def fsr_m(self) -> float:
        """Free spectral range [m]: ``lambda^2 / (n_g L)``."""
        lam = self.design.resonance_wavelength_m
        return lam**2 / (self.design.n_g * self.design.circumference_m)

    @property
    def fwhm_m(self) -> float:
        """Full width at half maximum of the resonance dip [m]."""
        ra = self.design.self_coupling * self.design.single_pass_amplitude
        lam = self.design.resonance_wavelength_m
        return (1.0 - ra) * lam**2 / (
            math.pi * self.design.n_g * self.design.circumference_m * math.sqrt(ra)
        )

    @property
    def quality_factor(self) -> float:
        """Loaded quality factor ``Q = lambda / FWHM``."""
        return self.design.resonance_wavelength_m / self.fwhm_m

    @property
    def extinction_ratio(self) -> float:
        """On-resonance suppression ratio ``T_max / T_min`` (linear)."""
        t_min = self.min_transmission
        return float("inf") if t_min == 0.0 else 1.0 / t_min

    @property
    def min_transmission(self) -> float:
        """Through-port power transmission exactly on resonance."""
        r = self.design.self_coupling
        a = self.design.single_pass_amplitude
        return ((r - a) / (1.0 - r * a)) ** 2

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def round_trip_phase(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Round-trip phase at ``wavelength_m``, including the tuning shift.

        Tuning is modelled as an effective-index change that moves the
        resonance by ``tuning_shift_m``; equivalently the phase is evaluated
        at the *untuned* resonance grid shifted by the same amount.
        """
        wavelength = np.asarray(wavelength_m, dtype=float)
        effective = wavelength - self.tuning_shift_m
        return (
            2.0 * math.pi * self._n_eff * self.design.circumference_m / effective
        )

    def through_transmission(self, wavelength_m: np.ndarray | float) -> np.ndarray:
        """Through-port power transmission at ``wavelength_m`` (0..1)."""
        r = self.design.self_coupling
        a = self.design.single_pass_amplitude
        phi = self.round_trip_phase(wavelength_m)
        cos_phi = np.cos(phi)
        numerator = a**2 - 2.0 * r * a * cos_phi + r**2
        denominator = 1.0 - 2.0 * r * a * cos_phi + (r * a) ** 2
        return np.asarray(numerator / denominator)

    def drop_transmission(
        self,
        wavelength_m: np.ndarray | float,
        drop_coupling: float | None = None,
    ) -> np.ndarray:
        """Drop-port power transmission of the add-drop configuration.

        The OISA arm uses all-pass rings, but the evaluation framework also
        models add-drop devices (CrossLight-style banks route the dropped
        carrier to a monitor PD for weight locking).  ``drop_coupling``
        defaults to the through-side self-coupling (symmetric device).
        """
        r1 = self.design.self_coupling
        r2 = drop_coupling if drop_coupling is not None else r1
        if not (0.0 <= r2 <= 1.0):
            raise ValueError(f"drop_coupling must be in [0, 1], got {r2}")
        a = self.design.single_pass_amplitude
        phi = self.round_trip_phase(wavelength_m)
        k1_sq = 1.0 - r1**2
        k2_sq = 1.0 - r2**2
        denominator = 1.0 - 2.0 * r1 * r2 * a * np.cos(phi) + (r1 * r2 * a) ** 2
        return np.asarray(k1_sq * k2_sq * a / denominator)

    def lorentzian_transmission(
        self, detuning_m: np.ndarray | float
    ) -> np.ndarray:
        """Lorentzian approximation of the through dip near resonance.

        ``T(d) = 1 - (1 - T_min) / (1 + (2 d / FWHM)^2)`` — accurate within a
        few FWHM of resonance and invertible in closed form, which is what
        the weight-mapping path needs.
        """
        detuning = np.asarray(detuning_m, dtype=float)
        depth = 1.0 - self.min_transmission
        return 1.0 - depth / (1.0 + (2.0 * detuning / self.fwhm_m) ** 2)

    def detuning_for_transmission(
        self, transmission: np.ndarray | float
    ) -> np.ndarray | float:
        """Invert the Lorentzian: detuning [m] that yields ``transmission``.

        Accepts a scalar (returns ``float``) or an ndarray of any shape
        (returns an ndarray of the same shape) — the inversion is
        closed-form, so a whole kernel set's targets solve in one batched
        call.  Raises ``ValueError`` when any target lies below the
        on-resonance floor ``T_min`` (unreachable) or above 1; targets of
        exactly 1 park the ring half an FSR off resonance.
        """
        t_min = self.min_transmission
        values = np.asarray(transmission, dtype=float)
        # NaN must fail the check (as the scalar chained comparison did),
        # so test for validity rather than for violation.
        valid = (values >= t_min) & (values <= 1.0)
        if not np.all(valid):
            if values.ndim == 0:
                offender = transmission
            else:
                offender = float(values[~valid].flat[0])
            raise ValueError(
                f"transmission {offender!r} outside reachable range "
                f"[{t_min:.4f}, 1.0]"
            )
        depth = 1.0 - t_min
        parked = values >= 1.0
        # Mask the parked targets before the division so 1/(1-T) never
        # divides by zero; their lanes are overwritten below.
        safe = np.where(parked, 0.0, values)
        ratio = depth / (1.0 - safe) - 1.0
        shifts = 0.5 * self.fwhm_m * np.sqrt(np.maximum(ratio, 0.0))
        shifts = np.where(parked, 0.5 * self.fsr_m, shifts)
        if values.ndim == 0:
            return float(shifts)
        return shifts

    # ------------------------------------------------------------------
    # Weight encoding
    # ------------------------------------------------------------------
    def set_weight(self, weight: float) -> float:
        """Tune the MR so its carrier transmission equals ``weight``.

        ``weight`` must lie in ``[T_min, 1]``; the architecture layer maps
        quantized weight magnitudes into this interval.  Returns the applied
        resonance shift [m] so the tuning-power model can price it.
        """
        shift = self.detuning_for_transmission(weight)
        self.tuning_shift_m = shift
        return shift

    def carrier_transmission(self) -> float:
        """Transmission seen by a carrier parked at the untuned resonance."""
        return float(self.lorentzian_transmission(self.tuning_shift_m))
