"""Composable noise models applied to photonic dot products.

The architecture layer computes ideal MAC values and then passes them (plus
context) through a stack of noise models; keeping the injectors separate
makes ablations trivial (drop one term, sweep another).  All models are
vectorised over NumPy arrays of MAC results and deterministic under a seed.

Models provided:

* :class:`GaussianReadNoise` — catch-all read noise (BPD shot+thermal
  referred to the MAC value domain).
* :class:`CrosstalkNoise` — deterministic weight perturbation from the
  Lorentzian tails of neighbouring MRs in an arm.
* :class:`FixedPatternNoise` — per-device static gain error (process
  variation of MRs/VCSELs), frozen at construction like real hardware.
* :class:`CompositeNoise` — applies a sequence of models in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.photonics.microring import MicroringResonator
from repro.photonics.wdm import WdmGrid, effective_arm_transmission
from repro.util.rng import derive_rng
from repro.util.validation import check_non_negative


class NoiseModel:
    """Interface: transform an array of MAC values into noisy values."""

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Return a noisy copy of ``values`` (never mutates the input)."""
        raise NotImplementedError


@dataclass
class GaussianReadNoise(NoiseModel):
    """Additive white Gaussian noise with fixed sigma in the value domain.

    ``sigma`` is expressed relative to a unit-scale MAC value; the OPC sets
    it from the BPD SNR at its operating optical power.
    """

    sigma: float
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_non_negative("sigma", self.sigma)
        self._rng = derive_rng(self.seed, "gaussian-read-noise")

    def apply(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if self.sigma == 0.0:
            return values.copy()
        return values + self._rng.normal(0.0, self.sigma, size=values.shape)


@dataclass
class FixedPatternNoise(NoiseModel):
    """Static multiplicative gain error, frozen per device instance.

    Real arrays exhibit fixed-pattern non-uniformity: each arm/BPD has a
    slightly different gain that does not change between reads.  ``shape``
    fixes the number of independent devices; values are broadcast against it
    along the last axis.
    """

    gain_sigma: float
    num_devices: int
    seed: int | None = None
    _gains: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_non_negative("gain_sigma", self.gain_sigma)
        if self.num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {self.num_devices}")
        rng = derive_rng(self.seed, "fixed-pattern-noise")
        self._gains = 1.0 + rng.normal(0.0, self.gain_sigma, size=self.num_devices)

    @property
    def gains(self) -> np.ndarray:
        """The frozen per-device gain vector (read-only view)."""
        view = self._gains.view()
        view.flags.writeable = False
        return view

    def apply(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        if values.shape[-1] % self.num_devices != 0:
            raise ValueError(
                f"last axis ({values.shape[-1]}) must be a multiple of "
                f"num_devices ({self.num_devices})"
            )
        reps = values.shape[-1] // self.num_devices
        return values * np.tile(self._gains, reps)


@dataclass
class CrosstalkNoise(NoiseModel):
    """Deterministic inter-channel crosstalk error of an MR arm.

    Instead of perturbing MAC outputs directly, this model exposes
    :meth:`effective_weights`, which the OPC uses to *replace* its ideal
    weights — crosstalk is a systematic error, not a random one.  ``apply``
    is provided for interface compatibility and returns values scaled by the
    mean relative weight error, a first-order bound used in quick sweeps.
    """

    grid: WdmGrid = field(default_factory=WdmGrid)
    ring: MicroringResonator = field(default_factory=MicroringResonator)

    def effective_weights(self, weights: np.ndarray) -> np.ndarray:
        """Per-channel transmissions including every neighbour's tail."""
        return effective_arm_transmission(self.grid, weights, ring=self.ring)

    def mean_relative_error(self, weights: np.ndarray) -> float:
        """Average relative deviation |w_eff - w| / w over the arm."""
        weights = np.asarray(weights, dtype=float)
        effective = self.effective_weights(weights)
        mask = weights > 0
        if not mask.any():
            return 0.0
        return float(np.mean(np.abs(effective[mask] - weights[mask]) / weights[mask]))

    def apply(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        uniform = np.full(self.grid.num_channels, 0.9)
        return values * (1.0 - self.mean_relative_error(uniform))


@dataclass
class RelativeIntensityNoise(NoiseModel):
    """Laser RIN: multiplicative noise proportional to the signal level.

    ``rin_db_per_hz`` is the standard RIN spec; over a detection bandwidth
    ``B`` the relative intensity fluctuation is
    ``sigma_rel = sqrt(10^(RIN/10) * B)``.  Typical VCSELs sit near
    -140 dB/Hz, giving ~1.6% over a full 25 GHz detection bandwidth.
    """

    rin_db_per_hz: float = -140.0
    bandwidth_hz: float = 25e9
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rin_db_per_hz > 0:
            raise ValueError(
                f"RIN must be <= 0 dB/Hz, got {self.rin_db_per_hz}"
            )
        check_non_negative("bandwidth_hz", self.bandwidth_hz)
        self._rng = derive_rng(self.seed, "rin-noise")

    @property
    def relative_sigma(self) -> float:
        """RMS relative intensity fluctuation over the bandwidth."""
        return float(np.sqrt(10.0 ** (self.rin_db_per_hz / 10.0) * self.bandwidth_hz))

    def apply(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        sigma = self.relative_sigma
        if sigma == 0.0:
            return values.copy()
        return values * (1.0 + self._rng.normal(0.0, sigma, size=values.shape))


@dataclass
class CompositeNoise(NoiseModel):
    """Apply a sequence of noise models left to right."""

    models: list[NoiseModel] = field(default_factory=list)

    def apply(self, values: np.ndarray) -> np.ndarray:
        result = np.asarray(values, dtype=float).copy()
        for model in self.models:
            result = model.apply(result)
        return result
