"""Thermo-optic / electro-optic hybrid MR tuning model.

Weight mapping requires shifting each MR's resonance by up to a channel
spacing.  The paper (following CrossLight [18]) combines:

* **Thermo-optic (TO)** tuning — micro-heater above the ring: large range
  (can cover a full FSR) but slow (microseconds) and power-hungry;
* **Electro-optic (EO)** tuning — carrier injection in a PIN junction: fast
  (nanoseconds) but small range (tens of picometres).

The hybrid scheme uses TO for the coarse shift and EO for the fine trim, so
weight *updates* after the initial mapping are usually EO-only.  This module
prices both the transient energy of a retune and the static holding power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import MW, NM, NS, US
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class TuningBudget:
    """Energy/latency cost of one resonance shift."""

    energy_j: float
    latency_s: float
    holding_power_w: float

    def __post_init__(self) -> None:
        check_non_negative("energy_j", self.energy_j)
        check_non_negative("latency_s", self.latency_s)
        check_non_negative("holding_power_w", self.holding_power_w)


@dataclass(frozen=True)
class HybridTuning:
    """TO + EO hybrid tuner for one MR.

    Defaults: TO efficiency ~21 mW per FSR-scale shift (normalised here to
    mW/nm), TO time constant 4 us; EO range 50 pm with ~ns response at
    negligible static power (reverse-biased junction).
    """

    to_power_per_nm_w: float = 0.25 * MW
    to_settle_time_s: float = 4.0 * US
    eo_range_m: float = 0.05 * NM
    eo_settle_time_s: float = 2.0 * NS
    eo_energy_per_shift_j: float = 18e-15
    eo_holding_power_w: float = 0.0

    def __post_init__(self) -> None:
        check_positive("to_power_per_nm_w", self.to_power_per_nm_w)
        check_positive("to_settle_time_s", self.to_settle_time_s)
        check_positive("eo_range_m", self.eo_range_m)
        check_positive("eo_settle_time_s", self.eo_settle_time_s)
        check_non_negative("eo_energy_per_shift_j", self.eo_energy_per_shift_j)
        check_non_negative("eo_holding_power_w", self.eo_holding_power_w)

    def split_shift(self, shift_m: float) -> tuple[float, float]:
        """Split a requested shift into (TO part, EO part), both in metres.

        The EO stage absorbs as much of the shift as its range allows; the
        remainder goes to the heater.
        """
        magnitude = abs(shift_m)
        eo = min(magnitude, self.eo_range_m)
        to = magnitude - eo
        sign = 1.0 if shift_m >= 0 else -1.0
        return sign * to, sign * eo

    def retune(self, shift_m: float) -> TuningBudget:
        """Cost of moving a resonance by ``shift_m`` from its current spot."""
        to_shift, eo_shift = self.split_shift(shift_m)
        to_power = self.to_power_per_nm_w * (abs(to_shift) / NM)
        if to_shift != 0.0:
            latency = self.to_settle_time_s
            energy = to_power * self.to_settle_time_s + self.eo_energy_per_shift_j
        else:
            latency = self.eo_settle_time_s
            energy = self.eo_energy_per_shift_j if eo_shift != 0.0 else 0.0
        holding = to_power + (self.eo_holding_power_w if eo_shift != 0.0 else 0.0)
        return TuningBudget(energy_j=energy, latency_s=latency, holding_power_w=holding)

    def mapping_cost(
        self, shifts_m: np.ndarray | list[float] | tuple[float, ...]
    ) -> TuningBudget:
        """Aggregate cost of mapping a whole set of MR shifts.

        All MRs retune in parallel, so latency is the max over devices while
        energy and holding power add up.  This is the "weight mapping" step
        the paper performs once per kernel set (then bypasses).

        Accepts an ndarray of any shape (flattened) or a list/tuple; the
        whole set prices in a handful of array ops instead of one
        :meth:`retune` call per MR.  The sums run left-to-right over the
        flat order (``cumsum``, not pairwise), so totals are bit-identical
        to the original sequential Python accumulation.
        """
        shifts = np.asarray(shifts_m, dtype=float).reshape(-1)
        if shifts.size == 0:
            return TuningBudget(0.0, 0.0, 0.0)
        # Elementwise the same arithmetic as split_shift()/retune(): the EO
        # stage absorbs up to its range, the heater takes the remainder.
        magnitude = np.abs(shifts)
        eo = np.minimum(magnitude, self.eo_range_m)
        to = magnitude - eo
        has_to = to != 0.0
        has_eo = eo != 0.0
        to_power = self.to_power_per_nm_w * (to / NM)
        energy = np.where(
            has_to,
            to_power * self.to_settle_time_s + self.eo_energy_per_shift_j,
            np.where(has_eo, self.eo_energy_per_shift_j, 0.0),
        )
        latency = np.where(has_to, self.to_settle_time_s, self.eo_settle_time_s)
        holding = to_power + np.where(has_eo, self.eo_holding_power_w, 0.0)
        return TuningBudget(
            energy_j=float(np.cumsum(energy)[-1]),
            latency_s=float(np.max(latency)),
            holding_power_w=float(np.cumsum(holding)[-1]),
        )
