"""Degraded-mode serving: per-node health, SNR watchdog, online recalibration.

The serving engine (:mod:`repro.engine.server`) historically assumed a
healthy die forever, while the repo's three degradation physics models —
:mod:`repro.sim.faults` (manufacturing/aging upsets),
:mod:`repro.core.thermal` (thermo-optic resonance drift) and
:mod:`repro.core.calibration` (per-die AWC pre-distortion) — were only
exercised by offline analysis.  This module wires them into the stream:

* :class:`FaultProfile` — a named degradation scenario (upset schedule,
  drift rate, watchdog cadence, recalibration cost) attachable to a
  :class:`~repro.engine.server.FrameServer` via ``fault_profile=``;
* :class:`SnrWatchdog` — converts a node's monitored realized-weight error
  into an *equivalent resolvable bit count* and compares it against the
  architecture's weight precision, ceilinged by the optical link's ENOB
  from :class:`~repro.core.snr_budget.SnrBudget` (the paper's Section III
  "effective bit resolution" argument, made a runtime check);
* :class:`HealthMonitor` — advances every node's health state in simulated
  stream time: fires scheduled upsets, accumulates thermal drift against
  the EO fine-trim budget, trips the watchdog, and runs the
  online-recalibration path — the node goes busy for the recalibration
  latency, its :class:`~repro.engine.cache.WeightProgramCache` entries are
  invalidated, and the next ``activate`` re-runs the (deterministic)
  mapping chain so the recovered programs are **bit-identical** to the
  pre-fault cache entries;
* :class:`HealthReport` — degraded/recovered statistics in the same
  counters-over-events shape as :class:`~repro.sim.stream.StreamReport`.

Determinism contract: every stochastic draw (upset patterns) comes from
``derive_rng`` streams keyed by (server seed, node, upset index, model), so
a fixed seed reproduces the same degraded outputs frame-for-frame.  With
``fault_profile=None`` (or the named ``"none"`` profile) no monitor is
constructed and serving is bit-identical to a server without this module.

Units: times in seconds of *simulated* stream time, temperatures in
kelvin, drift rates in K/s.  The named profiles use accelerated timescales
(upsets/drift within tens of milliseconds) so serving-scale demos and
benches exercise the full degrade → detect → recalibrate → recover cycle
in a few hundred frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.snr_budget import SnrBudget
from repro.core.thermal import ThermalModel
from repro.photonics.microring import MicroringResonator
from repro.sim.faults import FaultSpec, FaultyOpticalCore
from repro.util.rng import derive_rng
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class FaultProfile:
    """One degradation scenario a serving stream can run under.

    Parameters
    ----------
    name:
        Display/CLI name.
    fault_spec:
        The fault rates drawn when an upset fires (see
        :class:`~repro.sim.faults.FaultSpec`).  Upsets are modeled as
        recoverable controller/program corruptions: a recalibration remap
        clears them (permanently dead devices are the ``fatal_upsets``
        path).
    fault_onset_s:
        Simulated time of the first upset on node 0; ``None`` disables
        upsets.  Node *i* sees its first upset at
        ``fault_onset_s + i * node_stagger_s``.
    fault_every_s:
        Repeat period for further upsets on a node (0 = one-shot).
    node_stagger_s:
        Per-node onset offset, so a fleet degrades gradually rather than
        synchronously.
    drift_k_per_s:
        Ambient thermal drift rate.  Within the EO fine-trim range the
        stabilisation loop compensates (no accuracy impact, per
        :class:`~repro.core.thermal.ThermalModel`); when the accumulated
        excursion reaches ``drift_trip_fraction`` of the compensable range
        the watchdog forces a thermal re-trim (a recalibration).
    drift_trip_fraction:
        Fraction of the EO-compensable range at which the watchdog re-trims.
    check_interval_s:
        Minimum simulated time between watchdog samples on a node (checks
        piggyback on frame arrivals, so detection latency is at most one
        check interval plus one inter-arrival gap).
    recalibration_latency_s:
        Simulated downtime of a recalibrating node (AWC re-measurement +
        remap); the scheduler routes frames around it meanwhile.
    snr_margin_bits:
        Extra bits of headroom the watchdog demands on top of the
        configured weight precision.
    fatal_upsets:
        Upset count at which a node dies permanently (for the rest of the
        ``serve`` call) instead of recovering; ``None`` means nodes always
        recover.
    calibrated:
        Serve through :class:`~repro.core.calibration.CalibratedAwcMapper`
        pre-distortion from the start, so recalibration re-runs the same
        calibrated chain (programs stay bit-identical across a recovery).
    """

    name: str = "custom"
    fault_spec: FaultSpec = field(default_factory=FaultSpec)
    fault_onset_s: float | None = None
    fault_every_s: float = 0.0
    node_stagger_s: float = 0.0
    drift_k_per_s: float = 0.0
    drift_trip_fraction: float = 0.9
    check_interval_s: float = 2e-3
    recalibration_latency_s: float = 5e-3
    snr_margin_bits: float = 0.0
    fatal_upsets: int | None = None
    calibrated: bool = False

    def __post_init__(self) -> None:
        check_non_negative("fault_every_s", self.fault_every_s)
        check_non_negative("node_stagger_s", self.node_stagger_s)
        check_non_negative("drift_k_per_s", self.drift_k_per_s)
        check_non_negative("snr_margin_bits", self.snr_margin_bits)
        check_positive("check_interval_s", self.check_interval_s)
        check_positive("recalibration_latency_s", self.recalibration_latency_s)
        if not 0.0 < self.drift_trip_fraction <= 1.0:
            raise ValueError(
                f"drift_trip_fraction must be in (0, 1], got "
                f"{self.drift_trip_fraction}"
            )
        if self.fault_onset_s is not None and self.fault_onset_s < 0:
            raise ValueError(
                f"fault_onset_s must be >= 0, got {self.fault_onset_s}"
            )
        if self.fatal_upsets is not None and self.fatal_upsets < 1:
            raise ValueError(
                f"fatal_upsets must be >= 1, got {self.fatal_upsets}"
            )

    @property
    def active(self) -> bool:
        """Whether this profile can ever degrade a node."""
        return self.fault_onset_s is not None or self.drift_k_per_s > 0.0

    @staticmethod
    def named(name: str) -> "FaultProfile | None":
        """Look up a named profile (the CLI ``--fault-profile`` values).

        ``"none"`` returns ``None`` — the server then skips health
        monitoring entirely and serves bit-identically to a server built
        without a profile.
        """
        key = name.strip().lower()
        profiles = {
            "none": None,
            # Thermal-only: a fast ambient ramp that exhausts the EO trim
            # budget mid-stream and forces periodic re-trims.
            "drift": FaultProfile(
                name="drift",
                drift_k_per_s=8.0,
            ),
            # Upset-only: one recoverable program corruption per node,
            # staggered across the fleet.
            "transient": FaultProfile(
                name="transient",
                fault_spec=FaultSpec(dead_mr_rate=0.3, bpd_gain_sigma=0.15),
                fault_onset_s=0.03,
                node_stagger_s=0.015,
            ),
            # Both mechanisms plus calibrated serving — the full
            # degraded-mode scenario the bench measures.
            "harsh": FaultProfile(
                name="harsh",
                fault_spec=FaultSpec(
                    dead_mr_rate=0.3,
                    stuck_awc_branch_rate=0.1,
                    bpd_gain_sigma=0.2,
                ),
                fault_onset_s=0.03,
                fault_every_s=0.12,
                node_stagger_s=0.015,
                drift_k_per_s=4.0,
                calibrated=True,
            ),
        }
        if key not in profiles:
            raise ValueError(
                f"unknown fault profile {name!r}; known: "
                f"{', '.join(sorted(profiles))}"
            )
        return profiles[key]


@dataclass(frozen=True)
class HealthEvent:
    """One health transition on one node, in simulated stream time."""

    time_s: float
    node_id: int
    #: One of ``"upset"``, ``"watchdog-trip"``, ``"drift-trip"``,
    #: ``"recalibrated"``, ``"died"``, or an injected ``"chaos-node-loss"``,
    #: ``"chaos-upset"``, ``"chaos-cache-storm"``, ``"chaos-latency-spike"``
    #: (node id -1 for fleet-wide spikes).
    kind: str
    #: Human-readable context (equivalent bits, drift excursion, ...).
    detail: str = ""


@dataclass
class HealthReport:
    """Aggregate health statistics of one served stream.

    Shaped like :class:`~repro.sim.stream.StreamReport` — an event list
    plus derived counters — so stream-style reporting code can consume it.
    """

    profile: str
    events: list[HealthEvent] = field(default_factory=list)
    degraded_frames: int = 0
    healthy_frames: int = 0
    #: Extra mapping energy spent by recalibration remaps [J].
    recalibration_energy_j: float = 0.0
    #: Thermal compensation energy holding against the drift [J].
    compensation_energy_j: float = 0.0
    #: Peak ambient excursion any node saw [K].
    peak_drift_k: float = 0.0
    dead_nodes: list[int] = field(default_factory=list)

    @property
    def upsets(self) -> int:
        """Fault onsets across the fleet (fatal + chaos-injected included)."""
        return sum(
            event.kind in ("upset", "died", "chaos-upset")
            for event in self.events
        )

    @property
    def chaos_events(self) -> int:
        """Injected chaos events that fired (any ``chaos-*`` kind)."""
        return sum(
            event.kind.startswith("chaos-") for event in self.events
        )

    @property
    def recalibrations(self) -> int:
        """Completed recalibrations (upset recoveries + thermal re-trims)."""
        return sum(event.kind == "recalibrated" for event in self.events)

    @property
    def degraded_fraction(self) -> float:
        """Delivered frames computed on a degraded die, as a fraction."""
        total = self.degraded_frames + self.healthy_frames
        return self.degraded_frames / total if total else 0.0


class SnrWatchdog:
    """Equivalent-bit monitor against the architecture's precision demand.

    The optical chain resolves ``SnrBudget.report().effective_bits`` at
    best (shot/thermal noise floor); a degraded program adds a systematic
    realized-weight error on top.  An RMS weight error of half an LSB at
    *b* bits is ``2^-(b+1)`` of full scale, so the error converts to an
    equivalent resolvable bit count via ``-log2(2 * error) `` — the
    watchdog trips when ``min(optical ENOB, equivalent bits)`` falls below
    the configured weight precision plus the profile's margin.
    """

    def __init__(
        self,
        config: OISAConfig,
        margin_bits: float = 0.0,
        budget: SnrBudget | None = None,
    ) -> None:
        self.config = config
        self.margin_bits = margin_bits
        self.budget = budget or SnrBudget(num_rings=config.mrs_per_arm)
        self._optical_bits = float(self.budget.report().effective_bits)

    @property
    def required_bits(self) -> float:
        """Bits the serving configuration must resolve."""
        return self.config.weight_bits + self.margin_bits

    @property
    def optical_bits(self) -> float:
        """The healthy link's ENOB ceiling."""
        return self._optical_bits

    def equivalent_bits(self, weight_error_relative: float) -> float:
        """Resolvable bits given a relative realized-weight error."""
        if weight_error_relative <= 0.0:
            return self._optical_bits
        monitored = -math.log2(2.0 * weight_error_relative)
        return min(self._optical_bits, monitored)

    def trips(self, weight_error_relative: float) -> bool:
        """Whether the monitored error breaks the precision budget."""
        return self.equivalent_bits(weight_error_relative) < self.required_bits


class _NodeHealth:
    """Mutable health state of one node within one ``serve`` call."""

    def __init__(self, node_id: int, profile: FaultProfile) -> None:
        self.node_id = node_id
        self.upset_active = False
        self.upset_index = 0
        self.dead = False
        #: Model whose ProgrammedWeights record is physically installed on
        #: the node's OPC while ``node.programmed_model`` is None (a
        #: recalibration wipes the latter to force reactivation, but the
        #: stale record — and its tensor shape — stays installed until the
        #: compute phase reprograms).
        self.monitor_model: str | None = None
        self.recal_done_s: float | None = None
        #: Chaos loss window end: the node is unavailable until then and
        #: its health machinery (upsets, watchdog) is frozen meanwhile.
        self.lost_until = 0.0
        #: Drift reference: ambient excursion accumulates since this time.
        self.drift_anchor_s = 0.0
        self.last_check_s = -float("inf")
        if profile.fault_onset_s is None:
            self.next_onset_s: float | None = None
        else:
            self.next_onset_s = (
                profile.fault_onset_s + node_id * profile.node_stagger_s
            )


class HealthMonitor:
    """Samples drift/faults per node mid-stream and drives recalibration.

    One monitor instance covers one :meth:`FrameServer.serve` call (each
    call simulates a stream from t = 0); the shared program cache carries
    recalibration effects across calls, health state does not.
    """

    def __init__(
        self,
        profile: FaultProfile,
        config: OISAConfig,
        nodes,
        cache,
        seed: int | None,
        chaos=None,
    ) -> None:
        self.profile = profile
        self.config = config
        self.nodes = nodes
        self.cache = cache
        self.seed = seed
        #: Optional :class:`~repro.engine.chaos.ChaosTimeline` — injected
        #: fleet events fire inside :meth:`advance` ahead of the organic
        #: per-node state machine.
        self.chaos = chaos
        #: Scheduler hook ``(node, time_s, until_s)`` fired when a chaos
        #: loss takes a node out — the scheduler reaps its in-flight
        #: frames and consults the failover layer.
        self.on_node_lost = None
        self.watchdog = SnrWatchdog(config, margin_bits=profile.snr_margin_bits)
        self.thermal = ThermalModel(
            ring=MicroringResonator(config.microring), tuning=config.tuning
        )
        self.report = HealthReport(profile=profile.name)
        self._states = [_NodeHealth(node.node_id, profile) for node in nodes]
        #: Frozen fault wrappers per (node, upset index, model key), each
        #: paired with the ProgrammedWeights record it was frozen against
        #: so a post-recalibration reprogram triggers a (same-seed)
        #: refreeze on the fresh record.
        self._fault_cores: dict[tuple[int, int, str], tuple] = {}
        #: Per-(node, upset index) fault spec override for chaos-injected
        #: upsets (organic upsets use the profile's spec).
        self._upset_specs: dict[tuple[int, int], FaultSpec] = {}

    # ------------------------------------------------------------------
    # Stream-time state machine
    # ------------------------------------------------------------------
    def advance(self, now_s: float) -> None:
        """Process every health transition with event time <= ``now_s``.

        Chaos events fire first (they are *inputs* to the per-node state
        machines), then each node's organic drift/upset/watchdog walk.
        Warm spares attached mid-stream (node ids beyond the monitored
        prefix) are not chaos targets and carry no health state.
        """
        if self.chaos is not None:
            self._process_chaos(now_s)
        for node, state in zip(self.nodes, self._states):
            self._advance_node(node, state, now_s)

    def _process_chaos(self, now_s: float) -> None:
        """Fire every due chaos event from the resolved timeline."""
        for event in self.chaos.due(now_s):
            if event.kind in ("node-loss", "region-outage"):
                for node_id in event.node_ids:
                    self._chaos_lose_node(event, node_id)
            elif event.kind == "correlated-upset":
                for node_id in event.node_ids:
                    self._chaos_upset_node(event, node_id)
            elif event.kind == "cache-storm":
                for node_id in event.node_ids:
                    self._chaos_storm_node(event, node_id)
            elif event.kind == "latency-spike":
                self.report.events.append(
                    HealthEvent(
                        event.time_s,
                        -1,
                        "chaos-latency-spike",
                        f"service x{event.factor:g} for "
                        f"{event.duration_s * 1e3:.1f} ms ({event.detail})",
                    )
                )

    def _chaos_lose_node(self, event, node_id: int) -> None:
        node = self.nodes[node_id]
        state = self._states[node_id]
        if state.dead:
            return
        until = event.end_s
        state.lost_until = max(state.lost_until, until)
        node.free_at = max(node.free_at, until)
        # A recalibration mid-flight cannot complete while the node is
        # gone; it resumes once the node is back.
        if state.recal_done_s is not None:
            state.recal_done_s = max(state.recal_done_s, until)
        self.report.events.append(
            HealthEvent(
                event.time_s,
                node_id,
                "chaos-node-loss",
                f"{event.kind} until {until * 1e3:.1f} ms ({event.detail})",
            )
        )
        if self.on_node_lost is not None:
            self.on_node_lost(node, event.time_s, until)

    def _chaos_upset_node(self, event, node_id: int) -> None:
        state = self._states[node_id]
        if state.dead:
            return
        state.upset_index += 1
        state.upset_active = True
        self._upset_specs[(node_id, state.upset_index)] = event.fault_spec
        self.report.events.append(
            HealthEvent(
                event.time_s,
                node_id,
                "chaos-upset",
                f"correlated upset #{state.upset_index}: "
                f"{event.fault_spec!r} ({event.detail})",
            )
        )

    def _chaos_storm_node(self, event, node_id: int) -> None:
        node = self.nodes[node_id]
        state = self._states[node_id]
        if state.dead:
            return
        invalidated = self.cache.invalidate_die(node.opc.seed)
        state.monitor_model = node.programmed_model or state.monitor_model
        node.programmed_model = None
        # Simulated residency is gone too: the next frame per (node,
        # model) pays a full remap in stream time/energy.
        node.active_model = None
        self.report.events.append(
            HealthEvent(
                event.time_s,
                node_id,
                "chaos-cache-storm",
                f"invalidated {invalidated} cached program(s) "
                f"({event.detail})",
            )
        )

    def _advance_node(self, node, state: _NodeHealth, now_s: float) -> None:
        if state.dead:
            return
        if now_s < state.lost_until:
            return  # chaos took the node out: health machinery is frozen
        # Complete a pending recalibration first: recovery precedes any
        # later upset in event order.
        if state.recal_done_s is not None and state.recal_done_s <= now_s:
            self._finish_recalibration(node, state)
        if state.recal_done_s is not None:
            return  # still recalibrating: upsets/checks wait for recovery
        # Fire scheduled upsets.
        while (
            state.next_onset_s is not None
            and state.next_onset_s <= now_s
            and not state.dead
        ):
            self._fire_upset(node, state)
        if state.dead:
            return
        # Watchdog sampling, throttled to the profile's check cadence.
        if now_s - state.last_check_s >= self.profile.check_interval_s:
            previous_check_s = state.last_check_s
            state.last_check_s = now_s
            self._check(node, state, now_s, previous_check_s)

    def _fire_upset(self, node, state: _NodeHealth) -> None:
        onset = state.next_onset_s
        state.upset_index += 1
        state.next_onset_s = (
            onset + self.profile.fault_every_s
            if self.profile.fault_every_s > 0
            else None
        )
        fatal = (
            self.profile.fatal_upsets is not None
            and state.upset_index >= self.profile.fatal_upsets
        )
        if fatal:
            state.dead = True
            state.upset_active = False
            node.free_at = float("inf")
            self.report.dead_nodes.append(node.node_id)
            self.report.events.append(
                HealthEvent(onset, node.node_id, "died", "fatal upset")
            )
            return
        state.upset_active = True
        self.report.events.append(
            HealthEvent(
                onset,
                node.node_id,
                "upset",
                f"upset #{state.upset_index}: {self.profile.fault_spec!r}",
            )
        )

    def _check(
        self, node, state: _NodeHealth, now_s: float, previous_check_s: float
    ) -> None:
        """One watchdog sample: SNR budget + thermal margin."""
        drift_k = self.profile.drift_k_per_s * (now_s - state.drift_anchor_s)
        self.report.peak_drift_k = max(self.report.peak_drift_k, drift_k)
        if self.profile.drift_k_per_s > 0:
            # Energy to hold the rings against the current excursion over
            # the simulated time actually elapsed since the previous
            # sample (checks piggyback on arrivals, so the gap can exceed
            # the nominal cadence).
            elapsed = now_s - previous_check_s
            if math.isfinite(elapsed) and elapsed > 0:
                power = self.thermal.compensation_power_w(
                    max(drift_k, 1e-12), self.config.total_mrs
                )
                self.report.compensation_energy_j += power * elapsed
            limit = (
                self.profile.drift_trip_fraction
                * self.thermal.compensable_range_k()
            )
            if drift_k >= limit:
                self._start_recalibration(
                    node,
                    state,
                    now_s,
                    "drift-trip",
                    f"drift {drift_k:.3f} K >= {limit:.3f} K EO budget",
                )
                return
        # Monitor the kernel set whose record is physically installed on
        # the die: the host-side programmed model, or — right after a
        # recalibration wiped that — the model remembered at recal time
        # (the stale record stays installed until the compute phase), so
        # repeated upsets keep tripping and the error estimate always
        # matches the installed tensor.
        monitored_model = node.programmed_model or state.monitor_model
        if state.upset_active and monitored_model is not None:
            faulty = self.fault_core(node, monitored_model, state.upset_index)
            if faulty is not None:
                error = faulty.weight_error_relative
                bits = self.watchdog.equivalent_bits(error)
                if self.watchdog.trips(error):
                    self._start_recalibration(
                        node,
                        state,
                        now_s,
                        "watchdog-trip",
                        f"equivalent bits {bits:.2f} < required "
                        f"{self.watchdog.required_bits:.2f}",
                    )

    def _start_recalibration(
        self, node, state: _NodeHealth, now_s: float, kind: str, detail: str
    ) -> None:
        state.recal_done_s = max(node.free_at, now_s) + (
            self.profile.recalibration_latency_s
        )
        node.free_at = state.recal_done_s
        self.report.events.append(
            HealthEvent(now_s, node.node_id, kind, detail)
        )

    def _finish_recalibration(self, node, state: _NodeHealth) -> None:
        done = state.recal_done_s
        state.recal_done_s = None
        state.upset_active = False
        state.drift_anchor_s = done
        state.last_check_s = done
        # Stale programs: drop the die's cache entries and force the next
        # activate() through the (deterministic) mapping chain.  The remap
        # reproduces the pre-fault programs bit-identically.
        invalidated = self.cache.invalidate_die(node.opc.seed)
        if node.opc.is_programmed:
            self.report.recalibration_energy_j += (
                node.opc.programmed.tuning.energy_j
            )
        state.monitor_model = node.programmed_model or state.monitor_model
        node.programmed_model = None
        # The remap also wipes the simulated kernel residency: the next
        # frame on this node pays a remap phase in stream time/energy.
        node.active_model = None
        self.report.events.append(
            HealthEvent(
                done,
                node.node_id,
                "recalibrated",
                f"invalidated {invalidated} cached program(s)",
            )
        )

    # ------------------------------------------------------------------
    # Queries the server makes
    # ------------------------------------------------------------------
    def degradation_tag(self, node) -> int:
        """0 when ``node`` is healthy, else the active upset's index.

        The server records this per admitted frame so the compute phase
        (which runs after the whole admission loop) reproduces exactly the
        degradation each frame saw at its arrival time.
        """
        if node.node_id >= len(self._states):
            return 0  # warm spare attached mid-stream: not monitored
        state = self._states[node.node_id]
        return state.upset_index if state.upset_active else 0

    def fault_core(
        self, node, model_key: str, upset_index: int
    ) -> FaultyOpticalCore | None:
        """The frozen fault wrapper for ``node`` serving ``model_key``.

        Patterns are drawn once per (node, upset, model) from a derived
        RNG stream, so degraded outputs are deterministic per server seed
        regardless of scheduling order.  Requires the node's OPC to be
        programmed with ``model_key``'s weights (the compute path activates
        first).
        """
        if upset_index <= 0 or not node.opc.is_programmed:
            return None
        key = (node.node_id, upset_index, model_key)
        cached = self._fault_cores.get(key)
        if cached is not None and cached[1] is node.opc.programmed:
            return cached[0]
        fault_seed = derive_rng(
            self.seed,
            f"health-upset-{node.node_id}-{upset_index}-{model_key}",
        ).integers(0, 2**63 - 1)
        spec = self._upset_specs.get(
            (node.node_id, upset_index), self.profile.fault_spec
        )
        core = FaultyOpticalCore.from_programmed(
            node.opc, spec, seed=int(fault_seed)
        )
        self._fault_cores[key] = (core, node.opc.programmed)
        return core

    def record_frame(self, degraded: bool) -> None:
        """Count one delivered frame toward the degraded/healthy split."""
        if degraded:
            self.report.degraded_frames += 1
        else:
            self.report.healthy_frames += 1

    def unavailable_fraction(self, now_s: float) -> float:
        """Fraction of the *monitored* fleet dead or in a loss window.

        The brownout controller's capacity-loss signal; spares attached
        mid-stream count toward neither numerator nor denominator.
        """
        if not self._states:
            return 0.0
        down = sum(
            1
            for state in self._states
            if state.dead or now_s < state.lost_until
        )
        return down / len(self._states)

    def latency_factor(self, now_s: float) -> float:
        """Active chaos latency-spike multiplier (1.0 outside windows)."""
        if self.chaos is None:
            return 1.0
        return self.chaos.latency_factor(now_s)


__all__ = [
    "FaultProfile",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "SnrWatchdog",
]
