"""Deterministic fleet-scale fault injection above the health monitor.

:mod:`repro.engine.health` models *organic* degradation — per-node drift
and scheduled upsets drawn from a :class:`~repro.engine.health.FaultProfile`.
This module injects *adversarial* fleet events on top: the correlated,
bursty failures a distributed in-sensor deployment actually sees (OASIS's
"many sensors, shared downstream capacity" regime, PAPERS.md).  A
:class:`ChaosPlan` names a set of :class:`ChaosSpec` entries; resolving the
plan against a fleet size and a seed yields a concrete, sorted
:class:`ChaosEvent` timeline that the :class:`~repro.engine.health.
HealthMonitor` replays in simulated stream time:

* ``node-loss`` / ``region-outage`` — the affected nodes go unavailable
  for a window (``free_at`` pushed to the window end); in-flight frames on
  them are reaped by the scheduler and routed through the
  :class:`~repro.engine.failover.RetryPolicy` (or dropped as *lost*);
* ``correlated-upset`` — a multi-node program corruption carrying its own
  :class:`~repro.sim.faults.FaultSpec`, detected and recovered by the
  existing watchdog → recalibration → bit-identical remap cycle;
* ``cache-storm`` — the affected dies' cached programs are invalidated
  and their kernel residency wiped, so the next frame per (node, model)
  pays a full remap (deterministic, bit-identical reprogram);
* ``latency-spike`` — a multiplicative dispatch service-time factor over
  a window (congested readout/link), applied at dispatch time.

Determinism contract: every stochastic choice (onset jitter, which nodes
an event hits) comes from ``derive_rng(seed, "chaos-<plan>-<spec>-<rep>")``
streams, so a fixed (plan, fleet size, seed) triple resolves to the same
timeline — and, via the scheduler's determinism contract, the same
``ServeReport`` — frame-for-frame.  With ``chaos_plan=None`` the server
constructs no timeline and serving is byte-identical to a server without
this module.

Units: event times and durations in *simulated* seconds (the
``StreamEvent`` clock), matched to the accelerated serving-demo
timescales of :mod:`repro.engine.health` (events within tens of
milliseconds so a few-hundred-frame stream crosses the full
fail → recover arc).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.faults import FaultSpec
from repro.util.rng import derive_rng
from repro.util.validation import check_non_negative, check_positive

#: Event kinds a plan may schedule (see module docstring for semantics).
CHAOS_KINDS = (
    "node-loss",
    "region-outage",
    "correlated-upset",
    "cache-storm",
    "latency-spike",
)


@dataclass(frozen=True)
class ChaosSpec:
    """One symbolic chaos entry, resolved per fleet size + seed.

    Parameters
    ----------
    kind:
        One of :data:`CHAOS_KINDS`.
    at_s:
        Nominal onset [s] on the simulated stream clock.
    duration_s:
        Window length [s] for windowed kinds (loss/outage/spike); ignored
        by instantaneous kinds (upset, cache-storm).
    count:
        Nodes hit (loss/upset/storm); ``0`` means the whole fleet.
    fraction:
        Fleet fraction hit — overrides ``count`` when set (the
        region-outage sizing knob).
    factor:
        Service-time multiplier of a ``latency-spike``.
    jitter_s:
        Uniform onset jitter drawn from the spec's derived RNG stream.
    fault_spec:
        Fault rates a ``correlated-upset`` corrupts programs with.
    repeats / every_s:
        Fire ``repeats`` times, ``every_s`` apart (storm trains).
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    count: int = 1
    fraction: float | None = None
    factor: float = 1.0
    jitter_s: float = 0.0
    fault_spec: FaultSpec = field(default_factory=FaultSpec)
    repeats: int = 1
    every_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; known: "
                f"{', '.join(CHAOS_KINDS)}"
            )
        check_non_negative("at_s", self.at_s)
        check_non_negative("duration_s", self.duration_s)
        check_non_negative("jitter_s", self.jitter_s)
        check_non_negative("every_s", self.every_s)
        check_positive("repeats", self.repeats)
        check_positive("factor", self.factor)
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.kind in ("node-loss", "region-outage", "latency-spike"):
            check_positive("duration_s", self.duration_s)


@dataclass(frozen=True)
class ChaosEvent:
    """One concrete scheduled event on the resolved timeline."""

    time_s: float
    kind: str
    #: Affected node ids (empty for fleet-wide latency spikes).
    node_ids: tuple[int, ...]
    duration_s: float = 0.0
    factor: float = 1.0
    fault_spec: FaultSpec | None = None
    #: Provenance: ``"<plan>[<spec idx>]#<repeat>"``.
    detail: str = ""

    @property
    def end_s(self) -> float:
        """Window end on the stream clock (= onset for point events)."""
        return self.time_s + self.duration_s


@dataclass(frozen=True)
class ChaosPlan:
    """A named set of chaos specs, resolvable to a deterministic timeline."""

    name: str = "custom"
    specs: tuple[ChaosSpec, ...] = ()

    def schedule(
        self, num_nodes: int, seed: int | None
    ) -> tuple[ChaosEvent, ...]:
        """Resolve to concrete events for ``num_nodes``, sorted by onset.

        Every draw comes from ``derive_rng(seed,
        f"chaos-{name}-{spec}-{repeat}")`` so the timeline is a pure
        function of (plan, fleet size, seed).
        """
        check_positive("num_nodes", num_nodes)
        events: list[ChaosEvent] = []
        for spec_index, spec in enumerate(self.specs):
            for repeat in range(spec.repeats):
                rng = derive_rng(
                    seed, f"chaos-{self.name}-{spec_index}-{repeat}"
                )
                onset = spec.at_s + repeat * spec.every_s
                if spec.jitter_s > 0.0:
                    onset += float(rng.uniform(0.0, spec.jitter_s))
                if spec.fraction is not None:
                    hit = max(1, int(round(spec.fraction * num_nodes)))
                elif spec.count <= 0:
                    hit = num_nodes
                else:
                    hit = min(spec.count, num_nodes)
                if spec.kind == "latency-spike":
                    nodes: tuple[int, ...] = ()
                else:
                    nodes = tuple(
                        int(i)
                        for i in sorted(
                            rng.choice(num_nodes, size=hit, replace=False)
                        )
                    )
                events.append(
                    ChaosEvent(
                        time_s=onset,
                        kind=spec.kind,
                        node_ids=nodes,
                        duration_s=spec.duration_s,
                        factor=spec.factor,
                        fault_spec=(
                            spec.fault_spec
                            if spec.kind == "correlated-upset"
                            else None
                        ),
                        detail=f"{self.name}[{spec_index}]#{repeat}",
                    )
                )
        events.sort(key=lambda event: (event.time_s, event.kind, event.node_ids))
        return tuple(events)

    @staticmethod
    def named(name: str) -> "ChaosPlan | None":
        """Look up a named plan (the CLI ``--chaos-plan`` values).

        ``"none"`` returns ``None`` — the server then builds no chaos
        timeline and serves byte-identically to a server without the
        argument.  Onsets sit in the 20-50 ms band so the accelerated
        serving-demo streams (a few hundred frames at ~1-3 kFPS) cross
        the full fail → recover arc.
        """
        key = name.strip().lower()
        plans = {
            "none": None,
            # One node drops out mid-stream for a long window — the
            # failover bench's plan: without retry+spares its in-flight
            # and queued frames burn deadlines.
            "node-loss": ChaosPlan(
                name="node-loss",
                specs=(
                    ChaosSpec(kind="node-loss", at_s=0.03, duration_s=0.08),
                ),
            ),
            # Half the fleet (>= 1 node) vanishes at once — the
            # region-style grouped outage.
            "region-outage": ChaosPlan(
                name="region-outage",
                specs=(
                    ChaosSpec(
                        kind="region-outage",
                        at_s=0.04,
                        duration_s=0.05,
                        fraction=0.5,
                    ),
                ),
            ),
            # Every node's program corrupts in the same instant; the
            # watchdogs trip and the fleet recalibrates in waves.
            "correlated-upsets": ChaosPlan(
                name="correlated-upsets",
                specs=(
                    ChaosSpec(
                        kind="correlated-upset",
                        at_s=0.03,
                        count=0,
                        fault_spec=FaultSpec(
                            dead_mr_rate=0.3, bpd_gain_sigma=0.15
                        ),
                    ),
                ),
            ),
            # A train of fleet-wide cache invalidations: every wave forces
            # a full (deterministic) remap per (node, model).
            "cache-storm": ChaosPlan(
                name="cache-storm",
                specs=(
                    ChaosSpec(
                        kind="cache-storm",
                        at_s=0.02,
                        count=0,
                        repeats=3,
                        every_s=0.04,
                    ),
                ),
            ),
            # Congested readout/link: dispatch service times triple for a
            # window.
            "latency-spike": ChaosPlan(
                name="latency-spike",
                specs=(
                    ChaosSpec(
                        kind="latency-spike",
                        at_s=0.03,
                        duration_s=0.04,
                        factor=3.0,
                    ),
                ),
            ),
            # The kitchen sink: staggered loss + a storm + a spike, with
            # jittered onsets — the "everything at once" drill.
            "rolling": ChaosPlan(
                name="rolling",
                specs=(
                    ChaosSpec(
                        kind="node-loss",
                        at_s=0.02,
                        duration_s=0.04,
                        jitter_s=0.01,
                    ),
                    ChaosSpec(
                        kind="cache-storm", at_s=0.05, count=0, jitter_s=0.01
                    ),
                    ChaosSpec(
                        kind="latency-spike",
                        at_s=0.08,
                        duration_s=0.03,
                        factor=2.0,
                    ),
                ),
            ),
        }
        if key not in plans:
            raise ValueError(
                f"unknown chaos plan {name!r}; known: "
                f"{', '.join(sorted(plans))}"
            )
        return plans[key]


def chaos_plan(spec: "str | ChaosPlan | None") -> ChaosPlan | None:
    """Resolve a plan name or pass a plan (or ``None``) through."""
    if spec is None or isinstance(spec, ChaosPlan):
        return spec
    return ChaosPlan.named(spec)


class ChaosTimeline:
    """One serve call's resolved chaos schedule + firing cursor.

    The :class:`~repro.engine.health.HealthMonitor` owns one timeline per
    ``serve`` call and fires due events from :meth:`due` inside its
    ``advance`` walk; :meth:`latency_factor` is queried at dispatch time
    and needs no firing order (it scans the static window list).
    """

    def __init__(
        self, plan: ChaosPlan, num_nodes: int, seed: int | None
    ) -> None:
        self.plan = plan
        self.events = plan.schedule(num_nodes, seed)
        self._cursor = 0

    def due(self, now_s: float) -> list[ChaosEvent]:
        """Events with onset <= ``now_s`` not yet fired, in onset order."""
        fired: list[ChaosEvent] = []
        while (
            self._cursor < len(self.events)
            and self.events[self._cursor].time_s <= now_s
        ):
            fired.append(self.events[self._cursor])
            self._cursor += 1
        return fired

    def latency_factor(self, now_s: float) -> float:
        """Product of active latency-spike factors at ``now_s``."""
        factor = 1.0
        for event in self.events:
            if (
                event.kind == "latency-spike"
                and event.time_s <= now_s < event.end_s
            ):
                factor *= event.factor
        return factor


__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosSpec",
    "ChaosTimeline",
    "chaos_plan",
]
