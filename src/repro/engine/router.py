"""Tenant-to-shard routing for the sharded fleet control plane.

A control plane (:mod:`repro.engine.controlplane`) splits the fleet into
named shards — node groups hosting a slice (or a replica) of the model
zoo — and every admitted frame must land on exactly one of them.  The
routing decision has to be *deterministic* (the control plane's
bit-reproducibility contract extends the scheduler's), *stable* under
fleet churn (an autoscaler resizing a shard's node count must never move
tenants — moves invalidate cache locality), and *bounded* under shard-set
churn (adding or draining one shard may move only the tenants whose
rendezvous winner actually changed).

Two policies are registered:

* ``"rendezvous"`` — highest-random-weight (HRW) hashing: each
  ``(tenant, shard)`` pair gets a stable SHA-256 score and the tenant
  routes to the highest-scoring *eligible* shard.  Classic rendezvous
  guarantees follow: routing never depends on node counts at all, and
  removing a shard moves exactly the tenants that were on it while adding
  one moves only the tenants whose new top score is the newcomer
  (``tests/test_properties.py`` pins both).
* ``"hash"`` — stable-hash modulo over the eligible shard list.  Kept as
  the contrast policy: it is deterministic but *not* churn-bounded (a
  shard-set change can reshuffle every tenant), which is exactly why
  rendezvous is the default.

Eligibility and spillover: a shard is eligible for a request when it
hosts the request's model key (zoo sharding) and is not draining.  When
no shard hosts the model the whole non-draining fleet is eligible (the
control plane registers the model on the routed shard — preload-on-route)
and when everything eligible is draining the drain flag is ignored —
routing somewhere beats dropping on the floor.  The skip-the-draining
step *is* the spillover: the next-best rendezvous score takes over, and
because scores are per ``(tenant, shard)`` the spilled tenants spread
over the survivors instead of piling onto one.

Determinism: scores hash only ``(salt, shard name, tenant)`` — no
``hash()`` randomization, no wall clock, no RNG state.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, Sequence


class ShardView(Protocol):
    """What a router is allowed to see of a shard.

    Deliberately *excludes* node counts and load: routing that peeks at
    capacity would move tenants whenever the autoscaler breathes.
    """

    name: str
    draining: bool

    def hosts(self, model_key: str) -> bool: ...


def rendezvous_score(salt: int, shard_name: str, tenant: str) -> int:
    """Stable HRW score of one (tenant, shard) pair.

    The first 8 digest bytes as a big-endian integer — 64 bits is far
    beyond what shard-count tie probabilities need, and slicing the
    digest keeps the comparison cheap.
    """
    digest = hashlib.sha256(
        f"{salt}|{shard_name}|{tenant}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class TenantRouter:
    """Base router: eligibility + spillover shared by every policy."""

    name = "base"

    def __init__(self, salt: int = 0) -> None:
        self.salt = int(salt)

    def eligible(
        self, model_key: str, shards: Sequence[ShardView]
    ) -> list[ShardView]:
        """Shards a request may land on, after spillover rules.

        Live hosting shards first; then the live fleet (the control
        plane's spillover placement fills the zoo gap on the landing
        shard); draining shards only when nothing live is left.
        """
        if not shards:
            raise ValueError("cannot route with zero shards")
        hosting = [shard for shard in shards if shard.hosts(model_key)]
        live_hosting = [shard for shard in hosting if not shard.draining]
        if live_hosting:
            return live_hosting
        live = [shard for shard in shards if not shard.draining]
        if live:
            return live
        return hosting or list(shards)

    def route(
        self, tenant: str, model_key: str, shards: Sequence[ShardView]
    ) -> ShardView:
        """The one shard this (tenant, model) pair lands on."""
        raise NotImplementedError

    def __repr__(self) -> str:  # audit trails embed the router spec
        return f"{type(self).__name__}(salt={self.salt})"


class RendezvousRouter(TenantRouter):
    """Highest-random-weight tenant routing (the default policy)."""

    name = "rendezvous"

    def route(
        self, tenant: str, model_key: str, shards: Sequence[ShardView]
    ) -> ShardView:
        candidates = self.eligible(model_key, shards)
        # Max score wins; the (score, name) key makes an (astronomically
        # unlikely) score tie deterministic rather than list-order-bound.
        return max(
            candidates,
            key=lambda shard: (
                rendezvous_score(self.salt, shard.name, tenant),
                shard.name,
            ),
        )


class HashModuloRouter(TenantRouter):
    """Stable-hash modulo routing — deterministic, not churn-bounded.

    The contrast policy: one shard joining or draining renumbers the
    eligible list and can move *every* tenant.  Useful as a baseline when
    measuring how much program-cache locality rendezvous preserves.
    """

    name = "hash"

    def route(
        self, tenant: str, model_key: str, shards: Sequence[ShardView]
    ) -> ShardView:
        candidates = sorted(
            self.eligible(model_key, shards), key=lambda shard: shard.name
        )
        digest = hashlib.sha256(f"{self.salt}|{tenant}".encode()).digest()
        return candidates[int.from_bytes(digest[:8], "big") % len(candidates)]


#: Registered router policies (CLI ``--router`` choices).
ROUTERS: dict[str, type[TenantRouter]] = {
    "rendezvous": RendezvousRouter,
    "hash": HashModuloRouter,
}


def tenant_router(spec: str | TenantRouter, salt: int = 0) -> TenantRouter:
    """Resolve a router spec (name or instance) to a router."""
    if isinstance(spec, TenantRouter):
        return spec
    cls = ROUTERS.get(str(spec).lower())
    if cls is None:
        raise ValueError(
            f"unknown router {spec!r}; known: {', '.join(sorted(ROUTERS))}"
        )
    return cls(salt=salt)


__all__ = [
    "ROUTERS",
    "HashModuloRouter",
    "RendezvousRouter",
    "ShardView",
    "TenantRouter",
    "rendezvous_score",
    "tenant_router",
]
