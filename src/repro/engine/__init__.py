"""Multi-tenant frame-serving engine (scheduler + admission + workloads).

* :mod:`repro.engine.cache` — weight-program cache keyed by (kernel set,
  weight bits, die seed); kernel swaps stop re-running the AWC mapping
  chain, and :meth:`WeightProgramCache.invalidate_die` supports the
  online-recalibration path.
* :mod:`repro.engine.store` — content-addressed on-disk
  :class:`ProgramStore`: sha256-verified npz records of programmed
  weights the cache reads through / writes behind, so a second run
  against the same store programs nothing.
* :mod:`repro.engine.scheduler` — the simulated-time event loop and the
  pluggable policies: greedy-FIFO (historical drop-if-busy behaviour),
  earliest-deadline-first, and priority + per-tenant weighted fair
  queuing (``"slo"``).
* :mod:`repro.engine.admission` — per-model :class:`SloClass` service
  levels (deadline, priority, drop policy, WFQ weight), backpressure
  load shedding and the per-class :class:`SloReport` accounting.
* :mod:`repro.engine.workloads` — scenario generators over the model zoo
  (LeNet / MLP / VGG-16 / ResNet-18 first layers at several bit widths):
  Poisson bursts, diurnal ramps, multi-tenant mixes, and the historical
  two-LeNet demo as the ``default`` scenario.
* :mod:`repro.engine.server` — :class:`FrameServer`: the thin facade
  wiring cache + health + scheduler, micro-batched compute through
  :class:`~repro.core.pipeline.HardwareFirstLayerPipeline`, fleet
  transport budgets, and :meth:`FrameServer.warmup`.  The default
  configuration (greedy policy, no SLO classes, no fault profile) is
  bit-identical to the pre-split engine.
* :mod:`repro.engine.health` — degraded-mode serving: named
  :class:`FaultProfile` scenarios, the :class:`SnrWatchdog` precision
  monitor, and the :class:`HealthMonitor` that samples thermal drift and
  injected upsets mid-stream, routes frames around recalibrating/dead
  nodes and restores bit-identical programs after recovery.
* :mod:`repro.engine.chaos` — deterministic fleet-scale fault injection:
  named :class:`ChaosPlan` schedules (node loss, region outages,
  correlated upsets, cache storms, latency spikes) resolved to
  seed-reproducible :class:`ChaosEvent` timelines replayed by the health
  monitor.
* :mod:`repro.engine.failover` — surviving the chaos: deadline-aware
  :class:`RetryPolicy` backoff, warm-standby :class:`SparePool` spares
  (cache-hit activation, bit-identical programs), and the
  :class:`BrownoutController` degradation-tier admission ladder.
* :mod:`repro.engine.router` — deterministic tenant-to-shard routing:
  rendezvous (HRW) hashing with draining-shard spillover, plus the
  hash-modulo contrast policy.
* :mod:`repro.engine.controlplane` — the sharded fleet control plane:
  named shards over plain frame servers, zoo placement, shard drains,
  and the windowed :class:`Autoscaler` (capacity-model scale-up,
  dwell-hysteresis scale-down) with a byte-deterministic
  scaling-decision audit trail.
"""

from repro.engine.admission import (
    AdmissionController,
    SloClass,
    SloClassStats,
    SloReport,
)
from repro.engine.cache import CacheStats, WeightProgramCache
from repro.engine.controlplane import (
    Autoscaler,
    AutoscalerConfig,
    ControlPlane,
    ControlPlaneReport,
    ScalingDecision,
    Shard,
)
from repro.engine.chaos import (
    CHAOS_KINDS,
    ChaosEvent,
    ChaosPlan,
    ChaosSpec,
    ChaosTimeline,
    chaos_plan,
)
from repro.engine.failover import (
    BROWNOUT_TIERS,
    BrownoutConfig,
    BrownoutController,
    BrownoutReport,
    BrownoutTransition,
    FailoverCoordinator,
    ResilienceReport,
    RetryPolicy,
    SpareActivation,
    SparePool,
    availability,
    recovery_time_s,
    retry_policy,
)
from repro.engine.health import (
    FaultProfile,
    HealthEvent,
    HealthMonitor,
    HealthReport,
    SnrWatchdog,
)
from repro.engine.scheduler import (
    POLICIES,
    EarliestDeadlinePolicy,
    FrameScheduler,
    GreedyFifoPolicy,
    SchedulingPolicy,
    SloAwarePolicy,
    scheduling_policy,
)
from repro.engine.router import (
    ROUTERS,
    HashModuloRouter,
    RendezvousRouter,
    TenantRouter,
    rendezvous_score,
    tenant_router,
)
from repro.engine.server import (
    FrameRequest,
    FrameResponse,
    FrameServer,
    ServeReport,
)
from repro.engine.store import (
    STORE_SCHEMA_VERSION,
    ProgramStore,
    StoreStats,
)
from repro.engine.workloads import (
    ModelSpec,
    Scenario,
    build_scenario,
    models_scenario,
    scenario_registry,
)

__all__ = [
    "BROWNOUT_TIERS",
    "CHAOS_KINDS",
    "POLICIES",
    "ROUTERS",
    "AdmissionController",
    "Autoscaler",
    "AutoscalerConfig",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutReport",
    "BrownoutTransition",
    "CacheStats",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosSpec",
    "ChaosTimeline",
    "ControlPlane",
    "ControlPlaneReport",
    "EarliestDeadlinePolicy",
    "FailoverCoordinator",
    "FaultProfile",
    "FrameRequest",
    "FrameResponse",
    "FrameScheduler",
    "FrameServer",
    "GreedyFifoPolicy",
    "HashModuloRouter",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "ModelSpec",
    "ProgramStore",
    "RendezvousRouter",
    "ResilienceReport",
    "RetryPolicy",
    "STORE_SCHEMA_VERSION",
    "ScalingDecision",
    "Scenario",
    "ServeReport",
    "StoreStats",
    "SchedulingPolicy",
    "Shard",
    "SloAwarePolicy",
    "SloClass",
    "SloClassStats",
    "SloReport",
    "SnrWatchdog",
    "SpareActivation",
    "SparePool",
    "TenantRouter",
    "WeightProgramCache",
    "availability",
    "build_scenario",
    "chaos_plan",
    "models_scenario",
    "recovery_time_s",
    "rendezvous_score",
    "retry_policy",
    "scenario_registry",
    "scheduling_policy",
    "tenant_router",
]
