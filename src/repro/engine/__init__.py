"""Batched frame-serving engine (cache + micro-batching + multi-node + health).

* :mod:`repro.engine.cache` — weight-program cache keyed by (kernel set,
  weight bits, die seed); kernel swaps stop re-running the AWC mapping
  chain, and :meth:`WeightProgramCache.invalidate_die` supports the
  online-recalibration path.
* :mod:`repro.engine.server` — :class:`FrameServer`: admission control with
  :mod:`repro.sim.stream` semantics, micro-batched compute through
  :class:`~repro.core.pipeline.HardwareFirstLayerPipeline`, scheduling
  across N simulated nodes with :mod:`repro.sim.fleet` transport budgets,
  and :meth:`FrameServer.warmup` to pre-program known kernel sets through
  the vectorized cold path so mid-stream swaps never stall.
* :mod:`repro.engine.health` — degraded-mode serving: named
  :class:`FaultProfile` scenarios, the :class:`SnrWatchdog` precision
  monitor, and the :class:`HealthMonitor` that samples thermal drift and
  injected upsets mid-stream, routes frames around recalibrating/dead
  nodes and restores bit-identical programs after recovery.
"""

from repro.engine.cache import CacheStats, WeightProgramCache
from repro.engine.health import (
    FaultProfile,
    HealthEvent,
    HealthMonitor,
    HealthReport,
    SnrWatchdog,
)
from repro.engine.server import (
    FrameRequest,
    FrameResponse,
    FrameServer,
    ServeReport,
)

__all__ = [
    "CacheStats",
    "FaultProfile",
    "FrameRequest",
    "FrameResponse",
    "FrameServer",
    "HealthEvent",
    "HealthMonitor",
    "HealthReport",
    "ServeReport",
    "SnrWatchdog",
    "WeightProgramCache",
]
