"""Batched frame-serving engine (cache + micro-batching + multi-node).

* :mod:`repro.engine.cache` — weight-program cache keyed by (kernel set,
  weight bits, die seed); kernel swaps stop re-running the AWC mapping
  chain.
* :mod:`repro.engine.server` — :class:`FrameServer`: admission control with
  :mod:`repro.sim.stream` semantics, micro-batched compute through
  :class:`~repro.core.pipeline.HardwareFirstLayerPipeline`, scheduling
  across N simulated nodes with :mod:`repro.sim.fleet` transport budgets,
  and :meth:`FrameServer.warmup` to pre-program known kernel sets through
  the vectorized cold path so mid-stream swaps never stall.
"""

from repro.engine.cache import CacheStats, WeightProgramCache
from repro.engine.server import (
    FrameRequest,
    FrameResponse,
    FrameServer,
    ServeReport,
)

__all__ = [
    "CacheStats",
    "FrameRequest",
    "FrameResponse",
    "FrameServer",
    "ServeReport",
    "WeightProgramCache",
]
