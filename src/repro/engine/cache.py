"""Weight-program cache: AWC mapping results keyed by kernel set.

Programming the OPC is the expensive half of serving: the AWC realization,
per-arm crosstalk solve and tuning-budget pricing walk every mapped MR in
Python.  Steady-state video amortises it away, but a *serving* workload
swaps kernel sets whenever the request mix changes model.  The cache stores
each :class:`~repro.core.opc.ProgrammedWeights` record under a digest of
(kernel set, quantizer scale, full architecture config, die seed, crosstalk
flag), so a swap back to a previously mapped set restores the realized
weights in O(1) via
:meth:`~repro.core.opc.OpticalProcessingCore.install`.

The die seed is part of the key on purpose: two chips with different AWC
mismatch patterns realize the same ideal kernel set differently, so their
programs must never be shared.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.opc import OpticalProcessingCore, ProgrammedWeights


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class WeightProgramCache:
    """LRU cache of OPC weight programs.

    Parameters
    ----------
    capacity:
        Maximum number of cached programs; ``None`` means unbounded.  One
        entry holds the realized weight tensor (same size as the kernel
        set), so bound this when serving many models.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[str, ProgrammedWeights] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> str:
        """Digest of the kernel set and everything that shapes its mapping."""
        weights = np.ascontiguousarray(quantized_weights, dtype=float)
        digest = hashlib.sha256()
        digest.update(weights.tobytes())
        digest.update(repr(weights.shape).encode())
        digest.update(repr(float(scale)).encode())
        # The full config repr: every architecture/device parameter shapes
        # the realization (AWC design, microring Q, WDM grid, ...), so two
        # differently configured cores must never share a program.
        digest.update(repr(opc.config).encode())
        digest.update(repr((opc.seed, opc.enable_crosstalk)).encode())
        return digest.hexdigest()

    def get_or_program(
        self,
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> tuple[ProgrammedWeights, bool]:
        """Install a cached program or run the mapping chain once.

        Returns ``(programmed, hit)``.  On a hit the record is installed on
        ``opc`` without re-running AWC realization/crosstalk/tuning; on a
        miss the OPC programs normally and the result is cached.
        """
        key = self.key_for(opc, quantized_weights, scale)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            opc.install(cached)
            return cached, True

        self.stats.misses += 1
        programmed = opc.program(quantized_weights, scale)
        self._entries[key] = programmed
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return programmed, False

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
