"""Weight-program cache: AWC mapping results keyed by kernel set.

Programming the OPC is the expensive half of serving: the AWC realization,
per-arm crosstalk solve and tuning-budget pricing walk every mapped MR in
Python.  Steady-state video amortises it away, but a *serving* workload
swaps kernel sets whenever the request mix changes model.  The cache stores
each :class:`~repro.core.opc.ProgrammedWeights` record under a digest of
(kernel set, quantizer scale, full architecture config, die seed, crosstalk
flag), so a swap back to a previously mapped set restores the realized
weights in O(1) via
:meth:`~repro.core.opc.OpticalProcessingCore.install`.

The die seed is part of the key on purpose: two chips with different AWC
mismatch patterns realize the same ideal kernel set differently, so their
programs must never be shared.  A calibrated die (pre-distorted AWC,
:mod:`repro.core.calibration`) gets its own key space via the mapper's
``calibration_token``.

Invalidation: the online-recalibration path
(:mod:`repro.engine.health`) calls :meth:`WeightProgramCache.invalidate_die`
when a node's watchdog trips — the die's stale programs are dropped and
the next activation re-runs the mapping chain.  Because programming is
deterministic per (die, config, kernel set) — the scalar-reference
bit-identity contract of :mod:`repro.core.reference` — the reprogrammed
entries are bit-identical to the invalidated ones.  The sharded control
plane (:mod:`repro.engine.controlplane`) reuses the same hook for shard
drains: a drained shard's dies release their resident bytes back to the
shared budget.

Priority eviction: the control plane shares *one* cache (one byte
budget) across every shard, and pins the programs of recently routed
(tenant, model) pairs via :meth:`WeightProgramCache.set_priority`.
Eviction removes the lowest-priority, least-recently-used entry first —
a pinned program is only ever evicted once every unpinned entry is gone
and the budget still does not hold.  With no priorities set the order is
exactly the historical pure LRU.

On-disk tier: an attached :class:`~repro.engine.store.ProgramStore`
makes the cache read-through/write-behind.  A memory miss first tries
the store (an integrity-checked npz load instead of the mapping chain —
counted as a hit plus :attr:`CacheStats.store_hits`); a genuine miss
programs normally and persists the result.  Eviction stays strictly an
in-memory affair — an evicted entry's on-disk copy survives and the
next activation restores it from the store — while
:meth:`WeightProgramCache.invalidate_die` drops the die's programs from
*both* layers (a recalibrated die's artifacts are stale everywhere).
Because programming is deterministic, a store-restored record is
byte-equal to a freshly programmed one, so every bit-identity golden
holds with or without a store attached.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.opc import OpticalProcessingCore, ProgrammedWeights
from repro.engine.store import ProgramStore


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Hits served by restoring an entry from the attached on-disk
    #: :class:`~repro.engine.store.ProgramStore` (a subset of neither
    #: ``hits`` nor ``misses`` arithmetic: each store restore counts one
    #: ``hits`` increment on installs via :meth:`WeightProgramCache.
    #: get_or_program`, and is stats-neutral on warmup-side
    #: :meth:`WeightProgramCache.restore_from_store` checks — ``misses``
    #: keeps meaning "mapping chains actually run").
    store_hits: int = 0
    #: Entries dropped by health-driven :meth:`WeightProgramCache.invalidate_die`
    #: calls (recalibration after a fault or thermal re-trim).
    invalidations: int = 0
    #: Bytes of :class:`~repro.core.opc.ProgrammedWeights` tensors
    #: currently resident (ideal + realized ndarray payloads per entry).
    bytes_cached: int = 0
    #: Cumulative bytes removed by capacity/budget evictions (not by
    #: invalidations or :meth:`WeightProgramCache.clear`).
    bytes_evicted: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class WeightProgramCache:
    """LRU cache of OPC weight programs.

    Parameters
    ----------
    capacity:
        Maximum number of cached programs; ``None`` means unbounded.  One
        entry holds the realized weight tensor (same size as the kernel
        set), so bound this when serving many models.
    memory_budget_bytes:
        Byte budget over the cached :class:`~repro.core.opc.
        ProgrammedWeights` tensors (see :meth:`entry_nbytes`); ``None``
        means unbounded.  Entries are LRU-evicted until the budget holds,
        independently of (and in addition to) the entry-count
        ``capacity`` — the first slice of the roadmap's cache-budgeted
        eviction for the sharded control plane.  A single entry larger
        than the whole budget is kept while it is the only resident
        entry (evicting the program that was just installed would make
        every swap a cold remap — worse than briefly exceeding the
        budget) and becomes first in line once anything newer lands.
    store:
        Optional on-disk tier (:class:`~repro.engine.store.ProgramStore`)
        making the cache read-through/write-behind: memory misses try an
        integrity-checked disk load before programming, and freshly
        programmed entries are persisted.  Eviction never touches the
        disk copy; :meth:`invalidate_die` invalidates both layers.
    """

    def __init__(
        self,
        capacity: int | None = None,
        memory_budget_bytes: int | None = None,
        store: "ProgramStore | None" = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError(
                "memory_budget_bytes must be positive or None, got "
                f"{memory_budget_bytes}"
            )
        self.capacity = capacity
        self.memory_budget_bytes = memory_budget_bytes
        self.store = store
        self.stats = CacheStats()
        self._entries: OrderedDict[str, ProgrammedWeights] = OrderedDict()
        #: Die seed each entry was programmed on, for health-driven
        #: invalidation (a recalibrated die's old programs are stale).
        self._die_of: dict[str, int | None] = {}
        #: Resident byte size per entry (computed once at insert).
        self._nbytes_of: dict[str, int] = {}
        #: Eviction priority per key (0 = normal LRU, higher = pinned).
        #: Outlives residency on purpose: a pin set before the program is
        #: computed (preload-on-route) applies when the entry lands.
        self._priority_of: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def entry_nbytes(programmed: ProgrammedWeights) -> int:
        """Resident bytes of one program: its ndarray payloads.

        ``ideal`` and ``realized`` are the only per-entry tensors; the
        scale/tuning scalars are negligible and deliberately uncounted so
        the accounting matches what actually scales with the kernel set.
        """
        return int(programmed.ideal.nbytes) + int(programmed.realized.nbytes)

    @staticmethod
    def key_for(
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> str:
        """Digest of the kernel set and everything that shapes its mapping."""
        weights = np.ascontiguousarray(quantized_weights, dtype=float)
        digest = hashlib.sha256()
        digest.update(weights.tobytes())
        digest.update(repr(weights.shape).encode())
        digest.update(repr(float(scale)).encode())
        # The full config repr: every architecture/device parameter shapes
        # the realization (AWC design, microring Q, WDM grid, ...), so two
        # differently configured cores must never share a program.
        digest.update(repr(opc.config).encode())
        digest.update(repr((opc.seed, opc.enable_crosstalk)).encode())
        # Calibrated AWC mappers (code pre-distortion, core/calibration)
        # realize different levels than the raw bank; their programs must
        # not be shared with an uncalibrated core of the same die.
        digest.update(
            repr(getattr(opc.awc, "calibration_token", None)).encode()
        )
        return digest.hexdigest()

    def get_or_program(
        self,
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> tuple[ProgrammedWeights, bool]:
        """Install a cached program or run the mapping chain once.

        Returns ``(programmed, hit)``.  On a hit the record is installed on
        ``opc`` without re-running AWC realization/crosstalk/tuning; on a
        miss the OPC programs normally and the result is cached.
        """
        key = self.key_for(opc, quantized_weights, scale)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            opc.install(cached)
            return cached, True

        restored = self._restore(key, opc.seed)
        if restored is not None:
            self.stats.hits += 1
            opc.install(restored)
            return restored, True

        self.stats.misses += 1
        programmed = opc.program(quantized_weights, scale)
        self._insert(key, programmed, opc.seed)
        if self.store is not None:
            self.store.put(key, programmed, die=opc.seed)
        return programmed, False

    def preload(
        self,
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
        programmed: ProgrammedWeights,
    ) -> None:
        """Insert a program computed elsewhere, without installing it.

        The parallel warmup path (:meth:`~repro.engine.server.FrameServer.
        warmup` with a process/thread backend) programs (model, die) pairs
        in workers and ships the :class:`~repro.core.opc.ProgrammedWeights`
        records back to the main process; this seeds the shared cache so
        the subsequent in-process activations are hits.  Counts as a miss
        — the mapping chain *did* run, just in another address space — so
        warmup's miss total still reads "programs computed".  Budget and
        capacity eviction apply exactly as on a miss.

        The caller owns the determinism obligation: ``programmed`` must be
        what ``opc.program(quantized_weights, scale)`` would produce —
        guaranteed for workers that rebuilt an identically configured core
        from the same (config, die seed), per the scalar-reference
        bit-identity contract of :mod:`repro.core.reference`.
        """
        key = self.key_for(opc, quantized_weights, scale)
        if key in self._entries:
            return
        self.stats.misses += 1
        self._insert(key, programmed, opc.seed)
        if self.store is not None:
            # Write-behind: the worker-computed program becomes a durable
            # artifact a later run restores instead of recomputing.
            self.store.put(key, programmed, die=opc.seed)

    def has_program(
        self,
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> bool:
        """Whether a program is resident, without touching stats or LRU."""
        return self.key_for(opc, quantized_weights, scale) in self._entries

    def attach_store(self, store: ProgramStore) -> None:
        """Attach an on-disk tier after construction.

        Attaching the same store twice is a no-op; replacing a
        different one is refused — two stores behind one cache would
        split the write-behind stream unpredictably.
        """
        if self.store is store:
            return
        if self.store is not None:
            raise ValueError(
                "cache already has a program store attached; build a new "
                "cache to switch stores"
            )
        self.store = store

    def _restore(self, key: str, die: int | None) -> ProgrammedWeights | None:
        """Pull one entry from the store into memory (``None`` on miss)."""
        if self.store is None:
            return None
        restored = self.store.load(key)
        if restored is None:
            return None
        self.stats.store_hits += 1
        self._insert(key, restored, die)
        return restored

    def restore_from_store(
        self,
        opc: OpticalProcessingCore,
        quantized_weights: np.ndarray,
        scale: float,
    ) -> bool:
        """Make a program resident from the store if possible.

        The parallel warmup path calls this while collecting pending
        (model, die) pairs: a pair the store already holds needs no
        worker task at all — restoring an npz beats reprogramming by
        orders of magnitude.  Returns whether the program is resident
        afterwards.  Stats-neutral on the hit/miss counters (like
        :meth:`has_program`); a successful restore counts one
        :attr:`CacheStats.store_hits`.
        """
        key = self.key_for(opc, quantized_weights, scale)
        if key in self._entries:
            return True
        return self._restore(key, opc.seed) is not None

    def set_priority(self, key: str, priority: int) -> None:
        """Set one key's eviction priority (0 restores plain LRU).

        Priorities are *sticky*: they survive eviction, invalidation and
        :meth:`clear`, so a pin set before the program is computed
        (the control plane's preload-on-route path) applies when the
        entry eventually lands.  Callers own unpinning — the control
        plane drops a shard's pins when the shard drains.
        """
        if priority:
            self._priority_of[key] = int(priority)
        else:
            self._priority_of.pop(key, None)

    def priority_of(self, key: str) -> int:
        """The eviction priority of ``key`` (0 when never set)."""
        return self._priority_of.get(key, 0)

    def _eviction_candidate(self) -> str:
        """The key to evict: lowest priority first, LRU within a priority.

        The newest entry (the one just installed) is never a candidate —
        evicting the program the caller is about to use would turn every
        swap into a cold remap, the same rationale as the sole-oversized-
        entry rule.  With no priorities set this degenerates to "oldest
        key", the historical pure-LRU order, exactly.
        """
        candidates = list(self._entries)[:-1]
        best = candidates[0]
        best_priority = self._priority_of.get(best, 0)
        for key in candidates[1:]:
            if best_priority <= 0:
                break  # an unpinned LRU-oldest entry always wins
            priority = self._priority_of.get(key, 0)
            if priority < best_priority:
                best, best_priority = key, priority
        return best

    def _insert(
        self, key: str, programmed: ProgrammedWeights, die: int | None
    ) -> None:
        """Store one entry, then evict until capacity and budget hold.

        Eviction order is (priority, least-recently-used) — see
        :meth:`set_priority`; a cache with no priorities set evicts in
        the historical pure-LRU order.
        """
        self._entries[key] = programmed
        self._die_of[key] = die
        self._nbytes_of[key] = self.entry_nbytes(programmed)
        self.stats.bytes_cached += self._nbytes_of[key]
        while len(self._entries) > 1 and (
            (self.capacity is not None and len(self._entries) > self.capacity)
            or (
                self.memory_budget_bytes is not None
                and self.stats.bytes_cached > self.memory_budget_bytes
            )
        ):
            evicted = self._eviction_candidate()
            self._entries.pop(evicted)
            self._die_of.pop(evicted, None)
            nbytes = self._nbytes_of.pop(evicted, 0)
            self.stats.bytes_cached -= nbytes
            self.stats.bytes_evicted += nbytes
            self.stats.evictions += 1

    def invalidate_die(self, seed: int | None) -> int:
        """Drop every program mapped on the die with ``seed``.

        The online-recalibration path calls this when a node's watchdog
        trips: after a thermal re-trim or an upset recovery the die's old
        realized-weight records are stale, so the next ``activate`` of each
        model on that node must re-run the (deterministic) mapping chain.
        Returns the number of entries dropped.
        """
        stale = [key for key, die in self._die_of.items() if die == seed]
        for key in stale:
            self._entries.pop(key, None)
            self._die_of.pop(key, None)
            self.stats.bytes_cached -= self._nbytes_of.pop(key, 0)
        self.stats.invalidations += len(stale)
        if self.store is not None:
            # Both layers: the recalibrated die's on-disk artifacts are
            # as stale as its resident programs.
            self.store.invalidate_die(seed)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (stats are kept; ``bytes_cached`` zeroes)."""
        self._entries.clear()
        self._die_of.clear()
        self._nbytes_of.clear()
        self.stats.bytes_cached = 0
