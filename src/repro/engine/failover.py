"""Failover: deadline-aware retry, warm spares, brownout degradation tiers.

:mod:`repro.engine.chaos` makes fleet-scale failure injectable; this
module makes the serving stack *survive* it.  Three mechanisms, all
deterministic in simulated stream time:

* :class:`RetryPolicy` — when a node trips mid-run, its in-flight frames
  are re-dispatched: a hedged first retry after a short detection delay,
  then exponential backoff with jitter from ``derive_rng`` streams.
  Deadline-aware (a retry that cannot finish before the frame's absolute
  deadline is abandoned immediately instead of wasting capacity) with
  per-class retry budgets so best-effort retries can never starve
  interactive traffic.
* :class:`SparePool` / :class:`FailoverCoordinator` — warm-standby
  spares: a spare activates against the *failed node's die seed*, so
  every program the primary warmed via :meth:`FrameServer.warmup` /
  :meth:`WeightProgramCache.preload` is a cache **hit** on the spare and
  the installed programs are bit-identical to the primary's (the cache
  key includes the die seed — same die, same realized weights).
* :class:`BrownoutController` — admission steps through explicit
  degradation tiers under sustained overload or capacity loss: *normal* →
  *shed best-effort* → *tighten ``max_queue_s``* → *serve at reduced
  weight bits* → *reject*, with hysteresis (exit thresholds below entry,
  minimum dwell) and a full :class:`BrownoutTransition` audit trail in
  ``ServeReport.brownout``.  The reduced-bits tier serves through real
  reduced-precision model variants, so its latency/energy books are the
  honest reduced-bit numbers (CamJ-style end-to-end accounting).

Honest accounting: a frame killed in flight keeps its already-spent
dispatch energy in ``total_energy_j`` (the work happened) and the waste is
itemised in :class:`ResilienceReport.wasted_energy_j`; retries pay the
full dispatch cost again.

Default-path contract: with ``retry_policy=None``, ``spares=0`` and
``brownout=None`` the server constructs no coordinator and serving is
byte-identical to a server without this module.

Units: all times in *simulated* seconds, energies in joules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import derive_rng
from repro.util.validation import check_non_negative, check_positive

#: Brownout tier names, by level (index = tier).
BROWNOUT_TIERS = (
    "normal",
    "shed-best-effort",
    "tighten-queue",
    "reduced-bits",
    "reject",
)


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry with exponential backoff + derived jitter.

    Parameters
    ----------
    name:
        Display/CLI name.
    max_retries:
        Re-dispatch attempts per frame after its first dispatch.
    detection_delay_s:
        Time to notice a tripped node; the hedged first retry fires after
        just this delay.
    backoff_base_s / backoff_factor:
        Retry *k* (k >= 2, or every retry when ``hedge_on_trip`` is off)
        waits ``backoff_base_s * backoff_factor**(k-1)`` after the
        failure, scaled by the jitter draw.
    jitter_frac:
        Uniform ±fraction applied to the backoff delay, drawn from
        ``derive_rng(seed, "retry-<frame>-<attempt>")`` — deterministic
        per (seed, frame, attempt).
    hedge_on_trip:
        Whether the first retry is hedged (fires at detection delay
        instead of the first backoff step).
    class_budget_frac:
        Per-SLO-class retry budget as a fraction of the class's offered
        frames so far (floor of one retry).  Best-effort retry storms
        therefore cannot starve interactive capacity.
    """

    name: str = "deadline"
    max_retries: int = 3
    detection_delay_s: float = 2e-4
    backoff_base_s: float = 5e-4
    backoff_factor: float = 2.0
    jitter_frac: float = 0.25
    hedge_on_trip: bool = True
    class_budget_frac: float = 0.5

    def __post_init__(self) -> None:
        check_positive("max_retries", self.max_retries)
        check_non_negative("detection_delay_s", self.detection_delay_s)
        check_positive("backoff_base_s", self.backoff_base_s)
        check_positive("backoff_factor", self.backoff_factor)
        check_non_negative("jitter_frac", self.jitter_frac)
        check_positive("class_budget_frac", self.class_budget_frac)
        if self.jitter_frac >= 1.0:
            raise ValueError(
                f"jitter_frac must be < 1, got {self.jitter_frac}"
            )

    def delay_s(self, index: int, attempt: int, seed: int | None) -> float:
        """Delay before retry ``attempt`` (1-based) of frame ``index``.

        Deterministic: the jitter draw comes from a stream keyed by
        (seed, frame index, attempt), independent of scheduling order.
        """
        if attempt <= 1 and self.hedge_on_trip:
            return self.detection_delay_s
        step = attempt - 1 if self.hedge_on_trip else attempt
        delay = self.backoff_base_s * self.backoff_factor ** (step - 1)
        if self.jitter_frac > 0.0:
            rng = derive_rng(seed, f"retry-{index}-{attempt}")
            delay *= 1.0 + self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return self.detection_delay_s + delay

    @staticmethod
    def named(name: str) -> "RetryPolicy | None":
        """Look up a named policy (the CLI ``--retry-policy`` values)."""
        key = name.strip().lower()
        policies = {
            "none": None,
            "deadline": RetryPolicy(),
            # More attempts, tighter backoff, full class budgets — for
            # drills where losing frames is worse than wasting capacity.
            "aggressive": RetryPolicy(
                name="aggressive",
                max_retries=5,
                backoff_base_s=2.5e-4,
                class_budget_frac=1.0,
            ),
        }
        if key not in policies:
            raise ValueError(
                f"unknown retry policy {name!r}; known: "
                f"{', '.join(sorted(policies))}"
            )
        return policies[key]


def retry_policy(spec: "str | RetryPolicy | None") -> RetryPolicy | None:
    """Resolve a policy name or pass a policy (or ``None``) through."""
    if spec is None or isinstance(spec, RetryPolicy):
        return spec
    return RetryPolicy.named(spec)


# ----------------------------------------------------------------------
# Spares
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpareActivation:
    """One warm-standby activation on the audit trail."""

    time_s: float
    #: Node id the spare joined the fleet as.
    spare_id: int
    #: Failed node the spare covers (and whose die seed it adopts).
    covering_node: int
    #: Stream time the spare starts taking frames.
    ready_s: float


@dataclass(frozen=True)
class SparePool:
    """Warm-standby budget: how many spares, how fast they come up."""

    count: int
    #: Power-up + attach latency before the spare takes its first frame.
    #: Pre-warmed programs make the *programming* free (cache hits); this
    #: is the remaining bring-up cost.
    activation_latency_s: float = 2e-3

    def __post_init__(self) -> None:
        check_non_negative("count", self.count)
        check_non_negative(
            "activation_latency_s", self.activation_latency_s
        )


# ----------------------------------------------------------------------
# Brownout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds/effects of the degradation ladder.

    Pressure is ``wait_estimate / pressure_ref_s + capacity_weight *
    unavailable_fraction`` — one unitless load signal combining queueing
    delay and capacity loss.  Tier *k* (1-based) is entered when pressure
    holds above ``enter_pressure[k-1]`` for ``dwell_s`` and exited when it
    holds below ``enter_pressure[k-1] * exit_fraction`` for ``dwell_s``
    (hysteresis: the exit bar is strictly lower than the entry bar).
    """

    enter_pressure: tuple[float, float, float, float] = (1.0, 2.5, 5.0, 10.0)
    exit_fraction: float = 0.5
    dwell_s: float = 2e-3
    pressure_ref_s: float = 5e-3
    capacity_weight: float = 4.0
    #: Tier 1+ sheds classes at priority <= this.
    shed_priority_max: int = 0
    #: Tier 2+ multiplies each class's ``max_queue_s`` by this...
    queue_tighten_factor: float = 0.5
    #: ...and imposes this bound on classes that had none.
    imposed_queue_s: float = 0.01
    #: Tier 3+ serves through variants quantized to at most this many bits.
    reduced_bits: int = 2

    def __post_init__(self) -> None:
        if len(self.enter_pressure) != len(BROWNOUT_TIERS) - 1:
            raise ValueError(
                f"enter_pressure needs {len(BROWNOUT_TIERS) - 1} entries, "
                f"got {len(self.enter_pressure)}"
            )
        if list(self.enter_pressure) != sorted(self.enter_pressure):
            raise ValueError("enter_pressure must be non-decreasing")
        if not 0.0 < self.exit_fraction < 1.0:
            raise ValueError(
                f"exit_fraction must be in (0, 1), got {self.exit_fraction}"
            )
        check_non_negative("dwell_s", self.dwell_s)
        check_positive("pressure_ref_s", self.pressure_ref_s)
        check_non_negative("capacity_weight", self.capacity_weight)
        check_positive("queue_tighten_factor", self.queue_tighten_factor)
        check_positive("imposed_queue_s", self.imposed_queue_s)
        if not 1 <= self.reduced_bits <= 4:
            raise ValueError(
                f"reduced_bits must be in [1, 4], got {self.reduced_bits}"
            )

    @staticmethod
    def named(name: str) -> "BrownoutConfig | None":
        """Look up a named config (the CLI ``--brownout`` values)."""
        key = name.strip().lower()
        configs = {
            "none": None,
            "standard": BrownoutConfig(),
        }
        if key not in configs:
            raise ValueError(
                f"unknown brownout config {name!r}; known: "
                f"{', '.join(sorted(configs))}"
            )
        return configs[key]


@dataclass(frozen=True)
class BrownoutTransition:
    """One tier change on the audit trail."""

    time_s: float
    from_tier: int
    to_tier: int
    #: The pressure signal at the transition instant.
    pressure: float
    reason: str

    @property
    def to_name(self) -> str:
        return BROWNOUT_TIERS[self.to_tier]


@dataclass
class BrownoutReport:
    """Tier history + per-tier admission counts of one served stream."""

    transitions: list[BrownoutTransition] = field(default_factory=list)
    #: Arrivals observed while each tier was active (index = tier).
    frames_by_tier: list[int] = field(
        default_factory=lambda: [0] * len(BROWNOUT_TIERS)
    )
    peak_tier: int = 0
    #: Arrivals shed *by brownout* (tier sheds + tightened-queue sheds),
    #: a subset of the stream's shed count.
    shed_frames: int = 0
    #: Frames served through a reduced-bits variant.
    reduced_bits_frames: int = 0

    @property
    def peak_tier_name(self) -> str:
        return BROWNOUT_TIERS[self.peak_tier]


class BrownoutController:
    """Steps admission through degradation tiers with hysteresis.

    One controller covers one ``serve`` call (tier state restarts with
    the stream clock).  :meth:`observe` is called once per arrival with
    the scheduler's wait estimate and the monitor's unavailable fraction;
    the effect queries (:meth:`admits`, :meth:`effective_max_queue_s`,
    :meth:`wants_reduced_bits`) then shape that arrival's admission.
    Escalation moves one tier per dwell window so the audit trail shows
    every rung of the ladder.
    """

    def __init__(self, config: BrownoutConfig | None = None) -> None:
        self.config = config if config is not None else BrownoutConfig()
        self.tier = 0
        self.report = BrownoutReport()
        self._above_since: float | None = None
        self._below_since: float | None = None

    # -- signal ---------------------------------------------------------
    def pressure(self, wait_s: float, unavailable_fraction: float) -> float:
        """The combined load signal (unitless)."""
        cfg = self.config
        bounded_wait = (
            wait_s
            if math.isfinite(wait_s)
            # Every node dead: saturate well past the top entry bar.
            else 2.0 * cfg.enter_pressure[-1] * cfg.pressure_ref_s
        )
        return (
            bounded_wait / cfg.pressure_ref_s
            + cfg.capacity_weight * unavailable_fraction
        )

    def observe(
        self, now_s: float, wait_s: float, unavailable_fraction: float
    ) -> int:
        """Advance the tier state machine; returns the active tier."""
        cfg = self.config
        pressure = self.pressure(wait_s, unavailable_fraction)
        if self.tier < len(BROWNOUT_TIERS) - 1 and (
            pressure >= cfg.enter_pressure[self.tier]
        ):
            self._below_since = None
            if self._above_since is None:
                self._above_since = now_s
            if now_s - self._above_since >= cfg.dwell_s:
                self._step(now_s, self.tier + 1, pressure, "pressure above entry bar")
                self._above_since = now_s
        elif self.tier > 0 and (
            pressure
            <= cfg.enter_pressure[self.tier - 1] * cfg.exit_fraction
        ):
            self._above_since = None
            if self._below_since is None:
                self._below_since = now_s
            if now_s - self._below_since >= cfg.dwell_s:
                self._step(now_s, self.tier - 1, pressure, "pressure below exit bar")
                self._below_since = now_s
        else:
            self._above_since = None
            self._below_since = None
        self.report.frames_by_tier[self.tier] += 1
        return self.tier

    def _step(
        self, now_s: float, to_tier: int, pressure: float, reason: str
    ) -> None:
        self.report.transitions.append(
            BrownoutTransition(now_s, self.tier, to_tier, pressure, reason)
        )
        self.tier = to_tier
        self.report.peak_tier = max(self.report.peak_tier, to_tier)

    # -- effects --------------------------------------------------------
    def admits(self, slo) -> bool:
        """Whether the active tier admits an arrival of class ``slo``."""
        if self.tier >= len(BROWNOUT_TIERS) - 1:
            return False  # reject tier: nothing gets in
        if self.tier >= 1 and slo.priority <= self.config.shed_priority_max:
            return False
        return True

    def effective_max_queue_s(self, slo) -> float | None:
        """The class's backpressure bound under the active tier."""
        if self.tier < 2:
            return slo.max_queue_s
        if slo.max_queue_s is None:
            return self.config.imposed_queue_s
        return min(
            slo.max_queue_s * self.config.queue_tighten_factor,
            self.config.imposed_queue_s,
        )

    @property
    def wants_reduced_bits(self) -> bool:
        """Whether the active tier serves through reduced-bits variants."""
        return self.tier >= 3


# ----------------------------------------------------------------------
# Resilience accounting + coordinator
# ----------------------------------------------------------------------
@dataclass
class ResilienceReport:
    """Retry/spare outcomes of one served stream."""

    retry_policy: str
    spares_configured: int = 0
    #: In-flight frames killed by a node loss.
    frames_lost_in_flight: int = 0
    #: Lost/retried frames never delivered (budget, deadline or attempts
    #: exhausted) — the stream's ``lost`` drop category.
    frames_abandoned: int = 0
    #: Lost frames ultimately delivered through a retry.
    frames_recovered: int = 0
    retries_scheduled: int = 0
    #: Retry dispatches that reached a node (incl. via a queue).
    retries_dispatched: int = 0
    #: Retries refused by the per-class budget.
    retry_budget_denials: int = 0
    #: Energy already spent on killed in-flight dispatches [J] — kept in
    #: ``total_energy_j`` (the work happened) and itemised here.
    wasted_energy_j: float = 0.0
    spare_activations: list[SpareActivation] = field(default_factory=list)

    @property
    def spares_activated(self) -> int:
        return len(self.spare_activations)

    @property
    def recovery_ratio(self) -> float:
        """Recovered over lost in-flight frames (1.0 when nothing lost)."""
        if self.frames_lost_in_flight == 0:
            return 1.0
        return self.frames_recovered / self.frames_lost_in_flight


class FailoverCoordinator:
    """One serve call's retry/spare/brownout state, consulted by the
    scheduler.

    Parameters
    ----------
    retry:
        The :class:`RetryPolicy` (``None`` disables retries).
    spares:
        The :class:`SparePool` budget (``None``/count 0 disables spares).
    brownout:
        A fresh :class:`BrownoutController` (``None`` disables tiers).
    seed:
        Server seed — keys the retry jitter streams.
    spare_factory:
        ``(covering_node, ready_s) -> node`` callback the server provides
        to construct + attach a warm spare (the server owns node
        construction); ``None`` when spares are disabled.
    reduced_key:
        ``{model_key: reduced-variant key}`` mapping for the brownout
        reduced-bits tier (identity for keys without a variant).
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        spares: SparePool | None = None,
        brownout: BrownoutController | None = None,
        seed: int | None = 0,
        spare_factory=None,
        reduced_key: dict[str, str] | None = None,
    ) -> None:
        self.retry = retry
        self.spares = spares
        self.brownout = brownout
        self.seed = seed
        self._spare_factory = spare_factory
        self._reduced_key = dict(reduced_key or {})
        self.report = ResilienceReport(
            retry_policy=retry.name if retry is not None else "none",
            spares_configured=spares.count if spares is not None else 0,
        )
        self._offered_by_class: dict[str, int] = {}
        self._retries_by_class: dict[str, int] = {}
        #: Failed node ids already covered by a spare.
        self._covered: set[int] = set()

    # -- admission-side bookkeeping ------------------------------------
    def record_offered(self, class_name: str) -> None:
        """Count one arrival toward the class's retry budget base."""
        self._offered_by_class[class_name] = (
            self._offered_by_class.get(class_name, 0) + 1
        )

    # -- retry decisions ------------------------------------------------
    def _budget_allows(self, class_name: str) -> bool:
        if self.retry is None:
            return False
        offered = self._offered_by_class.get(class_name, 0)
        allowed = max(
            1, math.ceil(self.retry.class_budget_frac * offered)
        )
        return self._retries_by_class.get(class_name, 0) < allowed

    def _schedule(self, item, now_s: float, service_hint_s: float):
        """Common retry gate: attempts, budget, deadline feasibility."""
        attempt = item.attempt + 1
        if self.retry is None or attempt > self.retry.max_retries:
            return None
        if not self._budget_allows(item.slo.name):
            self.report.retry_budget_denials += 1
            return None
        retry_at = now_s + self.retry.delay_s(item.index, attempt, self.seed)
        if math.isfinite(item.deadline_s) and (
            retry_at + service_hint_s > item.deadline_s
        ):
            return None  # deadline-aware: cannot finish in time
        self._retries_by_class[item.slo.name] = (
            self._retries_by_class.get(item.slo.name, 0) + 1
        )
        self.report.retries_scheduled += 1
        return retry_at

    def retry_after_loss(self, item, now_s: float, service_hint_s: float):
        """Retry time for an in-flight frame killed at ``now_s`` (hedged
        first attempt), or ``None`` to abandon."""
        return self._schedule(item, now_s, service_hint_s)

    def retry_after_busy(self, item, now_s: float, service_hint_s: float):
        """Next backoff step for a retry that found no free node."""
        return self._schedule(item, now_s, service_hint_s)

    # -- spares ---------------------------------------------------------
    def request_spare(self, failed_node, now_s: float):
        """Activate a warm spare covering ``failed_node`` (or ``None``).

        The spare adopts the failed node's die seed, so every program the
        primary warmed is already in the shared cache under the spare's
        key — activation is pure cache hits and the installed programs
        are bit-identical to the primary's.
        """
        if (
            self.spares is None
            or self._spare_factory is None
            or len(self._covered) >= self.spares.count
            or failed_node.node_id in self._covered
        ):
            return None
        self._covered.add(failed_node.node_id)
        ready_s = now_s + self.spares.activation_latency_s
        spare = self._spare_factory(failed_node, ready_s)
        self.report.spare_activations.append(
            SpareActivation(
                time_s=now_s,
                spare_id=spare.node_id,
                covering_node=failed_node.node_id,
                ready_s=ready_s,
            )
        )
        return spare

    # -- brownout -------------------------------------------------------
    def effective_model_key(self, model_key: str) -> str:
        """The key to dispatch under the active brownout tier."""
        if self.brownout is None or not self.brownout.wants_reduced_bits:
            return model_key
        return self._reduced_key.get(model_key, model_key)


# ----------------------------------------------------------------------
# Report-level metrics (consumed by benches + robustness report)
# ----------------------------------------------------------------------
def availability(report) -> float:
    """Delivered over offered frames of one :class:`ServeReport`."""
    offered = report.stream.frames
    return report.delivered / offered if offered else 0.0


def recovery_time_s(report, model_keys=None) -> float | None:
    """Stream time from the first chaos loss onset until the first
    post-onset arrival is delivered.

    ``None`` when the report saw no loss events; ``inf`` when nothing
    arriving after the onset was ever delivered.  Restrict to
    ``model_keys`` to measure one class (e.g. interactive only).
    """
    health = getattr(report, "health", None)
    if health is None:
        return None
    onsets = [
        event.time_s
        for event in health.events
        if event.kind == "chaos-node-loss"
    ]
    if not onsets:
        return None
    onset = min(onsets)
    finishes = [
        response.event.finish_s
        for response in report.responses
        if not response.dropped
        and response.event.arrival_s >= onset
        and (model_keys is None or response.model_key in model_keys)
    ]
    return min(finishes) - onset if finishes else math.inf


__all__ = [
    "BROWNOUT_TIERS",
    "BrownoutConfig",
    "BrownoutController",
    "BrownoutReport",
    "BrownoutTransition",
    "FailoverCoordinator",
    "ResilienceReport",
    "RetryPolicy",
    "SpareActivation",
    "SparePool",
    "availability",
    "recovery_time_s",
    "retry_policy",
]
