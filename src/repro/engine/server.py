"""Frame-serving facade: cache + health + scheduler wired into one server.

``FrameServer`` turns the per-figure evaluation stack into a serving path:
frame requests tagged with a model key arrive at an offered rate, pass
through admission control (:mod:`repro.engine.admission` SLO classes and
load shedding), get placed on nodes by a pluggable scheduling policy
(:mod:`repro.engine.scheduler` — greedy-FIFO by default, EDF and
SLO-aware weighted fair queuing for multi-tenant mixes), and the admitted
frames run through :class:`~repro.core.pipeline.HardwareFirstLayerPipeline`
in micro-batches.  Three mechanisms make it faster and more scalable than
a per-frame loop:

* **vectorized warm path** — admitted frames are stacked and
  ternary-encoded once per (model, frame geometry) across the whole
  fleet, then each per-(node, model) run computes in a single batched
  forward (row-stable ops over the full run, BLAS matrix products at the
  ``micro_batch`` partition), amortising the per-call overhead of the
  whole layer stack; the pre-vectorization per-chunk loop is retained as
  ``compute_mode="reference"`` and the two are bit-identical
  (``tests/test_engine_batched.py``);
* **weight-program caching** — kernel swaps reinstall cached
  :class:`~repro.core.opc.ProgrammedWeights` records instead of re-running
  the AWC mapping chain (:mod:`repro.engine.cache`);
* **multi-node scheduling** — requests spread across N simulated nodes
  (distinct die seeds) with model affinity, reusing the
  :mod:`repro.sim.fleet` radio/payload models for the transport budget.

Simulated-hardware semantics stay honest: a kernel swap still pays the
mapping phase in *simulated* time and energy — the cache only removes the
redundant *host-side* recomputation of the realized weights.

Under a :class:`~repro.engine.health.FaultProfile` the server additionally
samples per-node health mid-stream (thermal drift, injected upsets),
routes frames around recalibrating or dead nodes, and reports
degraded/recovered statistics (:class:`ServeReport.health`).  With no
profile the health path is absent and serving is bit-identical to the
pre-health engine.

Units: arrivals/latencies in *simulated* seconds (``arrival_s``,
``StreamEvent`` fields), energies in joules, ``wall_clock_s`` in host
seconds — the two clocks are independent by design, so host-side caching
never changes simulated physics.  Paper anchors: the 1000 FPS frame-rate
claim (Section IV) sets the default offered rate; the fleet transport
budget reuses Fig. 2's thing-centric payload accounting.

Layering: this module is the thin facade.  Simulated-time admission and
placement live in :mod:`repro.engine.scheduler`, service levels in
:mod:`repro.engine.admission`, scenario generation in
:mod:`repro.engine.workloads`; the facade owns model registration, node
construction, warmup and the micro-batched host compute.  The default
configuration — ``policy="greedy"``, no SLO classes,
``fault_profile=None`` — is **bit-identical** to the pre-split engine
(pinned by ``tests/test_engine_scheduler.py``).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OISAConfig
from repro.core.controller import FrameTiming, TimingController
from repro.core.energy import OISAEnergyModel
from repro.core.mapping import (
    ConvWorkload,
    MlpWorkload,
    plan_convolution,
    plan_mlp,
)
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.engine.admission import (
    AdmissionController,
    SloClass,
    SloReport,
    build_slo_report,
)
from repro.engine.cache import WeightProgramCache
from repro.engine.chaos import ChaosPlan, ChaosTimeline
from repro.engine.failover import (
    BrownoutConfig,
    BrownoutController,
    BrownoutReport,
    FailoverCoordinator,
    ResilienceReport,
    RetryPolicy,
    SparePool,
)
from repro.engine.health import FaultProfile, HealthMonitor, HealthReport
from repro.engine.scheduler import (
    FrameScheduler,
    SchedulingPolicy,
    scheduling_policy,
)
from repro.engine.store import ProgramStore
from repro.nn.layers import Sequential
from repro.nn.quant import UniformWeightQuantizer
from repro.sim.fleet import FleetModel, RadioModel
from repro.sim.stream import StreamEvent, StreamReport
from repro.util.parallel import ParallelConfig, parallel_map
from repro.util.rng import spawn_seeds
from repro.util.validation import check_positive


def _warmup_program_task(
    task: tuple[OISAConfig, int | None, bool, bool, bool, np.ndarray, float],
):
    """Program one (model, die) pair in a worker process.

    Pure and picklable per the :mod:`repro.util.parallel` contract: the
    task description carries everything that shapes the mapping — the
    architecture config, the die seed, the noise/calibration flags and
    the quantized kernel set — and the worker rebuilds an identically
    configured :class:`~repro.core.opc.OpticalProcessingCore` from it.
    Programming is deterministic per (config, die, kernel set)
    (:mod:`repro.core.reference` contract), so the returned
    :class:`~repro.core.opc.ProgrammedWeights` is bit-identical to what
    the main-process core would have computed.
    """
    (
        config,
        die_seed,
        enable_crosstalk,
        enable_read_noise,
        calibrated,
        quantized,
        scale,
    ) = task
    opc = OpticalProcessingCore(
        config,
        seed=die_seed,
        enable_crosstalk=enable_crosstalk,
        enable_read_noise=enable_read_noise,
    )
    if calibrated:
        from repro.core.calibration import CalibratedAwcMapper

        opc.awc = CalibratedAwcMapper(opc.awc)
    return opc.program(quantized, scale)


@dataclass(frozen=True)
class FrameRequest:
    """One frame offered to the server."""

    frame: np.ndarray
    model_key: str
    #: Arrival timestamp [s]; ``None`` means "derive from the offered rate".
    arrival_s: float | None = None
    #: Tenant the frame bills to (weighted-fair-queuing identity); ``None``
    #: means "the model key is the tenant".
    tenant: str | None = None


@dataclass(frozen=True)
class FrameResponse:
    """The fate (and output) of one request."""

    index: int
    model_key: str
    node_id: int
    output: np.ndarray | None
    event: StreamEvent
    #: Whether the frame computed on a degraded (upset) die — only ever
    #: True when the server runs under a :class:`FaultProfile`.
    degraded: bool = False
    #: Model key actually dispatched when it differs from the request
    #: (brownout reduced-bits variants); ``None`` = served as requested.
    served_model: str | None = None

    @property
    def dropped(self) -> bool:
        """Whether admission control rejected the frame."""
        return self.event.dropped


@dataclass
class ServeReport:
    """Everything one :meth:`FrameServer.serve` call produced."""

    #: Simulated-time stream statistics (drops, latency, energy) in the
    #: same shape :mod:`repro.sim.stream` reports.
    stream: StreamReport
    responses: list[FrameResponse] = field(default_factory=list)
    #: Host wall-clock spent computing the admitted frames.
    wall_clock_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Delivered frames per node id.
    node_frames: dict[int, int] = field(default_factory=dict)
    #: First-layer feature payload shipped off-node (fleet radio model).
    payload_bytes: int = 0
    radio_energy_j: float = 0.0
    #: Degraded/recovered statistics when serving under a
    #: :class:`~repro.engine.health.FaultProfile` (``None`` otherwise).
    health: HealthReport | None = None
    #: Per-class SLO accounting (``None`` on the default best-effort path).
    slo: SloReport | None = None
    #: Retry/spare outcomes when a failover layer is configured
    #: (``None`` otherwise).
    resilience: ResilienceReport | None = None
    #: Brownout tier history when a brownout controller is configured
    #: (``None`` otherwise).
    brownout: BrownoutReport | None = None
    #: Control-plane accounting (routing table, scaling-decision audit
    #: trail, node-seconds) when the report came through a
    #: :class:`~repro.engine.controlplane.ControlPlane` (``None`` on the
    #: plain single-fleet path).  Typed loosely to keep the facade free
    #: of an engine-internal import cycle.
    controlplane: object | None = None

    @property
    def delivered(self) -> int:
        """Frames that produced features."""
        return self.stream.frames - self.stream.dropped

    @property
    def wall_clock_fps(self) -> float:
        """Host throughput: delivered frames per wall-clock second."""
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.delivered / self.wall_clock_s


class _ModelEntry:
    """Per-model precomputation: pipeline template + timing + energy."""

    def __init__(
        self,
        key: str,
        model: Sequential,
        config: OISAConfig,
        fleet: FleetModel,
    ) -> None:
        self.key = key
        self.model = model
        self._config = config
        self._fleet = fleet
        #: Per-die timing/energy tables, keyed by (die seed, frame shape):
        #: the tuning budget is die-specific (each die's AWC mismatch
        #: realizes the kernels differently) and the plan is
        #: geometry-specific, so a warmup() shape must never answer for a
        #: stream serving different frames.
        self._timed: dict[
            tuple[int | None, tuple[int, ...]],
            tuple[FrameTiming, FrameTiming, float, float],
        ] = {}
        #: (payload bytes, radio energy [J]) per delivered frame;
        #: die-independent.
        self._transport: tuple[int, float] = (0, 0.0)

    @property
    def transport(self) -> tuple[int, float]:
        """(payload bytes, radio energy [J]) per delivered frame."""
        return self._transport

    def _workload(self, pipeline: HardwareFirstLayerPipeline, frame_shape):
        if pipeline.is_dense:
            return MlpWorkload(
                input_features=int(np.prod(frame_shape)),
                output_features=pipeline.conv.weight.data.shape[0],
            )
        if len(frame_shape) != 3:
            raise ValueError(
                f"model {self.key!r} expects (C, H, W) frames, got shape "
                f"{tuple(frame_shape)}"
            )
        channels, rows, cols = frame_shape
        expected = pipeline.conv.weight.data.shape[1]
        if channels != expected:
            raise ValueError(
                f"model {self.key!r} expects {expected}-channel frames, "
                f"got {channels}"
            )
        return ConvWorkload(
            kernel_size=pipeline.conv.kernel_size,
            num_kernels=pipeline.conv.weight.data.shape[0],
            in_channels=channels,
            image_height=rows,
            image_width=cols,
            stride=pipeline.conv.stride,
            padding=pipeline.conv.padding,
        )

    def timing_for(
        self, pipeline: HardwareFirstLayerPipeline, frame_shape: tuple[int, ...]
    ) -> tuple[FrameTiming, FrameTiming, float, float]:
        """(steady, remap) timings + energies for this model on this die.

        Computed once per (die, frame geometry) — normally from the first
        admitted frame's shape, or ahead of time by
        :meth:`FrameServer.warmup`.
        """
        die = pipeline.opc.seed
        key = (die, tuple(frame_shape))
        cached = self._timed.get(key)
        if cached is not None:
            return cached
        config = self._config.with_weight_bits(pipeline.conv.quantizer.bits)
        model = OISAEnergyModel(config)
        controller = TimingController(config)
        tuning_latency = pipeline.opc.programmed.tuning.latency_s
        mapping_energy = pipeline.opc.programmed.tuning.energy_j
        workload = self._workload(pipeline, frame_shape)
        if pipeline.is_dense:
            plan = plan_mlp(config, workload)
            compute_s = model.mlp_compute_time_s(plan)
            outputs = workload.output_features
            transmit_s = (
                outputs * TimingController.OUTPUT_BITS_PER_VALUE
            ) / TimingController.TRANSMIT_RATE_BPS
            exposure = controller.exposure_time_s()
            steady = FrameTiming(exposure, 0.0, compute_s, transmit_s)
            remap = FrameTiming(
                exposure,
                controller.mapping_time_s(tuning_latency),
                compute_s,
                transmit_s,
            )
            steady_energy = model.mlp_frame_energy_j(plan).total
            remap_energy = model.mlp_frame_energy_j(
                plan, include_mapping=True, mapping_energy_j=mapping_energy
            ).total
            payload = math.ceil(outputs * FleetModel.FEATURE_BITS / 8)
            radio = self._fleet.radio.transmit_energy_j(payload)
        else:
            plan = plan_convolution(config, workload)
            steady = controller.frame_timing(plan)
            remap = controller.frame_timing(
                plan, remap_weights=True, tuning_latency_s=tuning_latency
            )
            steady_energy = model.frame_energy_j(plan).total
            remap_energy = model.frame_energy_j(
                plan, include_mapping=True, mapping_energy_j=mapping_energy
            ).total
            node_report = self._fleet.oisa_node(workload)
            payload = node_report.payload_bytes
            radio = node_report.radio_energy_j
        self._transport = (payload, radio)
        self._timed[key] = (steady, remap, steady_energy, remap_energy)
        return self._timed[key]


class _Node:
    """One simulated OISA die hosting the multiplexed pipelines."""

    def __init__(
        self,
        node_id: int,
        config: OISAConfig,
        seed: int,
        cache: WeightProgramCache,
        enable_noise: bool,
    ) -> None:
        self.node_id = node_id
        self.opc = OpticalProcessingCore(
            config,
            seed=seed,
            enable_crosstalk=enable_noise,
            enable_read_noise=enable_noise,
        )
        self.cache = cache
        self.pipelines: dict[str, HardwareFirstLayerPipeline] = {}
        #: Kernel set resident in *simulated* time (drives remap events).
        self.active_model: str | None = None
        #: Kernel set currently programmed on the host-side OPC object.
        self.programmed_model: str | None = None
        self.free_at = 0.0
        self.frames = 0

    def pipeline_for(self, entry: _ModelEntry) -> HardwareFirstLayerPipeline:
        """The (lazily built) pipeline binding ``entry`` to this die."""
        pipeline = self.pipelines.get(entry.key)
        if pipeline is None:
            pipeline = HardwareFirstLayerPipeline(
                entry.model, self.opc, program_cache=self.cache
            )
            self.pipelines[entry.key] = pipeline
            self.programmed_model = entry.key  # construction programs the OPC
        return pipeline

    def activate(self, entry: _ModelEntry) -> HardwareFirstLayerPipeline:
        """Make ``entry`` the programmed model (cache-backed kernel swap)."""
        pipeline = self.pipeline_for(entry)
        if self.programmed_model != entry.key:
            pipeline.activate()
            self.programmed_model = entry.key
        return pipeline


class FrameServer:
    """Micro-batched, cache-backed frame serving across N simulated nodes.

    Parameters
    ----------
    config:
        Architecture configuration shared by every node.
    num_nodes:
        Simulated dies serving the stream (distinct AWC mismatch seeds).
    micro_batch:
        Frames per forward call; the sweet spot for the NumPy substrate
        sits around 8-32 (larger batches thrash the im2col working set).
    cache:
        Weight-program cache; defaults to a fresh unbounded cache.
    seed:
        Base seed; node die seeds are spawned deterministically from it.
    enable_noise:
        Crosstalk + BPD read noise on each node's optics.
    radio:
        Edge-radio model for the feature payload accounting.
    fault_profile:
        Degradation scenario to serve under — a
        :class:`~repro.engine.health.FaultProfile`, a named profile string
        (``"none"``, ``"drift"``, ``"transient"``, ``"harsh"``), or
        ``None``/``"none"`` for the healthy-die fast path (bit-identical
        to a server built without the argument).
    policy:
        Scheduling policy — ``"greedy"`` (default, the historical
        drop-if-busy behaviour), ``"edf"``, ``"slo"`` or a
        :class:`~repro.engine.scheduler.SchedulingPolicy` instance.
    slo_classes:
        ``{model_key: SloClass}`` service levels (or a prebuilt
        :class:`~repro.engine.admission.AdmissionController`); ``None``
        serves everything best-effort.
    compute_mode:
        ``"batched"`` (default) — the vectorized warm path: fleet-wide
        frame staging plus whole-run batched forwards;
        ``"reference"`` — the retained per-chunk loop.  The two produce
        bit-identical reports on every healthy-die stream; serving under
        a fault profile always uses the reference loop.
    chaos_plan:
        Injected fleet-failure schedule — a
        :class:`~repro.engine.chaos.ChaosPlan`, a named plan string
        (``"none"``, ``"node-loss"``, ``"region-outage"``,
        ``"correlated-upsets"``, ``"cache-storm"``, ``"latency-spike"``,
        ``"rolling"``), or ``None``/``"none"`` for no injection
        (byte-identical to a server built without the argument).
    retry_policy:
        Deadline-aware re-dispatch of frames killed in flight — a
        :class:`~repro.engine.failover.RetryPolicy`, a named policy
        string (``"none"``, ``"deadline"``, ``"aggressive"``), or
        ``None``/``"none"`` to abandon killed frames.
    spares:
        Warm-standby budget: a spare count or a
        :class:`~repro.engine.failover.SparePool`; ``0`` disables
        failover spares.
    brownout:
        Degradation-tier admission — a
        :class:`~repro.engine.failover.BrownoutConfig`, a named config
        string (``"none"``, ``"standard"``), or ``None``/``"none"`` to
        keep admission tier-free.
    program_store:
        On-disk program artifacts — a
        :class:`~repro.engine.store.ProgramStore` or a directory path —
        attached to the cache as a read-through/write-behind tier:
        warmup and kernel swaps restore integrity-checked npz records
        instead of reprogramming, so a second run against the same
        store programs nothing.  ``None`` keeps the cache memory-only.
    """

    COMPUTE_MODES = ("batched", "reference")

    def __init__(
        self,
        config: OISAConfig | None = None,
        num_nodes: int = 1,
        micro_batch: int = 16,
        cache: WeightProgramCache | None = None,
        seed: int | None = 0,
        enable_noise: bool = True,
        radio: RadioModel | None = None,
        fault_profile: FaultProfile | str | None = None,
        policy: str | SchedulingPolicy = "greedy",
        slo_classes: dict[str, SloClass] | AdmissionController | None = None,
        compute_mode: str = "batched",
        chaos_plan: ChaosPlan | str | None = None,
        retry_policy: RetryPolicy | str | None = None,
        spares: int | SparePool = 0,
        brownout: BrownoutConfig | str | None = None,
        program_store: ProgramStore | str | None = None,
    ) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("micro_batch", micro_batch)
        if compute_mode not in self.COMPUTE_MODES:
            raise ValueError(
                f"compute_mode must be one of {self.COMPUTE_MODES}, got "
                f"{compute_mode!r}"
            )
        self.config = config or OISAConfig()
        self.micro_batch = micro_batch
        self.compute_mode = compute_mode
        if isinstance(program_store, (str, os.PathLike)):
            program_store = ProgramStore(program_store)
        self.cache = cache if cache is not None else WeightProgramCache()
        if program_store is not None:
            # Read-through/write-behind on-disk tier: a second run against
            # the same store directory programs nothing (engine/store.py).
            self.cache.attach_store(program_store)
        self.fleet = FleetModel(self.config, radio=radio)
        self._seed = seed
        self.policy = scheduling_policy(policy)
        #: Whether the caller pinned the service levels at construction —
        #: scenario-carried classes then never override them.
        self._explicit_slo = slo_classes is not None
        if isinstance(slo_classes, AdmissionController):
            self.admission = slo_classes
        else:
            self.admission = AdmissionController(slo_classes)
        if isinstance(fault_profile, str):
            fault_profile = FaultProfile.named(fault_profile)
        if fault_profile is not None and not fault_profile.active:
            fault_profile = None
        self.fault_profile = fault_profile
        if isinstance(chaos_plan, str):
            chaos_plan = ChaosPlan.named(chaos_plan)
        self.chaos_plan = chaos_plan
        if isinstance(retry_policy, str):
            retry_policy = RetryPolicy.named(retry_policy)
        self.retry_policy = retry_policy
        if isinstance(spares, SparePool):
            self.spare_pool = spares if spares.count > 0 else None
        else:
            self.spare_pool = SparePool(count=int(spares)) if spares else None
        if isinstance(brownout, str):
            brownout = BrownoutConfig.named(brownout)
        self.brownout_config = brownout
        self._enable_noise = enable_noise
        seeds = spawn_seeds(seed, num_nodes)
        self.nodes = [
            _Node(index, self.config, seeds[index], self.cache, enable_noise)
            for index in range(num_nodes)
        ]
        if fault_profile is not None and fault_profile.calibrated:
            from repro.core.calibration import CalibratedAwcMapper

            for node in self.nodes:
                node.opc.awc = CalibratedAwcMapper(node.opc.awc)
        self._models: dict[str, _ModelEntry] = {}

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    def register_model(self, key: str, model: Sequential) -> None:
        """Register a QAT model under ``key`` (its first layer serves on-die)."""
        if key in self._models:
            raise ValueError(f"model key {key!r} is already registered")
        self._models[key] = _ModelEntry(key, model, self.config, self.fleet)

    def adopt_models(
        self, models: dict[str, Sequential], origin: str = "caller"
    ) -> None:
        """Register models idempotently, rejecting silent weight conflicts.

        New keys register normally; a key this server already knows is
        accepted only when *every* parameter matches the registered model
        — the off-chip head serves too, so first-layer equality alone
        would let a different network hide behind a known kernel set.
        ``origin`` names the source (a scenario, a control-plane shard
        assignment) in the error message.
        """
        for key, model in models.items():
            if key not in self._models:
                self.register_model(key, model)
                continue
            registered = self._models[key].model.parameters()
            incoming = model.parameters()
            if len(registered) != len(incoming) or any(
                not np.array_equal(ours.data, theirs.data)
                for ours, theirs in zip(registered, incoming)
            ):
                raise ValueError(
                    f"{origin} redefines model key {key!r} with different "
                    "weights than the model already registered on this "
                    "server; serve it on a fresh server (or use distinct "
                    "keys)"
                )

    def pin_model_programs(self, model_key: str, pinned: bool = True) -> int:
        """(Un)pin one model's programs on every die, in the shared cache.

        The control plane pins the programs of recently routed
        (tenant, model) pairs so the priority-evicting
        :class:`~repro.engine.cache.WeightProgramCache` sheds cold
        programs first under byte pressure (see
        :meth:`~repro.engine.cache.WeightProgramCache.set_priority`;
        pins are sticky and apply even before the program is computed).
        Touches only eviction priorities — never stats, LRU order or
        residency — so pinning is invisible to every serving counter.
        Returns the number of (die, program) keys touched.
        """
        entry = self._models.get(model_key)
        if entry is None:
            raise ValueError(f"unknown model key {model_key!r}")
        first = HardwareFirstLayerPipeline._find_first_quant_layer(entry.model)
        if first is None:
            return 0
        quantized = first.quantizer.quantize(first.weight.data)
        scale = first.quantizer.scale(first.weight.data)
        touched = 0
        for node in self.nodes:
            key = self.cache.key_for(node.opc, quantized, scale)
            self.cache.set_priority(key, 1 if pinned else 0)
            touched += 1
        return touched

    @property
    def model_keys(self) -> tuple[str, ...]:
        """Registered model keys (internal ``@brownout`` variants hidden)."""
        return tuple(key for key in self._models if "@brownout" not in key)

    def warmup(
        self,
        model_keys: list[str] | tuple[str, ...] | None = None,
        frame_shape: tuple[int, ...] | None = None,
        parallel: ParallelConfig | None = None,
    ) -> dict[str, float]:
        """Pre-program known kernel sets so mid-stream swaps never stall.

        Runs the (vectorized, now-cheap) cold program path for every
        ``(model, node)`` pair up front: pipelines are built, each die's
        :class:`~repro.core.opc.ProgrammedWeights` lands in the program
        cache, and — when ``frame_shape`` is given — the per-die
        timing/energy tables are traced too.  After a warmup, every kernel
        swap during :meth:`serve` is a cache hit and the first frame of a
        new model pays no host-side mapping cost.

        With a non-serial ``parallel`` config the (model, die) programs
        are computed concurrently — each pair is an independent pure task
        (:func:`_warmup_program_task`) — and the returned records are
        installed into the shared :class:`~repro.engine.cache.
        WeightProgramCache` on the main process, **in task order**, before
        the usual in-process activation pass runs.  The post-warmup server
        state (cache contents, programmed dies, every subsequent
        :class:`ServeReport`) is bit-identical to a serial warmup; only
        this method's own hit/miss summary differs in shape (each pair
        counts one preload miss *and* one activation hit, where the serial
        pass counts a single miss), because the counters honestly narrate
        where the programming happened.

        Parameters
        ----------
        model_keys:
            Kernel sets to warm; defaults to every registered model.
        frame_shape:
            Optional ``(C, H, W)`` (conv) or flat-feature shape (dense) of
            the frames the stream will carry; warms the timing tables as
            well.
        parallel:
            Executor selection (:class:`~repro.util.parallel.
            ParallelConfig`); ``None`` or a serial/one-worker config keeps
            the historical sequential pass.

        Returns
        -------
        dict
            ``{"models", "nodes", "cache_hits", "cache_misses",
            "wall_clock_s"}`` for the warmup pass.
        """
        keys = list(model_keys) if model_keys is not None else list(self._models)
        for key in keys:
            if key not in self._models:
                raise ValueError(f"unknown model key {key!r}")
        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
        started = time.perf_counter()
        if parallel is not None and not parallel.is_serial:
            self._preprogram_parallel(keys, parallel)
        for key in keys:
            entry = self._models[key]
            for node in self.nodes:
                pipeline = node.activate(entry)
                if frame_shape is not None:
                    entry.timing_for(pipeline, tuple(frame_shape))
        return {
            "models": len(keys),
            "nodes": len(self.nodes),
            "cache_hits": self.cache.stats.hits - hits0,
            "cache_misses": self.cache.stats.misses - misses0,
            "wall_clock_s": time.perf_counter() - started,
        }

    def _preprogram_parallel(
        self, keys: list[str], parallel: ParallelConfig
    ) -> None:
        """Fan the cold (model, die) programming out over workers.

        Walks the same ``keys x nodes`` order as the serial pass, skips
        pairs whose program is already resident — or restorable from the
        cache's on-disk :class:`~repro.engine.store.ProgramStore`
        (loading an npz beats reprogramming by orders of magnitude, so
        warm-store pairs never become worker tasks) — ships the rest as
        pure task descriptions to :func:`_warmup_program_task`, and
        preloads the returned programs into the shared cache in task
        order (:meth:`~repro.engine.cache.WeightProgramCache.preload`).
        The subsequent in-process activation pass then only performs
        O(1) installs.
        """
        pending: list[tuple] = []
        targets: list[tuple[_Node, np.ndarray, float]] = []
        for key in keys:
            entry = self._models[key]
            first = HardwareFirstLayerPipeline._find_first_quant_layer(
                entry.model
            )
            if first is None:
                continue  # activate() will raise the precise error
            quantized = first.quantizer.quantize(first.weight.data)
            scale = first.quantizer.scale(first.weight.data)
            for node in self.nodes:
                if self.cache.restore_from_store(node.opc, quantized, scale):
                    continue
                calibrated = (
                    getattr(node.opc.awc, "calibration_token", None)
                    is not None
                )
                pending.append(
                    (
                        node.opc.config,
                        node.opc.seed,
                        node.opc.enable_crosstalk,
                        node.opc.enable_read_noise,
                        calibrated,
                        quantized,
                        scale,
                    )
                )
                targets.append((node, quantized, scale))
        programs = parallel_map(_warmup_program_task, pending, parallel)
        for (node, quantized, scale), programmed in zip(targets, programs):
            self.cache.preload(node.opc, quantized, scale, programmed)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[FrameRequest],
        offered_fps: float | None = None,
        node_limit: int | None = None,
    ) -> ServeReport:
        """Admit, schedule and compute a stream of requests.

        Requests without explicit ``arrival_s`` arrive uniformly at
        ``offered_fps`` (default: the configured frame rate).  Admission
        and placement run in simulated time inside
        :class:`~repro.engine.scheduler.FrameScheduler` under this
        server's policy and SLO classes (the greedy default keeps the
        drop-if-busy rule of :class:`~repro.sim.stream.StreamSimulator`);
        the admitted frames then compute in micro-batches, grouped into
        consecutive same-model runs per node.

        ``node_limit`` restricts this call to the first ``node_limit``
        nodes — the control plane's autoscaling hook.  Because
        :func:`~repro.util.rng.spawn_seeds` is prefix-stable, the first
        *k* nodes of an N-node server are byte-identical (same die
        seeds, same construction order) to a k-node server's fleet, so a
        limited serve reproduces the smaller fleet's stream exactly
        while the nodes above the limit stay warm (their cached programs
        make the next scale-up free).  ``None`` (the default) serves on
        every node — byte-identical to a server without the parameter.
        """
        rate = offered_fps if offered_fps is not None else self.config.frame_rate_hz
        check_positive("offered_fps", rate)
        interval = 1.0 / rate
        if node_limit is not None:
            if not 1 <= node_limit <= len(self.nodes):
                raise ValueError(
                    f"node_limit must be in [1, {len(self.nodes)}], got "
                    f"{node_limit}"
                )
            if (
                self.fault_profile is not None
                or self.chaos_plan is not None
                or self.retry_policy is not None
                or self.spare_pool is not None
                or self.brownout_config is not None
            ):
                # The health/chaos/failover layers walk ``self.nodes``
                # directly (spares append to it, monitors trip dies by
                # id); slicing under them would silently skew every
                # outage statistic.  The control plane builds plain
                # shard servers, so the combination has no user.
                raise ValueError(
                    "node_limit does not compose with fault/chaos/"
                    "failover layers; configure the shard server plain"
                )
        for request in requests:
            if request.model_key not in self._models:
                raise ValueError(f"unknown model key {request.model_key!r}")

        # Each serve() call simulates one stream starting at t = 0; kernel
        # residency (active/programmed models, cache) carries over, busy
        # state does not.
        for node in self.nodes:
            node.free_at = 0.0
            node.frames = 0

        # Health monitoring covers one serve() call (the stream restarts at
        # t = 0); cache invalidations it performs persist via the shared
        # program cache.  With no profile and no chaos plan, monitor is
        # None and scheduling is bit-identical to the healthy-die server.
        # A chaos plan without a fault profile rides on a neutral carrier
        # profile (no organic drift/upsets — only injected events fire).
        base_nodes = len(self.nodes)
        timeline = (
            ChaosTimeline(self.chaos_plan, base_nodes, self._seed)
            if self.chaos_plan is not None
            else None
        )
        profile = self.fault_profile
        if profile is None and timeline is not None:
            profile = FaultProfile(name=f"chaos:{timeline.plan.name}")
        monitor = (
            HealthMonitor(
                profile,
                self.config,
                self.nodes,
                self.cache,
                self._seed,
                chaos=timeline,
            )
            if profile is not None
            else None
        )
        failover = self._build_failover()

        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses

        # Arrival resolution stays here (the rate default is server
        # policy); the simulated-time walk is the scheduler's.
        arrivals = [
            request.arrival_s if request.arrival_s is not None else index * interval
            for index, request in enumerate(requests)
        ]
        active = self.nodes if node_limit is None else self.nodes[:node_limit]
        scheduler = FrameScheduler(
            active,
            self._models,
            self.policy,
            admission=self.admission,
            monitor=monitor,
            failover=failover,
        )
        result = scheduler.run(requests, arrivals)

        outputs, batch_wall = self._compute(requests, result.schedule, monitor)

        report = ServeReport(
            stream=result.stream,
            wall_clock_s=result.wall_clock_s + batch_wall,
        )
        report.cache_hits = self.cache.stats.hits - hits0
        report.cache_misses = self.cache.stats.misses - misses0
        if monitor is not None:
            report.health = monitor.report
        if failover is not None:
            report.resilience = failover.report
            if failover.brownout is not None:
                report.brownout = failover.brownout.report
        for index, request in enumerate(requests):
            node_id, event, tag = result.placements[index]
            output = outputs.get(index)
            served = result.served.get(index)
            report.responses.append(
                FrameResponse(
                    index,
                    request.model_key,
                    node_id,
                    output,
                    event,
                    degraded=tag > 0,
                    served_model=served,
                )
            )
            if not event.dropped:
                # Transport bills the key actually dispatched — a brownout
                # reduced-bits variant ships its own (identically shaped)
                # feature payload.
                payload, radio_j = self._models[
                    served or request.model_key
                ].transport
                report.payload_bytes += payload
                report.radio_energy_j += radio_j
        report.node_frames = {node.node_id: node.frames for node in active}
        # SLO accounting only exists when there is something to account
        # for — classes or a queueing policy; the default path stays bare.
        if self.admission.has_classes or self.policy.queueing:
            report.slo = build_slo_report(
                self.policy.name,
                report.responses,
                self.admission,
                result.shed,
                result.expired,
                lost=result.lost,
            )
        # Warm spares only live for the serve call that activated them:
        # the fleet returns to its configured size (their cache entries —
        # shared with the nodes they covered — persist).
        if len(self.nodes) > base_nodes:
            del self.nodes[base_nodes:]
        return report

    def serve_frames(
        self,
        frames: np.ndarray,
        model_key: str,
        offered_fps: float | None = None,
    ) -> ServeReport:
        """Convenience wrapper: one homogeneous (N, C, H, W) frame stack."""
        requests = [FrameRequest(frame, model_key) for frame in np.asarray(frames)]
        return self.serve(requests, offered_fps=offered_fps)

    def serve_scenario(
        self,
        scenario,
        offered_fps: float | None = None,
    ) -> ServeReport:
        """Serve a :class:`~repro.engine.workloads.Scenario` end-to-end.

        Registers any of the scenario's models this server hasn't seen,
        adopts its SLO classes (unless this server was built with explicit
        ``slo_classes`` — construction pins them), and serves its request
        list at ``offered_fps`` (default: the scenario's suggested rate,
        else the configured frame rate).  Adoption is per call: a later
        scenario's classes replace an earlier one's, and a class-less
        scenario serves best-effort again.

        Raises ``ValueError`` when the scenario reuses an already
        registered model key for a *different* kernel set (e.g. the same
        scenario name rebuilt at another seed) — serving scenario B's
        frames through scenario A's weights would silently corrupt every
        statistic.
        """
        self.adopt_models(scenario.models, origin=f"scenario {scenario.name!r}")
        if not self._explicit_slo:
            self.admission = AdmissionController(scenario.slo_classes)
        rate = offered_fps if offered_fps is not None else scenario.offered_fps
        return self.serve(scenario.requests, offered_fps=rate)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_failover(self) -> FailoverCoordinator | None:
        """A fresh coordinator per serve call, or ``None`` when the whole
        failover layer is disabled (the byte-identical default path)."""
        if (
            self.retry_policy is None
            and self.spare_pool is None
            and self.brownout_config is None
        ):
            return None
        brownout = reduced = None
        if self.brownout_config is not None:
            brownout = BrownoutController(self.brownout_config)
            reduced = self._ensure_reduced_variants(
                self.brownout_config.reduced_bits
            )
        return FailoverCoordinator(
            retry=self.retry_policy,
            spares=self.spare_pool,
            brownout=brownout,
            seed=self._seed,
            spare_factory=self._activate_spare,
            reduced_key=reduced,
        )

    def _activate_spare(self, covering: _Node, ready_s: float) -> _Node:
        """Attach a warm spare adopting ``covering``'s die seed.

        Same die seed → same cache keys: every program the primary warmed
        is a cache hit on the spare and the installed records are
        bit-identical to the primary's.  The spare joins busy until
        ``ready_s`` (the pool's bring-up latency).
        """
        spare = _Node(
            len(self.nodes),
            self.config,
            covering.opc.seed,
            self.cache,
            self._enable_noise,
        )
        if self.fault_profile is not None and self.fault_profile.calibrated:
            from repro.core.calibration import CalibratedAwcMapper

            spare.opc.awc = CalibratedAwcMapper(spare.opc.awc)
        spare.free_at = ready_s
        self.nodes.append(spare)
        return spare

    def _ensure_reduced_variants(self, bits: int) -> dict[str, str]:
        """Register reduced-precision variants for the brownout tier.

        Each registered model whose first quant layer exceeds ``bits``
        gets a deep-copied twin quantized to ``bits``, registered under
        ``"<key>@brownout<bits>b"`` (hidden from :attr:`model_keys`).
        Variants are real models — their timing/energy/accuracy books are
        the honest reduced-bit numbers, not a discount factor.
        """
        import copy

        mapping: dict[str, str] = {}
        for key in list(self._models):
            if "@brownout" in key:
                continue
            entry = self._models[key]
            first = HardwareFirstLayerPipeline._find_first_quant_layer(
                entry.model
            )
            if first is None or first.quantizer.bits <= bits:
                continue
            variant_key = f"{key}@brownout{bits}b"
            if variant_key not in self._models:
                model = copy.deepcopy(entry.model)
                variant_first = (
                    HardwareFirstLayerPipeline._find_first_quant_layer(model)
                )
                variant_first.quantizer = UniformWeightQuantizer(bits)
                self._models[variant_key] = _ModelEntry(
                    variant_key, model, self.config, self.fleet
                )
            mapping[key] = variant_key
        return mapping

    def _compute(
        self,
        requests: list[FrameRequest],
        schedule: list[tuple[int, int, str, int]],
        monitor=None,
    ) -> tuple[dict[int, np.ndarray], float]:
        """Run the admitted frames in per-(node, model) runs.

        Dispatches to the vectorized batched path (the default) or the
        retained per-chunk reference loop.  The two are **bit-identical**
        on every healthy-die stream — same floats, same RNG stream, same
        cache counters (``tests/test_engine_batched.py``).  Serving under
        a :class:`~repro.engine.health.HealthMonitor` always takes the
        reference loop: degraded runs route through stateful
        :class:`~repro.sim.faults.FaultyOpticalCore` wrappers whose draw
        order the per-chunk loop defines.
        """
        if monitor is not None or self.compute_mode == "reference":
            return self._compute_reference(requests, schedule, monitor)
        return self._compute_batched(requests, schedule)

    def _compute_reference(
        self,
        requests: list[FrameRequest],
        schedule: list[tuple[int, int, str, int]],
        monitor=None,
    ) -> tuple[dict[int, np.ndarray], float]:
        """The original per-chunk warm-path loop, retained verbatim.

        Kept as the bit-identity reference for the batched path (the
        same role :mod:`repro.core.reference` plays for the cold
        weight-programming chain) and as the only compute path under a
        fault profile.  Runs are grouped within each node's own
        subsequence — two nodes interleaving in global arrival order must
        not fragment each other's batches.  Under a fault profile, a run
        additionally breaks at degradation boundaries: frames admitted
        during an upset window compute through that upset's frozen
        :class:`~repro.sim.faults.FaultyOpticalCore`, frames before/after
        it on the healthy programmed core.
        """
        outputs: dict[int, np.ndarray] = {}
        per_node: dict[int, list[tuple[int, str, int]]] = {}
        for idx, node_id, model_key, tag in schedule:
            per_node.setdefault(node_id, []).append((idx, model_key, tag))

        started = time.perf_counter()
        for node_id, entries in per_node.items():
            node = self.nodes[node_id]
            position = 0
            while position < len(entries):
                _, model_key, tag = entries[position]
                run_end = position
                while (
                    run_end < len(entries)
                    and entries[run_end][1:] == (model_key, tag)
                ):
                    run_end += 1
                run = entries[position:run_end]
                position = run_end

                pipeline = node.activate(self._models[model_key])
                core = (
                    monitor.fault_core(node, model_key, tag)
                    if monitor is not None and tag > 0
                    else None
                )
                for chunk_start in range(0, len(run), self.micro_batch):
                    chunk = run[chunk_start : chunk_start + self.micro_batch]
                    batch = np.stack(
                        [
                            np.asarray(requests[idx].frame, dtype=float)
                            for idx, _, _ in chunk
                        ]
                    )
                    if core is not None:
                        logits = pipeline.forward(
                            batch, batch_size=len(chunk), core=core
                        )
                    else:
                        logits = pipeline.forward(batch, batch_size=len(chunk))
                    for offset, (idx, _, _) in enumerate(chunk):
                        outputs[idx] = logits[offset]
        return outputs, time.perf_counter() - started

    def _compute_batched(
        self,
        requests: list[FrameRequest],
        schedule: list[tuple[int, int, str, int]],
    ) -> tuple[dict[int, np.ndarray], float]:
        """Vectorized warm path: fleet-wide staging + whole-run forwards.

        Bit-identical to :meth:`_compute_reference` by construction:

        * frames are stacked and ternary-encoded **once per (model,
          frame geometry) across every node** — the encode is elementwise
          (row-stable), so slicing the fleet-wide tensor per run yields
          the same bits the per-chunk ``np.stack`` path produced;
        * each run then computes in one
          :meth:`~repro.core.pipeline.HardwareFirstLayerPipeline.
          forward_batched` call, which batches every row-stable op
          (optical conv, pools, batch-norm, activations, read-noise
          draw) over the whole run and keeps the BLAS matrix products at
          the exact ``micro_batch`` partition of the reference loop;
        * nodes and runs are walked in the reference order, with one
          :meth:`_Node.activate` per run, so per-node read-noise RNG
          streams and cache hit/miss counters evolve identically.
        """
        outputs: dict[int, np.ndarray] = {}
        per_node: dict[int, list[tuple[int, str, int]]] = {}
        for idx, node_id, model_key, tag in schedule:
            per_node.setdefault(node_id, []).append((idx, model_key, tag))

        started = time.perf_counter()
        # Fleet-wide input staging: one stack + one ternary encode per
        # (model, frame geometry) covering every admitted frame.
        groups: dict[tuple[str, tuple[int, ...]], list[int]] = {}
        for idx, _, model_key, _ in schedule:
            shape = tuple(np.shape(requests[idx].frame))
            groups.setdefault((model_key, shape), []).append(idx)
        staged: dict[
            tuple[str, tuple[int, ...]], tuple[np.ndarray, dict[int, int]]
        ] = {}
        for (model_key, shape), indices in groups.items():
            stack = np.stack(
                [np.asarray(requests[i].frame, dtype=float) for i in indices]
            )
            encoded = self._models[model_key].model.layers[0].forward(stack)
            staged[(model_key, shape)] = (
                encoded,
                {idx: row for row, idx in enumerate(indices)},
            )

        for node_id, entries in per_node.items():
            node = self.nodes[node_id]
            position = 0
            while position < len(entries):
                _, model_key, tag = entries[position]
                run_end = position
                while (
                    run_end < len(entries)
                    and entries[run_end][1:] == (model_key, tag)
                ):
                    run_end += 1
                indices = [idx for idx, _, _ in entries[position:run_end]]
                position = run_end

                pipeline = node.activate(self._models[model_key])
                shape = tuple(np.shape(requests[indices[0]].frame))
                encoded, row_of = staged[(model_key, shape)]
                ternary = encoded[[row_of[idx] for idx in indices]]
                logits = pipeline.forward_batched(
                    None, batch_size=self.micro_batch, ternary=ternary
                )
                for offset, idx in enumerate(indices):
                    outputs[idx] = logits[offset]
        return outputs, time.perf_counter() - started
