"""Sharded fleet control plane: tenant routing, autoscaling, drains.

The ROADMAP's "millions of users" step: one :class:`~repro.engine.server.
FrameServer` is a single fleet with a single scheduler, which stops
scaling the moment the model zoo outgrows one node group or regional
demand stops being flat.  :class:`ControlPlane` layers the missing
machinery on top *without touching the data path*:

* **sharding** — the fleet splits into named shards (node groups), each
  its own plain ``FrameServer``; the zoo is placed per shard (replicate
  or partition), so a shard only programs the kernel sets it hosts;
* **routing** — every (tenant, model) pair lands on exactly one shard
  via a deterministic :mod:`repro.engine.router` policy (rendezvous by
  default: stable under node-count changes, bounded churn under
  shard-set changes, spillover around draining shards);
* **autoscaling** — each shard's *active* node count tracks its own
  offered load window by window, using the capacity model from
  :func:`repro.analysis.capacity.sustainable_fps_per_node` (scale-up on
  predicted deadline-class pressure, scale-down only after a dwell
  period — the same hysteresis shape as the brownout controller).  The
  mechanism is :meth:`FrameServer.serve`'s ``node_limit``: shard servers
  are built at ``max_nodes`` and a window serves on the first *k* nodes
  — prefix-stable die seeds make that byte-identical to a k-node fleet,
  while the idle nodes above the limit are *warm spares* in the PR-8
  sense (their programs stay resident in the shared cache, so the next
  scale-up pays no cold mapping);
* **program-cache economics** — every shard shares *one*
  :class:`~repro.engine.cache.WeightProgramCache` (one byte budget).
  All shard servers are built from the same base seed, so their die-seed
  sets are identical and a program computed on any shard is a cache hit
  on its siblings (cross-shard reuse).  Routing pins the programs of
  re-routed (tenant, model) pairs (priority eviction keeps them resident
  under pressure) and a shard drain releases its dies' bytes via
  :meth:`~repro.engine.cache.WeightProgramCache.invalidate_die` — which,
  because the seeds are shared, also drops the siblings' identical
  records; they reprogram bit-identically on next activation (the
  determinism contract of :mod:`repro.core.reference`), so the tradeoff
  costs host time, never changes a simulated quantity.

Bit-identity contract: a 1-shard, autoscale-off control plane routes
everything to its only shard and delegates the serve call wholesale —
the report is byte-identical to the plain ``FrameServer`` path
(``tests/test_controlplane_equivalence.py`` pins it against the serving
golden).  Determinism contract: routing hashes only (salt, shard,
tenant), the capacity estimate is a seeded search, and the autoscaler is
a pure function of the windowed offered load — so the scaling-decision
audit trail (:meth:`ControlPlaneReport.decision_trail`) reproduces
byte-for-byte for a fixed (scenario, seed, config).

Windowed serving semantics (autoscale path only): the stream is chopped
into ``window_s`` slices per shard, each served as its own
:meth:`~repro.engine.server.FrameServer.serve` call with arrivals
rebased to the window start and events re-offset on merge.  Kernel
residency carries across windows (the cache and each node's programmed
model persist); node busy state does not — a frame admitted at a window
edge finishes into the next window while the next window starts free,
and under a queueing policy frames still queued at a window boundary
expire there.  Both effects are boundary artifacts of the windowing,
conservative in opposite directions and shrinking with ``window_s``; the
control-plane bench quantifies the net against the unwindowed static
fleet.

Units: ``window_s``/``node_seconds`` in *simulated* seconds (the stream
clock); node-seconds bill a shard's *active* nodes per window, and the
``static_node_seconds`` counterfactual bills every shard at
``max_nodes`` over the same windows — same duration convention, so the
saved fraction compares like with like.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace as dataclass_replace

from repro.core.config import OISAConfig
from repro.engine.admission import (
    AdmissionController,
    SloClass,
    SloClassStats,
    SloReport,
)
from repro.engine.cache import WeightProgramCache
from repro.engine.router import TenantRouter, tenant_router
from repro.engine.store import ProgramStore
from repro.engine.server import (
    FrameRequest,
    FrameResponse,
    FrameServer,
    ServeReport,
)
from repro.nn.layers import Sequential
from repro.sim.fleet import RadioModel
from repro.sim.stream import StreamEvent, StreamReport, nearest_rank_percentile
from repro.util.validation import check_positive

#: Zoo placement modes :meth:`ControlPlane.serve_scenario` accepts.
PLACEMENTS = ("replicate", "partition")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Per-shard autoscaling policy.

    Parameters
    ----------
    window_s:
        Control interval [simulated s]: load is observed and node counts
        adjusted once per window.
    min_nodes / max_nodes:
        Active-node bounds per shard; shard servers are built at
        ``max_nodes`` so scale-ups only ever *unmask* warm nodes.
    target_utilization:
        Scale up when offered/capacity exceeds this; the scale-up sizes
        the shard so the observed load sits back at or below it.
    scale_down_utilization:
        A window below this counts toward the scale-down dwell; must sit
        strictly below ``target_utilization`` (the hysteresis band).
    dwell_windows:
        Consecutive low windows required before removing one node —
        and, because a scale-up resets the streak, the minimum spacing
        between a scale-up and any later scale-down (the no-flap
        guarantee ``tests/test_engine_controlplane.py`` pins).
    fps_per_node:
        Capacity model: sustainable FPS of one node on this traffic.
        ``None`` (default) measures it per (scenario, policy) via
        :func:`repro.analysis.capacity.sustainable_fps_per_node`.
    best_effort_weight:
        Weight of frames whose SLO class has *no* deadline in the
        offered-load observation — the "deadline-class pressure" knob
        (1.0 counts everything equally; 0.0 scales only for deadline
        traffic).
    """

    window_s: float = 0.05
    min_nodes: int = 1
    max_nodes: int = 4
    target_utilization: float = 0.70
    scale_down_utilization: float = 0.35
    dwell_windows: int = 2
    fps_per_node: float | None = None
    best_effort_weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("window_s", self.window_s)
        check_positive("min_nodes", self.min_nodes)
        if self.max_nodes < self.min_nodes:
            raise ValueError(
                f"max_nodes ({self.max_nodes}) must be >= min_nodes "
                f"({self.min_nodes})"
            )
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError(
                "target_utilization must be in (0, 1], got "
                f"{self.target_utilization}"
            )
        if not 0.0 < self.scale_down_utilization < self.target_utilization:
            raise ValueError(
                "scale_down_utilization must be in (0, target_utilization), "
                f"got {self.scale_down_utilization}"
            )
        check_positive("dwell_windows", self.dwell_windows)
        if self.fps_per_node is not None:
            check_positive("fps_per_node", self.fps_per_node)
        if self.best_effort_weight < 0.0:
            raise ValueError(
                "best_effort_weight must be >= 0, got "
                f"{self.best_effort_weight}"
            )

    @staticmethod
    def parse(spec: str) -> "AutoscalerConfig":
        """Parse the CLI form ``"min:max[:window_s]"``."""
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"autoscale spec must be 'min:max[:window_s]', got {spec!r}"
            )
        kwargs: dict = {
            "min_nodes": int(parts[0]),
            "max_nodes": int(parts[1]),
        }
        if len(parts) == 3:
            kwargs["window_s"] = float(parts[2])
        return AutoscalerConfig(**kwargs)


@dataclass(frozen=True)
class ScalingDecision:
    """One audit-trail entry: a shard's node count changed."""

    shard: str
    #: Window whose observation triggered the change (the new count takes
    #: effect at the *next* window boundary — the controller is reactive).
    window: int
    #: Stream time the change takes effect [s].
    time_s: float
    from_nodes: int
    to_nodes: int
    #: Weighted offered load observed in ``window`` [FPS].
    offered_fps: float
    #: Capacity at ``from_nodes`` under the controller model [FPS].
    capacity_fps: float
    #: ``offered_fps / capacity_fps`` — the quantity the thresholds gate.
    pressure: float
    reason: str

    def line(self) -> str:
        """Canonical one-line form — ``repr`` floats, so byte-stable."""
        return (
            f"{self.shard} w{self.window} t={self.time_s!r} "
            f"{self.from_nodes}->{self.to_nodes} offered={self.offered_fps!r} "
            f"capacity={self.capacity_fps!r} pressure={self.pressure!r} "
            f"{self.reason}"
        )


class Autoscaler:
    """Reactive per-shard node-count controller with scale-down dwell.

    Pure and deterministic: the node trajectory is a function of the
    windowed offered-load sequence and the config alone — no wall clock,
    no RNG.  One instance lives for one serve call (like the health
    monitor), so the decision trail is per-stream.

    Starts at ``max_nodes`` (warm start): the safe direction is to trim
    an over-provisioned shard down, not to discover under-provisioning
    on live deadline traffic.
    """

    def __init__(
        self, shard: str, config: AutoscalerConfig, fps_per_node: float
    ) -> None:
        check_positive("fps_per_node", fps_per_node)
        self.shard = shard
        self.config = config
        self.fps_per_node = float(fps_per_node)
        self.nodes = config.max_nodes
        self.decisions: list[ScalingDecision] = []
        self._low_streak = 0

    def observe(self, window: int, offered_fps: float) -> int:
        """Digest one window's offered load; return the next node count."""
        config = self.config
        capacity = self.nodes * self.fps_per_node
        pressure = offered_fps / capacity
        effect_s = (window + 1) * config.window_s
        if pressure > config.target_utilization:
            # Jump straight to the count that brings utilization back to
            # target — a one-node step would chase a fast ramp forever.
            needed = math.ceil(
                offered_fps / (config.target_utilization * self.fps_per_node)
            )
            to_nodes = max(self.nodes, min(config.max_nodes, needed))
            self._low_streak = 0
            if to_nodes > self.nodes:
                self.decisions.append(
                    ScalingDecision(
                        shard=self.shard,
                        window=window,
                        time_s=effect_s,
                        from_nodes=self.nodes,
                        to_nodes=to_nodes,
                        offered_fps=offered_fps,
                        capacity_fps=capacity,
                        pressure=pressure,
                        reason="scale-up:pressure",
                    )
                )
                self.nodes = to_nodes
        elif pressure < config.scale_down_utilization:
            self._low_streak += 1
            if (
                self._low_streak >= config.dwell_windows
                and self.nodes > config.min_nodes
            ):
                # One node at a time: scale-downs are the risky direction
                # (a miscalibrated capacity model under-provisions live
                # deadline traffic), so they creep while scale-ups jump.
                self.decisions.append(
                    ScalingDecision(
                        shard=self.shard,
                        window=window,
                        time_s=effect_s,
                        from_nodes=self.nodes,
                        to_nodes=self.nodes - 1,
                        offered_fps=offered_fps,
                        capacity_fps=capacity,
                        pressure=pressure,
                        reason="scale-down:idle",
                    )
                )
                self.nodes -= 1
                self._low_streak = 0
        else:
            # The hysteresis band: neither direction, and the dwell
            # restarts — a blip back to normal load forgives nothing.
            self._low_streak = 0
        return self.nodes


class Shard:
    """One named node group: a plain ``FrameServer`` plus placement state."""

    def __init__(self, name: str, server: FrameServer) -> None:
        self.name = name
        self.server = server
        self.draining = False
        self.hosted: set[str] = set()

    def hosts(self, model_key: str) -> bool:
        """Whether this shard's zoo slice includes ``model_key``."""
        return model_key in self.hosted

    def __repr__(self) -> str:
        return (
            f"Shard({self.name!r}, nodes={len(self.server.nodes)}, "
            f"draining={self.draining})"
        )


@dataclass
class ControlPlaneReport:
    """Routing + scaling accounting of one control-plane serve call."""

    #: Router spec (policy + salt) the routes were computed under.
    router: str
    #: Shard names in registration order.
    shards: list[str]
    #: Built node count per shard (``max_nodes`` when autoscaled).
    shard_nodes: dict[str, int]
    autoscaled: bool
    #: Control interval (``None`` on the unwindowed static path).
    window_s: float | None
    #: Windows served (0 on the static path).
    windows: int
    #: Routing table snapshot: ``"tenant|model_key" -> shard name``.
    routes: dict[str, str] = field(default_factory=dict)
    #: (tenant, model) pairs whose shard changed during this run's routing.
    reroutes: int = 0
    #: (die, program) pairs warmed/pinned by preload-on-route.
    preloads: int = 0
    #: Scaling audit trail, in shard order then window order.
    decisions: list[ScalingDecision] = field(default_factory=list)
    #: Per-shard active-node count per window (autoscale path only).
    nodes_by_window: dict[str, list[int]] = field(default_factory=dict)
    #: Active node-seconds actually billed.
    node_seconds: float = 0.0
    #: Counterfactual: every shard at its built size over the same span.
    static_node_seconds: float = 0.0
    #: Shards drained before/under this serve call.
    drained: tuple[str, ...] = ()
    #: Cache entries released by drain-driven ``invalidate_die`` calls.
    cache_invalidations: int = 0

    @property
    def node_seconds_saved_frac(self) -> float:
        """Fraction of the static fleet's node-seconds the scaler saved."""
        if self.static_node_seconds <= 0.0:
            return 0.0
        return 1.0 - self.node_seconds / self.static_node_seconds

    def decision_trail(self) -> str:
        """The byte-deterministic audit trail, one decision per line."""
        return "\n".join(decision.line() for decision in self.decisions)


class ControlPlane:
    """Shards + router + autoscaler over a zoo of plain frame servers.

    Parameters mirror :class:`~repro.engine.server.FrameServer` where
    they configure the per-shard servers (every shard shares the same
    base ``seed`` — identical die-seed sets are what make cross-shard
    program reuse and warm-spare scale-up free).  The fault/chaos/
    failover layers deliberately do not compose here: shard servers are
    built plain (see ``FrameServer.serve``'s ``node_limit`` contract).

    Parameters
    ----------
    shards:
        Shard count (names ``s0..s{n-1}``) or explicit name list.
    nodes_per_shard:
        Static node count per shard; ignored when ``autoscaler`` is set
        (shards are then built at ``autoscaler.max_nodes``).
    router:
        Routing policy name or instance (:mod:`repro.engine.router`);
        the salt defaults to the base seed.
    autoscaler:
        Per-shard scaling policy; ``None`` serves statically.
    program_store:
        On-disk program artifacts (:class:`~repro.engine.store.
        ProgramStore` or a directory path) attached to the *shared*
        cache — cross-shard program reuse then extends across runs: a
        restarted control plane restores every (model, die) program
        from disk instead of reprogramming it.
    """

    def __init__(
        self,
        config: OISAConfig | None = None,
        shards: int | list[str] | tuple[str, ...] = 2,
        nodes_per_shard: int = 1,
        micro_batch: int = 16,
        cache: WeightProgramCache | None = None,
        seed: int | None = 0,
        enable_noise: bool = True,
        radio: RadioModel | None = None,
        policy: str = "greedy",
        slo_classes: dict[str, SloClass] | AdmissionController | None = None,
        compute_mode: str = "batched",
        router: str | TenantRouter = "rendezvous",
        autoscaler: AutoscalerConfig | None = None,
        program_store: ProgramStore | str | None = None,
    ) -> None:
        if isinstance(shards, int):
            check_positive("shards", shards)
            names = [f"s{index}" for index in range(shards)]
        else:
            names = [str(name) for name in shards]
        if not names:
            raise ValueError("a control plane needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names!r}")
        check_positive("nodes_per_shard", nodes_per_shard)
        self.config = config or OISAConfig()
        self.cache = cache if cache is not None else WeightProgramCache()
        if isinstance(program_store, (str, os.PathLike)):
            program_store = ProgramStore(program_store)
        if program_store is not None:
            self.cache.attach_store(program_store)
        self.router = tenant_router(router, salt=seed or 0)
        self.autoscaler_config = autoscaler
        self._seed = seed
        size = autoscaler.max_nodes if autoscaler is not None else nodes_per_shard
        self.shards = [
            Shard(
                name,
                FrameServer(
                    self.config,
                    num_nodes=size,
                    micro_batch=micro_batch,
                    cache=self.cache,
                    seed=seed,
                    enable_noise=enable_noise,
                    radio=radio,
                    policy=policy,
                    slo_classes=slo_classes,
                    compute_mode=compute_mode,
                ),
            )
            for name in names
        ]
        #: Master zoo: every model any shard hosts (spillover placement
        #: registers from here when routing lands on a non-hosting shard).
        self._zoo: dict[str, Sequential] = {}
        self._route_of: dict[tuple[str, str], str] = {}
        self._reroutes = 0
        self._preloads = 0
        self._drained: list[str] = []
        self._invalidations = 0
        self._fps_per_node_cache: dict[tuple[str, str], float] = {}
        self._serving_scenario: str | None = None

    # ------------------------------------------------------------------
    # Placement and drains
    # ------------------------------------------------------------------
    def shard(self, name: str) -> Shard:
        """Look up a shard by name."""
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise ValueError(
            f"unknown shard {name!r}; known: "
            f"{', '.join(s.name for s in self.shards)}"
        )

    def register_model(
        self,
        key: str,
        model: Sequential,
        shards: list[str] | tuple[str, ...] | None = None,
    ) -> None:
        """Place ``key`` on the named shards (default: replicate on all).

        Placement is idempotent and weight-checked per shard
        (:meth:`~repro.engine.server.FrameServer.adopt_models`), so
        re-registering the same model is a no-op and a conflicting
        redefinition fails loudly.
        """
        targets = (
            self.shards
            if shards is None
            else [self.shard(name) for name in shards]
        )
        for target in targets:
            target.server.adopt_models(
                {key: model}, origin=f"shard {target.name!r} placement"
            )
            target.hosted.add(key)
        self._zoo[key] = model

    def drain(self, name: str) -> int:
        """Take a shard out of routing and release its cache residency.

        The router skips draining shards (spillover: the next-best
        rendezvous winner absorbs each tenant), the shard's pins are
        dropped, and each of its dies' programs leave the shared cache
        via :meth:`~repro.engine.cache.WeightProgramCache.invalidate_die`
        — freeing the byte budget for the surviving shards.  Because
        every shard shares the base seed, sibling shards' identical
        records are released too; they reprogram bit-identically on next
        activation (host-time cost only).  Returns the entries dropped.
        """
        shard = self.shard(name)
        if shard.draining:
            return 0
        shard.draining = True
        self._drained.append(name)
        for key in sorted(shard.hosted):
            shard.server.pin_model_programs(key, pinned=False)
        dropped = 0
        for node in shard.server.nodes:
            dropped += self.cache.invalidate_die(node.opc.seed)
        self._invalidations += dropped
        # Routes into the drained shard stay in the table on purpose:
        # the next serve re-routes each of them (the router now skips the
        # drainee), and :meth:`route` sees the *change* — which is what
        # triggers spillover placement and preload-on-route for the
        # moved tenants.
        return dropped

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, tenant: str, model_key: str) -> Shard:
        """The shard this (tenant, model) pair serves on, with side effects.

        First assignment just records the route (no server or cache
        perturbation — the 1-shard bit-identity contract rides on this).
        A *changed* route additionally places the model on the landing
        shard if it does not host it (spillover placement), warms the
        landing dies (preload-on-route: with shared seeds this is pure
        O(1) cache installs) and pins the programs so priority eviction
        keeps the moved tenant's working set resident.
        """
        shard = self.router.route(tenant, model_key, self.shards)
        route_key = (tenant, model_key)
        previous = self._route_of.get(route_key)
        if previous == shard.name:
            return shard
        if not shard.hosts(model_key):
            model = self._zoo.get(model_key)
            if model is not None:
                shard.server.adopt_models(
                    {model_key: model},
                    origin=f"shard {shard.name!r} spillover placement",
                )
                shard.hosted.add(model_key)
        if previous is not None:
            self._reroutes += 1
            if model_key in shard.server._models:
                warmed = shard.server.warmup([model_key])
                self._preloads += int(
                    warmed["cache_hits"] + warmed["cache_misses"]
                )
                shard.server.pin_model_programs(model_key, pinned=True)
        self._route_of[route_key] = shard.name
        return shard

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        requests: list[FrameRequest],
        offered_fps: float | None = None,
    ) -> ServeReport:
        """Route, (optionally) autoscale and serve one request stream.

        Single shard + no autoscaler delegates the call wholesale to the
        shard's server (byte-identical to the plain path); otherwise the
        stream is partitioned per routed shard — and, when autoscaling,
        chopped into control windows — served, and merged back into one
        :class:`~repro.engine.server.ServeReport` with global indices,
        global node ids and recomputed SLO percentiles.  The merged
        report carries the routing/scaling accounting as
        ``report.controlplane``.
        """
        rate = (
            offered_fps
            if offered_fps is not None
            else self.config.frame_rate_hz
        )
        check_positive("offered_fps", rate)
        interval = 1.0 / rate
        arrivals = [
            request.arrival_s
            if request.arrival_s is not None
            else index * interval
            for index, request in enumerate(requests)
        ]
        duration = max(arrivals, default=0.0)

        assignments: list[Shard] = []
        for request in requests:
            assignments.append(
                self.route(request.tenant or request.model_key, request.model_key)
            )
        per_shard: dict[str, list[tuple[int, FrameRequest, float]]] = {}
        for index, (request, arrival, shard) in enumerate(
            zip(requests, arrivals, assignments)
        ):
            per_shard.setdefault(shard.name, []).append(
                (index, request, arrival)
            )

        if len(self.shards) == 1 and self.autoscaler_config is None:
            shard = self.shards[0]
            report = shard.server.serve(requests, offered_fps=rate)
            nodes = len(shard.server.nodes)
            report.controlplane = self._base_report(
                autoscaled=False,
                window_s=None,
                windows=0,
                node_seconds=nodes * duration,
                static_node_seconds=nodes * duration,
            )
            return report

        if self.autoscaler_config is None:
            return self._serve_static(requests, per_shard, rate, duration)
        return self._serve_autoscaled(requests, per_shard, rate, duration)

    def serve_scenario(
        self,
        scenario,
        offered_fps: float | None = None,
        placement: str = "replicate",
    ) -> ServeReport:
        """Serve a :class:`~repro.engine.workloads.Scenario` end-to-end.

        Places the scenario's zoo (``"replicate"`` puts every model on
        every shard; ``"partition"`` deals models round-robin across
        shards, leaving the router's spillover placement to fill gaps),
        adopts its SLO classes on every shard that was not built with
        explicit classes, and serves its request list.  While serving, a
        measured-capacity autoscaler resolves its per-node FPS against
        this scenario's name.
        """
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        for index, (key, model) in enumerate(scenario.models.items()):
            if placement == "replicate":
                self.register_model(key, model)
            else:
                target = self.shards[index % len(self.shards)]
                self.register_model(key, model, shards=[target.name])
        for shard in self.shards:
            if not shard.server._explicit_slo:
                shard.server.admission = AdmissionController(
                    scenario.slo_classes
                )
        rate = (
            offered_fps if offered_fps is not None else scenario.offered_fps
        )
        self._serving_scenario = scenario.name
        try:
            return self.serve(scenario.requests, offered_fps=rate)
        finally:
            self._serving_scenario = None

    # ------------------------------------------------------------------
    # Serve internals
    # ------------------------------------------------------------------
    def _serve_static(
        self,
        requests: list[FrameRequest],
        per_shard: dict[str, list[tuple[int, FrameRequest, float]]],
        rate: float,
        duration: float,
    ) -> ServeReport:
        pieces = []
        for shard in self.shards:
            entries = per_shard.get(shard.name)
            if not entries:
                continue
            sub = [
                dataclass_replace(request, arrival_s=arrival)
                for _, request, arrival in entries
            ]
            pieces.append(
                (shard, 0.0, entries, shard.server.serve(sub, offered_fps=rate))
            )
        report = self._merge(requests, pieces)
        node_seconds = (
            sum(len(shard.server.nodes) for shard in self.shards) * duration
        )
        report.controlplane = self._base_report(
            autoscaled=False,
            window_s=None,
            windows=0,
            node_seconds=node_seconds,
            static_node_seconds=node_seconds,
        )
        return report

    def _serve_autoscaled(
        self,
        requests: list[FrameRequest],
        per_shard: dict[str, list[tuple[int, FrameRequest, float]]],
        rate: float,
        duration: float,
    ) -> ServeReport:
        config = self.autoscaler_config
        windows = max(1, math.ceil((duration + 1e-12) / config.window_s))
        fps_per_node = self._resolve_fps_per_node()
        pieces = []
        scalers: list[Autoscaler] = []
        nodes_by_window: dict[str, list[int]] = {}
        node_seconds = 0.0
        for shard in self.shards:
            scaler = Autoscaler(shard.name, config, fps_per_node)
            scalers.append(scaler)
            trajectory: list[int] = []
            nodes_by_window[shard.name] = trajectory
            entries = per_shard.get(shard.name, [])
            buckets: list[list[tuple[int, FrameRequest, float]]] = [
                [] for _ in range(windows)
            ]
            for entry in entries:
                w = min(int(entry[2] // config.window_s), windows - 1)
                buckets[w].append(entry)
            admission = shard.server.admission
            for w in range(windows):
                active = scaler.nodes
                trajectory.append(active)
                node_seconds += active * config.window_s
                bucket = buckets[w]
                if bucket:
                    start = w * config.window_s
                    sub = [
                        dataclass_replace(
                            request, arrival_s=arrival - start
                        )
                        for _, request, arrival in bucket
                    ]
                    pieces.append(
                        (
                            shard,
                            start,
                            bucket,
                            shard.server.serve(
                                sub, offered_fps=rate, node_limit=active
                            ),
                        )
                    )
                weighted = 0.0
                for _, request, _ in bucket:
                    slo = admission.slo_for(request.model_key)
                    weighted += (
                        1.0
                        if slo.deadline_s is not None
                        else config.best_effort_weight
                    )
                scaler.observe(w, weighted / config.window_s)
        report = self._merge(requests, pieces)
        decisions = [
            decision for scaler in scalers for decision in scaler.decisions
        ]
        static = len(self.shards) * config.max_nodes * windows * config.window_s
        report.controlplane = self._base_report(
            autoscaled=True,
            window_s=config.window_s,
            windows=windows,
            node_seconds=node_seconds,
            static_node_seconds=static,
            decisions=decisions,
            nodes_by_window=nodes_by_window,
        )
        return report

    def _resolve_fps_per_node(self) -> float:
        """The controller's per-node capacity estimate [FPS]."""
        config = self.autoscaler_config
        if config.fps_per_node is not None:
            return config.fps_per_node
        policy = self.shards[0].server.policy.name
        scenario = self._serving_scenario or ""
        key = (scenario, policy)
        cached = self._fps_per_node_cache.get(key)
        if cached is not None:
            return cached
        value = 0.0
        if scenario:
            from repro.analysis.capacity import sustainable_fps_per_node

            value = sustainable_fps_per_node(
                scenario, policy=policy, seed=self._seed or 0
            )
        if value <= 0.0:
            # No scenario name (plain serve()) or an unsustainable floor:
            # fall back to the analytic LeNet-first-layer bound.
            from repro.analysis.capacity import LENET_FIRST_LAYER
            from repro.sim.fleet import FleetModel

            value = FleetModel(self.config).sustainable_fps(LENET_FIRST_LAYER)
        self._fps_per_node_cache[key] = value
        return value

    def _base_report(
        self,
        autoscaled: bool,
        window_s: float | None,
        windows: int,
        node_seconds: float,
        static_node_seconds: float,
        decisions: list[ScalingDecision] | None = None,
        nodes_by_window: dict[str, list[int]] | None = None,
    ) -> ControlPlaneReport:
        return ControlPlaneReport(
            router=repr(self.router),
            shards=[shard.name for shard in self.shards],
            shard_nodes={
                shard.name: len(shard.server.nodes) for shard in self.shards
            },
            autoscaled=autoscaled,
            window_s=window_s,
            windows=windows,
            routes={
                f"{tenant}|{model_key}": shard_name
                for (tenant, model_key), shard_name in sorted(
                    self._route_of.items()
                )
            },
            reroutes=self._reroutes,
            preloads=self._preloads,
            decisions=list(decisions or []),
            nodes_by_window=dict(nodes_by_window or {}),
            node_seconds=node_seconds,
            static_node_seconds=static_node_seconds,
            drained=tuple(self._drained),
            cache_invalidations=self._invalidations,
        )

    def _merge(
        self,
        requests: list[FrameRequest],
        pieces: list[tuple[Shard, float, list, ServeReport]],
    ) -> ServeReport:
        """Stitch per-shard (or per-window) sub-reports into one report.

        Global request indices come back from the partition bookkeeping,
        node ids get per-shard offsets (shard registration order), event
        clocks are re-offset by each piece's window start, SLO class
        counters sum additively and the percentiles are recomputed from
        the merged latency lists with the same deterministic
        nearest-rank rule the per-shard reports used.
        """
        node_offset: dict[str, int] = {}
        accumulated = 0
        for shard in self.shards:
            node_offset[shard.name] = accumulated
            accumulated += len(shard.server.nodes)

        responses: list[FrameResponse | None] = [None] * len(requests)
        stream = StreamReport()
        merged = ServeReport(stream=stream)
        node_frames: dict[int, int] = {}
        slo_classes: dict[str, SloClassStats] = {}
        latencies: dict[str, list[float]] = {}
        any_slo = False
        admission = self.shards[0].server.admission
        for shard, start, entries, sub_report in pieces:
            offset = node_offset[shard.name]
            for local_index, (global_index, _, _) in enumerate(entries):
                response = sub_report.responses[local_index]
                event = response.event
                shifted = StreamEvent(
                    index=global_index,
                    arrival_s=self._shift(event.arrival_s, start),
                    start_s=self._shift(event.start_s, start),
                    finish_s=self._shift(event.finish_s, start),
                    dropped=event.dropped,
                    remapped=event.remapped,
                )
                node_id = response.node_id
                responses[global_index] = FrameResponse(
                    global_index,
                    response.model_key,
                    node_id + offset if node_id >= 0 else node_id,
                    response.output,
                    shifted,
                    degraded=response.degraded,
                    served_model=response.served_model,
                )
            stream.total_energy_j += sub_report.stream.total_energy_j
            merged.wall_clock_s += sub_report.wall_clock_s
            merged.cache_hits += sub_report.cache_hits
            merged.cache_misses += sub_report.cache_misses
            merged.payload_bytes += sub_report.payload_bytes
            merged.radio_energy_j += sub_report.radio_energy_j
            for node_id, count in sub_report.node_frames.items():
                global_node = node_id + offset
                node_frames[global_node] = (
                    node_frames.get(global_node, 0) + count
                )
            if sub_report.slo is not None:
                any_slo = True
                for name, stats in sub_report.slo.classes.items():
                    aggregate = slo_classes.get(name)
                    if aggregate is None:
                        aggregate = SloClassStats(
                            name=stats.name,
                            priority=stats.priority,
                            deadline_s=stats.deadline_s,
                        )
                        slo_classes[name] = aggregate
                        latencies[name] = []
                    aggregate.offered += stats.offered
                    aggregate.delivered += stats.delivered
                    aggregate.dropped_busy += stats.dropped_busy
                    aggregate.shed += stats.shed
                    aggregate.expired += stats.expired
                    aggregate.lost += stats.lost
                    aggregate.deadline_hits += stats.deadline_hits
                    aggregate.deadline_misses += stats.deadline_misses

        missing = [i for i, response in enumerate(responses) if response is None]
        if missing:  # the router is total, so this is a partition bug
            raise RuntimeError(
                f"merge lost {len(missing)} responses (first: {missing[:3]})"
            )
        merged.responses = [response for response in responses]
        stream.events.extend(
            sorted(
                (response.event for response in merged.responses),
                key=lambda event: (event.arrival_s, event.index),
            )
        )
        merged.node_frames = dict(sorted(node_frames.items()))
        if any_slo:
            for response in merged.responses:
                if response.dropped:
                    continue
                name = admission.slo_for(response.model_key).name
                if name in latencies:
                    latencies[name].append(response.event.latency_s)
            for name, stats in slo_classes.items():
                values = latencies[name]
                if values:
                    stats.p50_latency_s = nearest_rank_percentile(values, 0.50)
                    stats.p99_latency_s = nearest_rank_percentile(values, 0.99)
            merged.slo = SloReport(
                policy=self.shards[0].server.policy.name,
                classes=slo_classes,
            )
        return merged

    @staticmethod
    def _shift(value: float, offset: float) -> float:
        """Re-offset one event clock field (NaN/inf pass through)."""
        return value + offset if math.isfinite(value) else value


__all__ = [
    "PLACEMENTS",
    "Autoscaler",
    "AutoscalerConfig",
    "ControlPlane",
    "ControlPlaneReport",
    "ScalingDecision",
    "Shard",
]
