"""Admission control: per-model SLO classes, load shedding, SLO reporting.

The serving engine historically had exactly one service level: every frame
is admitted if a die is free at its arrival instant, dropped otherwise
(the global-shutter drop-if-busy rule of :mod:`repro.sim.stream`).  A
multi-tenant fleet needs more vocabulary than that — OASIS-style
distributed in-sensor deployments give every stream its own latency and
bandwidth budget.  This module provides it:

* :class:`SloClass` — a named service level attached to a model key:
  relative deadline, priority tier, drop policy (drop-if-busy sensor
  semantics vs. queue-until-deadline), weighted-fair-queuing share and an
  optional backpressure bound;
* :class:`AdmissionController` — maps model keys to SLO classes and makes
  the shed/admit decision against the scheduler's queue-wait estimate
  (load shedding: when offered load exceeds what the fleet can clear
  within a class's ``max_queue_s``, new arrivals of that class are
  rejected up front instead of rotting in a queue);
* :class:`SloReport` / :class:`SloClassStats` — per-class outcome
  accounting (deadline-hit rate, drop/shed split, latency percentiles)
  attached to :class:`~repro.engine.server.ServeReport` as ``.slo``.

Default-path contract: a server built without SLO classes uses the
pass-through controller — every frame gets :data:`BEST_EFFORT` (no
deadline, ``drop_policy="busy"``) and admission never sheds, so the
greedy default configuration stays bit-identical to the pre-split engine.

Units: deadlines/latencies in *simulated* seconds (same clock as
``StreamEvent``); priorities are unitless integers (higher = more
important); WFQ weights are unitless shares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.stream import nearest_rank_percentile
from repro.util.validation import check_positive

#: Drop policies a class can select: ``"busy"`` keeps the global-shutter
#: drop-if-busy rule; ``"deadline"`` lets frames queue until their deadline
#: (or the end of the stream) when the scheduling policy supports queueing.
DROP_POLICIES = ("busy", "deadline")


@dataclass(frozen=True)
class SloClass:
    """One service level: deadline, priority, drop policy, WFQ share.

    Parameters
    ----------
    name:
        Display name (one class instance may cover several model keys).
    priority:
        Priority tier; higher tiers are always dispatched before lower
        ones by the SLO-aware policy.
    deadline_s:
        Relative completion deadline [s] measured from arrival; a
        delivered frame *hits* its SLO when ``latency_s <= deadline_s``.
        ``None`` means no deadline (every delivered frame hits).
    drop_policy:
        ``"busy"`` — drop at arrival when no node is free (sensor
        semantics, the historical behaviour); ``"deadline"`` — buffer the
        frame and drop it only when its deadline expires before it can
        start (requires a queueing scheduler policy to matter).
    weight:
        Weighted-fair-queuing share within a priority tier (the SLO-aware
        policy serves tenants in proportion to their weights).
    max_queue_s:
        Backpressure bound: shed the frame at admission when the
        scheduler's queue-wait estimate exceeds this [s].  ``None``
        disables shedding for the class.
    """

    name: str = "best-effort"
    priority: int = 0
    deadline_s: float | None = None
    drop_policy: str = "busy"
    weight: float = 1.0
    max_queue_s: float | None = None

    def __post_init__(self) -> None:
        if self.drop_policy not in DROP_POLICIES:
            raise ValueError(
                f"drop_policy must be one of {DROP_POLICIES}, got "
                f"{self.drop_policy!r}"
            )
        check_positive("weight", self.weight)
        if self.deadline_s is not None:
            check_positive("deadline_s", self.deadline_s)
        if self.max_queue_s is not None:
            check_positive("max_queue_s", self.max_queue_s)

    def absolute_deadline_s(self, arrival_s: float) -> float:
        """Completion deadline on the stream clock (``inf`` when none)."""
        if self.deadline_s is None:
            return math.inf
        return arrival_s + self.deadline_s

    def hit(self, latency_s: float) -> bool:
        """Whether a delivered frame's latency meets the deadline."""
        if self.deadline_s is None:
            return True
        return latency_s <= self.deadline_s + 1e-12


#: The pass-through service level every unclassified model serves under.
BEST_EFFORT = SloClass()


class AdmissionController:
    """Maps model keys to SLO classes and makes the shed decision.

    Parameters
    ----------
    classes:
        ``{model_key: SloClass}``; keys absent from the mapping serve
        under ``default``.
    default:
        Class for unmapped keys — :data:`BEST_EFFORT` unless overridden.

    The controller is stateless per ``serve`` call: the scheduler records
    the outcomes, :func:`build_slo_report` aggregates them afterwards.
    """

    def __init__(
        self,
        classes: dict[str, SloClass] | None = None,
        default: SloClass = BEST_EFFORT,
    ) -> None:
        self.classes = dict(classes or {})
        self.default = default
        # One name, one definition: SLO accounting aggregates per class
        # *name*, so two models sharing a name with different deadlines or
        # priorities would report a deadline the frames were not scored
        # against.
        seen: dict[str, SloClass] = {}
        for key, slo in self.classes.items():
            previous = seen.setdefault(slo.name, slo)
            if previous != slo:
                raise ValueError(
                    f"SLO class name {slo.name!r} is defined inconsistently "
                    f"across model keys (e.g. {key!r}); classes sharing a "
                    "name must be identical"
                )

    @property
    def has_classes(self) -> bool:
        """Whether any model serves under a non-default class."""
        return bool(self.classes)

    def slo_for(self, model_key: str) -> SloClass:
        """The service level ``model_key`` serves under."""
        return self.classes.get(model_key, self.default)

    def sheds(self, model_key: str, wait_estimate_s: float) -> bool:
        """Whether to shed an arrival given the scheduler's wait estimate."""
        slo = self.slo_for(model_key)
        if slo.max_queue_s is None:
            return False
        return wait_estimate_s > slo.max_queue_s


#: The pass-through controller the default server configuration uses.
PASS_THROUGH = AdmissionController()


@dataclass
class SloClassStats:
    """Outcome counters of one SLO class over one served stream."""

    name: str
    priority: int
    deadline_s: float | None
    offered: int = 0
    delivered: int = 0
    #: Dropped at arrival because no node was free (sensor semantics).
    dropped_busy: int = 0
    #: Rejected by admission backpressure before entering the queue.
    shed: int = 0
    #: Queued but never dispatched (deadline passed or stream ended).
    expired: int = 0
    #: Killed in flight by a node loss and never redelivered (chaos).
    lost: int = 0
    #: Delivered frames meeting / missing the relative deadline.
    deadline_hits: int = 0
    deadline_misses: int = 0
    p50_latency_s: float = float("nan")
    p99_latency_s: float = float("nan")

    @property
    def hit_rate(self) -> float:
        """Deadline hits over *offered* frames — drops and sheds count
        against the class, which is what a tenant's SLO attainment means."""
        return self.deadline_hits / self.offered if self.offered else 0.0

    @property
    def delivered_rate(self) -> float:
        """Delivered over offered frames."""
        return self.delivered / self.offered if self.offered else 0.0


@dataclass
class SloReport:
    """Per-class SLO accounting of one :meth:`FrameServer.serve` call."""

    policy: str
    classes: dict[str, SloClassStats] = field(default_factory=dict)

    @property
    def offered(self) -> int:
        """Frames offered across every class."""
        return sum(stats.offered for stats in self.classes.values())

    @property
    def overall_hit_rate(self) -> float:
        """Deadline hits over offered frames, fleet-wide."""
        hits = sum(stats.deadline_hits for stats in self.classes.values())
        offered = self.offered
        return hits / offered if offered else 0.0

    def worst_class(self) -> SloClassStats | None:
        """The class with the lowest hit rate (ties: lowest priority)."""
        if not self.classes:
            return None
        return min(
            self.classes.values(), key=lambda s: (s.hit_rate, s.priority)
        )


def build_slo_report(
    policy_name: str,
    responses,
    admission: AdmissionController,
    shed: set[int],
    expired: set[int],
    lost: set[int] = frozenset(),
) -> SloReport:
    """Aggregate one serve call's responses into per-class SLO statistics.

    ``shed``/``expired``/``lost`` are the request indices the scheduler
    rejected at admission / dropped from the queue / lost in flight to a
    node failure; every other dropped frame is a busy-drop.  Latency
    percentiles use the deterministic nearest-rank rule from
    :mod:`repro.sim.stream`.
    """
    report = SloReport(policy=policy_name)
    latencies: dict[str, list[float]] = {}
    for response in responses:
        slo = admission.slo_for(response.model_key)
        stats = report.classes.get(slo.name)
        if stats is None:
            stats = SloClassStats(
                name=slo.name, priority=slo.priority, deadline_s=slo.deadline_s
            )
            report.classes[slo.name] = stats
            latencies[slo.name] = []
        stats.offered += 1
        if response.dropped:
            if response.index in shed:
                stats.shed += 1
            elif response.index in expired:
                stats.expired += 1
            elif response.index in lost:
                stats.lost += 1
            else:
                stats.dropped_busy += 1
            continue
        stats.delivered += 1
        latency = response.event.latency_s
        latencies[slo.name].append(latency)
        if slo.hit(latency):
            stats.deadline_hits += 1
        else:
            stats.deadline_misses += 1
    for name, stats in report.classes.items():
        values = latencies[name]
        if values:
            stats.p50_latency_s = nearest_rank_percentile(values, 0.50)
            stats.p99_latency_s = nearest_rank_percentile(values, 0.99)
    return report


__all__ = [
    "BEST_EFFORT",
    "DROP_POLICIES",
    "PASS_THROUGH",
    "AdmissionController",
    "SloClass",
    "SloClassStats",
    "SloReport",
    "build_slo_report",
]
