"""Workload scenarios: traffic generators over the model zoo.

The serving demos historically hard-coded one synthetic stream (two
LeNets, uniform arrivals, half/half split).  A scheduling engine needs to
be exercised by the traffic it will actually face — CamJ-style system
studies treat the workload mix as a first-class axis — so this module
makes scenarios *data*:

* :class:`ModelSpec` — one zoo entry: a model family (LeNet / MLP /
  VGG-16 first layer / ResNet-18 first layer) at a weight bit width, with
  its frame geometry.  The VGG/ResNet entries are first-layer-only
  pipelines (ternary input + quantized stem convolution) — exactly the
  part of the network OISA computes in-sensor, and what a node ships
  off-die per the paper's thing-centric argument;
* :class:`Scenario` — models + a concrete request list (explicit arrival
  times) + optional per-model :class:`~repro.engine.admission.SloClass`
  map, servable via :meth:`FrameServer.serve_scenario`;
* scenario generators registered under stable keys
  (:func:`register_scenario` / :func:`build_scenario` /
  :func:`scenario_registry`, mirroring :mod:`repro.sim.platforms`):
  ``default`` (the historical two-LeNet demo, kept bit-compatible),
  ``poisson`` (memoryless arrivals), ``poisson-burst`` (ON/OFF bursts),
  ``diurnal`` (deterministic sinusoidal rate ramp), ``mixed-tenants``
  (interactive vs. batch tenants with SLO classes — the policy-bench
  scenario) and ``zoo`` (round-robin over every family and bit width).

Determinism: every stochastic draw comes from
``np.random.default_rng(seed)`` streams derived per scenario, so a fixed
(scenario, frames, fps, seed) triple reproduces the same request list —
and therefore, via the scheduler's determinism contract, the same
``ServeReport`` — bit-for-bit.  Frame generation is vectorized where the
draw order allows it (:func:`_frames_batch` replaces the historical
per-frame loop with one flat draw, bit-identically); generators whose
frame draws interleave with arrival draws keep the sequential loop.
Stream merging breaks arrival ties on an explicit
``(arrival_s, tenant, index)`` key.

Units: arrival times in *simulated* seconds, rates in frames/second;
frames are (C, H, W) float arrays on a unit pixel scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.admission import SloClass
from repro.engine.server import FrameRequest
from repro.nn.layers import Sequential
from repro.nn.models import (
    FirstLayerConfig,
    TernaryInputLayer,
    build_lenet,
    build_mlp,
)
from repro.nn.quant import QuantConv2D
from repro.util.rng import spawn_seeds
from repro.util.validation import check_positive

#: Frame geometry per family: (in_channels, height, width).
_FAMILY_FRAME_SHAPES: dict[str, tuple[int, int, int]] = {
    "lenet": (1, 28, 28),
    "mlp": (1, 28, 28),
    "vgg16": (3, 32, 32),
    "resnet18": (3, 32, 32),
}

#: First-layer stem geometry for the conv-only families:
#: (out_channels, kernel_size, stride, padding).  Both CIFAR-class stems
#: are 3x3/64 — they differ as kernel *sets* (independent weights), which
#: is what the serving cache/scheduler care about.
_STEM_GEOMETRY: dict[str, tuple[int, int, int, int]] = {
    "vgg16": (64, 3, 1, 1),
    "resnet18": (64, 3, 1, 1),
}


@dataclass(frozen=True)
class ModelSpec:
    """One zoo entry: family + weight bit width (+ derived frame shape)."""

    family: str
    weight_bits: int = 4

    def __post_init__(self) -> None:
        if self.family not in _FAMILY_FRAME_SHAPES:
            raise ValueError(
                f"unknown model family {self.family!r}; known: "
                f"{', '.join(sorted(_FAMILY_FRAME_SHAPES))}"
            )
        if not 1 <= self.weight_bits <= 4:
            raise ValueError(
                f"weight_bits must be in [1, 4], got {self.weight_bits}"
            )

    @property
    def key(self) -> str:
        """Stable model key, e.g. ``"lenet-4b"``."""
        return f"{self.family}-{self.weight_bits}b"

    @property
    def frame_shape(self) -> tuple[int, int, int]:
        """(C, H, W) geometry of the frames this model serves."""
        return _FAMILY_FRAME_SHAPES[self.family]

    def build(self, seed: int | None = None) -> Sequential:
        """Construct the servable model (full net or first-layer stem)."""
        config = FirstLayerConfig(weight_bits=self.weight_bits)
        if self.family == "lenet":
            return build_lenet(first_layer=config, seed=seed)
        if self.family == "mlp":
            channels, rows, cols = self.frame_shape
            return build_mlp(
                in_features=channels * rows * cols,
                hidden=(64,),
                first_layer=config,
                seed=seed,
            )
        kernels, size, stride, padding = _STEM_GEOMETRY[self.family]
        channels = self.frame_shape[0]
        return Sequential(
            [
                TernaryInputLayer(),
                QuantConv2D(
                    channels,
                    kernels,
                    size,
                    bits=self.weight_bits,
                    stride=stride,
                    padding=padding,
                    use_bias=False,
                    seed=seed,
                ),
            ]
        )


def parse_model_specs(text: str) -> tuple[ModelSpec, ...]:
    """Parse a CLI model list like ``"lenet:4,mlp:2,vgg16:1"``.

    Each token is ``family[:bits]`` (bits default to 4).
    """
    specs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        family, _, bits = token.partition(":")
        specs.append(ModelSpec(family.strip(), int(bits) if bits else 4))
    if not specs:
        raise ValueError(f"no model specs in {text!r}")
    return tuple(specs)


@dataclass
class Scenario:
    """Models + request stream + SLO classes, ready to serve."""

    name: str
    description: str
    models: dict[str, Sequential]
    requests: list[FrameRequest]
    slo_classes: dict[str, SloClass] = field(default_factory=dict)
    #: Rate the arrivals were generated for (and the fallback interval for
    #: requests without explicit timestamps).
    offered_fps: float | None = None

    @property
    def model_keys(self) -> tuple[str, ...]:
        return tuple(self.models)


#: Registered generators: key -> (description, factory(frames, fps, seed)).
_SCENARIOS: dict[str, tuple[str, Callable[[int, float, int], Scenario]]] = {}


def register_scenario(key: str, description: str):
    """Decorator registering a scenario generator under ``key``."""

    def decorator(fn: Callable[[int, float, int], Scenario]):
        lowered = key.lower()
        if lowered in _SCENARIOS:
            raise ValueError(f"scenario {lowered!r} is already registered")
        _SCENARIOS[lowered] = (description, fn)
        return fn

    return decorator


def scenario_registry() -> tuple[str, ...]:
    """Registered scenario keys, in registration order."""
    return tuple(_SCENARIOS)


def scenario_description(key: str) -> str:
    """One-line description of a registered scenario."""
    return _lookup(key)[0]


def build_scenario(
    key: str,
    frames: int = 64,
    offered_fps: float = 1000.0,
    seed: int = 0,
) -> Scenario:
    """Generate a registered scenario's models + request stream."""
    check_positive("frames", frames)
    check_positive("offered_fps", offered_fps)
    return _lookup(key)[1](frames, offered_fps, seed)


def _lookup(key: str) -> tuple[str, Callable]:
    entry = _SCENARIOS.get(key.lower())
    if entry is None:
        raise ValueError(
            f"unknown scenario {key!r}; known: "
            f"{', '.join(sorted(_SCENARIOS))}"
        )
    return entry


# ----------------------------------------------------------------------
# Generator helpers
# ----------------------------------------------------------------------
def _build_models(
    specs: tuple[ModelSpec, ...], seed: int
) -> dict[str, Sequential]:
    seeds = spawn_seeds(seed, len(specs))
    return {spec.key: spec.build(seeds[i]) for i, spec in enumerate(specs)}


def _frame(rng: np.random.Generator, spec: ModelSpec) -> np.ndarray:
    """Reference per-frame draw; :func:`_frames_batch` hoists this."""
    return rng.uniform(0.0, 1.0, spec.frame_shape)


def _frames_batch(
    rng: np.random.Generator, specs: list[ModelSpec]
) -> list[np.ndarray]:
    """Draw one frame per spec in a single flat ``uniform`` call.

    Bit-identical to ``[_frame(rng, spec) for spec in specs]``: a NumPy
    ``Generator`` fills a ``uniform`` request element-wise from one
    stream, so one flat draw split at the per-frame sizes reproduces the
    exact floats of the per-frame draws it replaces — even across
    heterogeneous frame shapes.  Generators that interleave frame draws
    with other stochastic draws (the bursty ON/OFF scenarios) keep the
    sequential :func:`_frame` loop instead.
    ``tests/test_engine_batched.py`` pins the equality.
    """
    sizes = [int(np.prod(spec.frame_shape)) for spec in specs]
    flat = rng.uniform(0.0, 1.0, sum(sizes))
    frames: list[np.ndarray] = []
    offset = 0
    for spec, size in zip(specs, sizes):
        frames.append(flat[offset : offset + size].reshape(spec.frame_shape))
        offset += size
    return frames


def _interleave(streams: list[list[FrameRequest]]) -> list[FrameRequest]:
    """Merge per-tenant streams into one arrival-sorted request list.

    Ties break on an explicit ``(arrival_s, tenant, index)`` key — tenant
    name (the model key when unset, matching the billing fallback) then
    position within its own stream — so equal-arrival requests across
    tenants never depend on incidental list order.
    """
    keyed = [
        (request.arrival_s, request.tenant or request.model_key, index, request)
        for stream in streams
        for index, request in enumerate(stream)
    ]
    keyed.sort(key=lambda item: item[:3])
    return [request for *_, request in keyed]


def _poisson_arrivals(
    rng: np.random.Generator, frames: int, rate_fps: float
) -> list[float]:
    gaps = rng.exponential(1.0 / rate_fps, frames)
    return list(np.cumsum(gaps))


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@register_scenario(
    "default",
    "historical two-LeNet demo: uniform arrivals, half/half model split",
)
def _default_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    # Byte-for-byte the stream `repro serve` always generated: frames from
    # default_rng(seed), model-a/b = LeNets at seed/seed+1, implicit
    # uniform arrivals (the server derives them from the offered rate).
    rng = np.random.default_rng(seed)
    models = {
        "model-a": build_lenet(seed=seed),
        "model-b": build_lenet(seed=seed + 1),
    }
    stack = rng.uniform(0.0, 1.0, (frames, 1, 28, 28))
    requests = [
        FrameRequest(stack[i], "model-a" if i < frames // 2 else "model-b")
        for i in range(frames)
    ]
    return Scenario(
        name="default",
        description=scenario_description("default"),
        models=models,
        requests=requests,
        offered_fps=offered_fps,
    )


@register_scenario(
    "poisson",
    "memoryless arrivals over a LeNet+MLP mix (queueable 20 ms deadline)",
)
def _poisson_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    rng = np.random.default_rng(seed)
    specs = (ModelSpec("lenet", 4), ModelSpec("mlp", 2))
    models = _build_models(specs, seed)
    arrivals = _poisson_arrivals(rng, frames, offered_fps)
    choices = rng.random(frames)
    chosen = [specs[0] if choices[i] < 0.7 else specs[1] for i in range(frames)]
    stacks = _frames_batch(rng, chosen)
    requests = [
        FrameRequest(stacks[i], chosen[i].key, arrival_s=arrivals[i])
        for i in range(frames)
    ]
    slo = SloClass(name="stream", deadline_s=0.02, drop_policy="deadline")
    return Scenario(
        name="poisson",
        description=scenario_description("poisson"),
        models=models,
        requests=requests,
        slo_classes={spec.key: slo for spec in specs},
        offered_fps=offered_fps,
    )


@register_scenario(
    "poisson-burst",
    "ON/OFF Poisson bursts (4x rate, 30% duty) over a LeNet+MLP mix",
)
def _burst_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    rng = np.random.default_rng(seed)
    specs = (ModelSpec("lenet", 4), ModelSpec("mlp", 2))
    models = _build_models(specs, seed)
    period_s, duty, multiplier = 0.04, 0.3, 4.0
    # Off-rate chosen so the long-run average stays at offered_fps.
    off_rate = offered_fps * (1.0 - duty * multiplier) / (1.0 - duty)
    off_rate = max(off_rate, offered_fps * 0.05)
    requests = []
    now = 0.0
    choices = rng.random(frames)
    for i in range(frames):
        in_burst = (now % period_s) < duty * period_s
        rate = offered_fps * multiplier if in_burst else off_rate
        now += rng.exponential(1.0 / rate)
        spec = specs[0] if choices[i] < 0.6 else specs[1]
        requests.append(
            FrameRequest(_frame(rng, spec), spec.key, arrival_s=now)
        )
    slo = SloClass(name="stream", deadline_s=0.02, drop_policy="deadline")
    return Scenario(
        name="poisson-burst",
        description=scenario_description("poisson-burst"),
        models=models,
        requests=requests,
        slo_classes={spec.key: slo for spec in specs},
        offered_fps=offered_fps,
    )


@register_scenario(
    "diurnal",
    "deterministic sinusoidal rate ramp (0.4x-1.6x) over two LeNet widths",
)
def _diurnal_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    rng = np.random.default_rng(seed)
    specs = (ModelSpec("lenet", 4), ModelSpec("lenet", 2))
    models = _build_models(specs, seed)
    # Arrivals stay a sequential accumulation (``math.sin`` per step, the
    # historical ULP-exact floats); the frame draws hoist into one call.
    arrivals = []
    now = 0.0
    for i in range(frames):
        # One full "day" over the stream; rate swings 0.4x..1.6x.
        phase = 2.0 * math.pi * i / frames
        rate = offered_fps * (1.0 + 0.6 * math.sin(phase))
        now += 1.0 / rate
        arrivals.append(now)
    chosen = [specs[i % len(specs)] for i in range(frames)]
    stacks = _frames_batch(rng, chosen)
    requests = [
        FrameRequest(stacks[i], chosen[i].key, arrival_s=arrivals[i])
        for i in range(frames)
    ]
    return Scenario(
        name="diurnal",
        description=scenario_description("diurnal"),
        models=models,
        requests=requests,
        offered_fps=offered_fps,
    )


#: SLO classes of the ``mixed-tenants`` scenario (also used by the
#: serving-policy bench): an interactive tenant with a tight deadline and
#: triple WFQ share, and a batch tenant that queues long and sheds first.
MIXED_TENANT_CLASSES: dict[str, SloClass] = {
    "lenet-4b": SloClass(
        name="interactive",
        priority=2,
        deadline_s=0.006,
        drop_policy="deadline",
        weight=3.0,
    ),
    "mlp-2b": SloClass(
        name="batch",
        priority=0,
        deadline_s=0.05,
        drop_policy="deadline",
        weight=1.0,
        max_queue_s=0.02,
    ),
    "vgg16-1b": SloClass(
        name="batch",
        priority=0,
        deadline_s=0.05,
        drop_policy="deadline",
        weight=1.0,
        max_queue_s=0.02,
    ),
}


@register_scenario(
    "mixed-tenants",
    "interactive LeNet tenant (tight SLO) vs bursty batch tenants "
    "(MLP + VGG16 stem) oversubscribing the fleet",
)
def _mixed_tenant_scenario(
    frames: int, offered_fps: float, seed: int
) -> Scenario:
    rng = np.random.default_rng(seed)
    interactive = ModelSpec("lenet", 4)
    batch_specs = (ModelSpec("mlp", 2), ModelSpec("vgg16", 1))
    models = _build_models((interactive,) + batch_specs, seed)

    n_interactive = frames // 2
    n_batch = frames - n_interactive
    # Interactive: steady uniform arrivals at just over half the offered
    # rate — a well-behaved tenant.
    interactive_frames = _frames_batch(rng, [interactive] * n_interactive)
    interactive_stream = [
        FrameRequest(
            interactive_frames[i],
            interactive.key,
            arrival_s=i / (0.55 * offered_fps),
            tenant="interactive",
        )
        for i in range(n_interactive)
    ]
    # Batch: ON/OFF bursts at 5x during 25% duty windows — during a burst
    # the combined offered rate exceeds fleet capacity.
    period_s, duty, multiplier = 0.05, 0.25, 5.0
    base = 0.45 * offered_fps
    off_rate = max(base * (1.0 - duty * multiplier) / (1.0 - duty), base * 0.05)
    batch_stream = []
    now = 0.0
    choices = rng.random(n_batch)
    for i in range(n_batch):
        in_burst = (now % period_s) < duty * period_s
        rate = base * multiplier if in_burst else off_rate
        now += rng.exponential(1.0 / rate)
        spec = batch_specs[0] if choices[i] < 0.7 else batch_specs[1]
        batch_stream.append(
            FrameRequest(
                _frame(rng, spec), spec.key, arrival_s=now, tenant="batch"
            )
        )
    return Scenario(
        name="mixed-tenants",
        description=scenario_description("mixed-tenants"),
        models=models,
        requests=_interleave([interactive_stream, batch_stream]),
        slo_classes=dict(MIXED_TENANT_CLASSES),
        offered_fps=offered_fps,
    )


#: SLO classes of the ``chaos`` scenario (also used by the chaos bench):
#: a latency-critical interactive tenant whose deadline a node-loss window
#: visibly endangers, and a shed-first batch tenant.
CHAOS_CLASSES: dict[str, SloClass] = {
    "lenet-4b": SloClass(
        name="interactive",
        priority=2,
        deadline_s=0.008,
        drop_policy="deadline",
        weight=3.0,
    ),
    "mlp-2b": SloClass(
        name="batch",
        priority=0,
        deadline_s=0.05,
        drop_policy="deadline",
        weight=1.0,
        max_queue_s=0.02,
    ),
}


@register_scenario(
    "chaos",
    "steady interactive LeNet tenant + Poisson batch MLP tenant, sized "
    "so a chaos node-loss window endangers the interactive deadline",
)
def _chaos_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    # The resilience-drill stream: interactive traffic is a steady,
    # well-behaved tenant at two thirds of the offered rate — enough that
    # losing a node mid-stream (the ``node-loss`` chaos plan) overloads
    # the survivors and burns interactive deadlines unless the failover
    # layer (retry + warm spares) absorbs the window.
    rng = np.random.default_rng(seed)
    interactive = ModelSpec("lenet", 4)
    batch = ModelSpec("mlp", 2)
    models = _build_models((interactive, batch), seed)

    n_interactive = (2 * frames) // 3
    n_batch = frames - n_interactive
    interactive_frames = _frames_batch(rng, [interactive] * n_interactive)
    interactive_stream = [
        FrameRequest(
            interactive_frames[i],
            interactive.key,
            arrival_s=i / (2.0 / 3.0 * offered_fps),
            tenant="interactive",
        )
        for i in range(n_interactive)
    ]
    batch_arrivals = _poisson_arrivals(rng, n_batch, offered_fps / 3.0)
    batch_frames = _frames_batch(rng, [batch] * n_batch)
    batch_stream = [
        FrameRequest(
            batch_frames[i],
            batch.key,
            arrival_s=batch_arrivals[i],
            tenant="batch",
        )
        for i in range(n_batch)
    ]
    return Scenario(
        name="chaos",
        description=scenario_description("chaos"),
        models=models,
        requests=_interleave([interactive_stream, batch_stream]),
        slo_classes=dict(CHAOS_CLASSES),
        offered_fps=offered_fps,
    )


#: Regions of the ``diurnal-regions`` scenario, in stream order.  Each
#: region serves its *own* interactive model key (a regionally fine-tuned
#: LeNet) so a sharded control plane can place one region per shard and
#: route by model hosting rather than by tenant-hash luck.
DIURNAL_REGIONS: tuple[str, ...] = ("na", "eu", "ap")

#: One shared interactive class instance across the regional keys — the
#: admission controller requires classes sharing a name to be identical.
_REGION_INTERACTIVE = SloClass(
    name="interactive",
    priority=2,
    deadline_s=0.008,
    drop_policy="deadline",
    weight=3.0,
)

#: SLO classes of the ``diurnal-regions`` scenario (also used by the
#: control-plane bench): per-region interactive LeNets plus one
#: fleet-wide shed-first batch tenant.
REGION_CLASSES: dict[str, SloClass] = {
    **{
        f"lenet-4b@{region}": _REGION_INTERACTIVE
        for region in DIURNAL_REGIONS
    },
    "mlp-2b": SloClass(
        name="batch",
        priority=0,
        deadline_s=0.05,
        drop_policy="deadline",
        weight=1.0,
        max_queue_s=0.02,
    ),
}


@register_scenario(
    "diurnal-regions",
    "three phase-shifted regional diurnal interactive streams (one LeNet "
    "per region) + a Poisson batch MLP tail — the autoscaling drill",
)
def _diurnal_regions_scenario(
    frames: int, offered_fps: float, seed: int
) -> Scenario:
    # The multi-region story: each region's interactive demand swings
    # through a deep diurnal cycle (0.15x..1.85x), but the three phases
    # are spaced a third of a "day" apart, so the *global* rate is nearly
    # flat — only a control plane that shards by region and autoscales
    # each shard against its own regional swing can harvest the trough
    # capacity.  A single static fleet sized for the regional peak wastes
    # it around the clock.
    rng = np.random.default_rng(seed)
    lenet = ModelSpec("lenet", 4)
    batch = ModelSpec("mlp", 2)
    seeds = spawn_seeds(seed, len(DIURNAL_REGIONS) + 1)
    models: dict[str, Sequential] = {
        f"lenet-4b@{region}": lenet.build(seeds[index])
        for index, region in enumerate(DIURNAL_REGIONS)
    }
    models[batch.key] = batch.build(seeds[len(DIURNAL_REGIONS)])

    n_batch = frames // 5
    n_interactive = frames - n_batch
    base = 0.25 * offered_fps  # per-region average interactive rate
    streams: list[list[FrameRequest]] = []
    for index, region in enumerate(DIURNAL_REGIONS):
        count = n_interactive // len(DIURNAL_REGIONS) + (
            1 if index < n_interactive % len(DIURNAL_REGIONS) else 0
        )
        arrivals = []
        now = 0.0
        for i in range(count):
            # One full day over the stream, phase-shifted per region.
            phase = 2.0 * math.pi * (
                i / count + index / len(DIURNAL_REGIONS)
            )
            rate = base * (1.0 + 0.85 * math.sin(phase))
            now += 1.0 / rate
            arrivals.append(now)
        region_frames = _frames_batch(rng, [lenet] * count)
        streams.append(
            [
                FrameRequest(
                    region_frames[i],
                    f"lenet-4b@{region}",
                    arrival_s=arrivals[i],
                    tenant=f"{region}:interactive",
                )
                for i in range(count)
            ]
        )
    batch_arrivals = _poisson_arrivals(rng, n_batch, 0.2 * offered_fps)
    batch_frames = _frames_batch(rng, [batch] * n_batch)
    streams.append(
        [
            FrameRequest(
                batch_frames[i],
                batch.key,
                arrival_s=batch_arrivals[i],
                tenant="batch",
            )
            for i in range(n_batch)
        ]
    )
    return Scenario(
        name="diurnal-regions",
        description=scenario_description("diurnal-regions"),
        models=models,
        requests=_interleave(streams),
        slo_classes=dict(REGION_CLASSES),
        offered_fps=offered_fps,
    )


@register_scenario(
    "zoo",
    "round-robin over every model family at several bit widths",
)
def _zoo_scenario(frames: int, offered_fps: float, seed: int) -> Scenario:
    specs = (
        ModelSpec("lenet", 4),
        ModelSpec("lenet", 2),
        ModelSpec("mlp", 4),
        ModelSpec("mlp", 2),
        ModelSpec("vgg16", 4),
        ModelSpec("vgg16", 1),
        ModelSpec("resnet18", 4),
        ModelSpec("resnet18", 2),
    )
    scenario = models_scenario(
        specs, frames=frames, offered_fps=offered_fps, seed=seed
    )
    scenario.name = "zoo"
    scenario.description = scenario_description("zoo")
    return scenario


def models_scenario(
    specs: tuple[ModelSpec, ...] | str,
    frames: int = 64,
    offered_fps: float = 1000.0,
    seed: int = 0,
) -> Scenario:
    """Ad-hoc scenario: uniform arrivals round-robin over ``specs``.

    Backs the ``repro serve --models`` flag — pick any zoo subset without
    registering a scenario.  ``specs`` may be the CLI string form.
    """
    if isinstance(specs, str):
        specs = parse_model_specs(specs)
    check_positive("frames", frames)
    check_positive("offered_fps", offered_fps)
    rng = np.random.default_rng(seed)
    models = _build_models(tuple(specs), seed)
    chosen = [specs[i % len(specs)] for i in range(frames)]
    stacks = _frames_batch(rng, chosen)
    requests = [
        FrameRequest(stacks[i], chosen[i].key, arrival_s=i / offered_fps)
        for i in range(frames)
    ]
    return Scenario(
        name="models",
        description=f"uniform round-robin over {', '.join(s.key for s in specs)}",
        models=models,
        requests=requests,
        offered_fps=offered_fps,
    )


__all__ = [
    "CHAOS_CLASSES",
    "DIURNAL_REGIONS",
    "MIXED_TENANT_CLASSES",
    "REGION_CLASSES",
    "ModelSpec",
    "Scenario",
    "build_scenario",
    "models_scenario",
    "parse_model_specs",
    "register_scenario",
    "scenario_description",
    "scenario_registry",
]
