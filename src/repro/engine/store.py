"""Content-addressed on-disk store of programmed weight records.

Programming is deterministic per (config, die seed, kernel set) — the
scalar-reference bit-identity contract of :mod:`repro.core.reference` —
which makes every :class:`~repro.core.opc.ProgrammedWeights` record a
*reusable artifact*: the expensive AWC realization / crosstalk solve /
tuning pricing only ever needs to run once per key, not once per
process.  The in-memory :class:`~repro.engine.cache.WeightProgramCache`
kills repeat programming *within* a run; this store kills it *across*
runs: a second ``repro serve`` or ``repro sweep`` against the same store
programs nothing.

Addressing: entries are keyed by the cache's own
:meth:`~repro.engine.cache.WeightProgramCache.key_for` digest — a sha256
over the quantized kernel set, the quantizer scale, the full
architecture config repr, the die seed / crosstalk flag, and the
calibration token — so *everything that shapes the mapping* is already
in the filename.  The filename also carries
:data:`STORE_SCHEMA_VERSION`, so a layout change simply misses old
entries instead of misreading them.

Integrity: each npz embeds a sha256 digest over the exact payload
bytes.  A load recomputes and compares it; a truncated file, a flipped
bit, or a wrong-schema npz **never crashes serving** — the corrupt
entry is counted (:attr:`StoreStats.corrupt`), logged, removed, and the
caller falls through to reprogramming, which writes a fresh entry back.

Because programming is deterministic, a loaded record is byte-equal to
a freshly programmed one — the golden bit-identity tests hold with or
without a store attached.

Concurrency: writes are atomic (temp file + ``os.replace``) and
content-addressed (an existing entry is never rewritten), so process
workers and concurrent runs sharing one store directory race benignly —
every writer writes the same bytes.  A store instance pickles as its
path + schema alone (stats are per-process), which is what lets a
:class:`~repro.engine.cache.WeightProgramCache` carrying one travel
into :mod:`repro.util.parallel` workers.
"""

from __future__ import annotations

import hashlib
import logging
import os
import re
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.opc import ProgrammedWeights
from repro.photonics.tuning import TuningBudget

_LOG = logging.getLogger(__name__)

#: On-disk layout version; bump on any change to the npz field set or
#: the digest recipe.  Part of every filename *and* of
#: :meth:`ProgramStore.schema_token`, the CI cache key.
STORE_SCHEMA_VERSION: int = 1

#: ``<sha256 key>.v<schema>.npz``
_ENTRY_RE = re.compile(r"^([0-9a-f]{64})\.v(\d+)\.npz$")


class StoreCorruption(Exception):
    """One entry failed its integrity check (internal control flow)."""


@dataclass
class StoreStats:
    """Per-process counters of one :class:`ProgramStore` instance."""

    #: Entries loaded and integrity-verified.
    hits: int = 0
    #: Lookups that found no entry on disk.
    misses: int = 0
    #: Entries written (an already-present key does not rewrite).
    writes: int = 0
    #: Entries that failed the sha256/parse check on load and were
    #: removed — each one fell back to reprogramming, never a crash.
    corrupt: int = 0
    #: Entries removed by :meth:`ProgramStore.invalidate` /
    #: :meth:`ProgramStore.invalidate_die`.
    invalidations: int = 0


class ProgramStore:
    """Content-addressed npz store of :class:`ProgrammedWeights` records.

    Parameters
    ----------
    root:
        Directory holding the entries; created on first use.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = os.fspath(root)
        self.stats = StoreStats()
        os.makedirs(self.root, exist_ok=True)

    # -- pickling: a store travels into process workers as path only ----
    def __getstate__(self) -> dict[str, Any]:
        return {"root": self.root}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self.stats = StoreStats()
        os.makedirs(self.root, exist_ok=True)

    @classmethod
    def schema_token(cls) -> str:
        """Short digest of the on-disk schema, for CI cache keys."""
        text = f"repro-program-store-v{STORE_SCHEMA_VERSION}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def _path(self, key: str) -> str:
        return os.path.join(
            self.root, f"{key}.v{STORE_SCHEMA_VERSION}.npz"
        )

    @staticmethod
    def _digest(
        ideal: np.ndarray,
        realized: np.ndarray,
        scale: float,
        tuning: TuningBudget,
        mapping_iterations: int,
        die: int | None,
    ) -> str:
        """sha256 over the exact payload bytes + shape/dtype/scalar reprs."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(ideal).tobytes())
        digest.update(np.ascontiguousarray(realized).tobytes())
        digest.update(
            repr(
                (
                    ideal.shape,
                    str(ideal.dtype),
                    realized.shape,
                    str(realized.dtype),
                    float(scale),
                    float(tuning.energy_j),
                    float(tuning.latency_s),
                    float(tuning.holding_power_w),
                    int(mapping_iterations),
                    die,
                )
            ).encode()
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        programmed: ProgrammedWeights,
        die: int | None = None,
    ) -> bool:
        """Persist one record under ``key``; returns whether it wrote.

        Content-addressed: a key already on disk is left untouched (the
        bytes would be identical by the determinism contract).  Write
        failures (disk full, read-only store) are logged and swallowed —
        the store is an accelerator, never a point of failure.
        """
        path = self._path(key)
        if os.path.exists(path):
            return False
        digest = self._digest(
            programmed.ideal,
            programmed.realized,
            programmed.scale,
            programmed.tuning,
            programmed.mapping_iterations,
            die,
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    ideal=programmed.ideal,
                    realized=programmed.realized,
                    scale=np.float64(programmed.scale),
                    tuning=np.array(
                        [
                            programmed.tuning.energy_j,
                            programmed.tuning.latency_s,
                            programmed.tuning.holding_power_w,
                        ],
                        dtype=np.float64,
                    ),
                    mapping_iterations=np.int64(
                        programmed.mapping_iterations
                    ),
                    die=np.array(
                        [] if die is None else [die], dtype=np.int64
                    ),
                    digest=np.frombuffer(
                        bytes.fromhex(digest), dtype=np.uint8
                    ),
                )
            os.replace(tmp, path)
        except OSError as error:
            _LOG.warning("program store write failed for %s: %s", key, error)
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        self.stats.writes += 1
        return True

    def _read(self, path: str) -> tuple[ProgrammedWeights, int | None]:
        """Parse + integrity-check one entry; raises :class:`StoreCorruption`."""
        try:
            with np.load(path, allow_pickle=False) as payload:
                ideal = np.array(payload["ideal"])
                realized = np.array(payload["realized"])
                scale = float(payload["scale"])
                tuning_values = payload["tuning"]
                mapping_iterations = int(payload["mapping_iterations"])
                die_values = payload["die"]
                stored_digest = bytes(payload["digest"]).hex()
        except Exception as error:  # zip/parse/key errors: all corruption
            raise StoreCorruption(f"unreadable entry ({error})") from error
        if tuning_values.shape != (3,) or die_values.size > 1:
            raise StoreCorruption("malformed tuning/die fields")
        die = int(die_values[0]) if die_values.size else None
        tuning = TuningBudget(
            energy_j=float(tuning_values[0]),
            latency_s=float(tuning_values[1]),
            holding_power_w=float(tuning_values[2]),
        )
        expected = self._digest(
            ideal, realized, scale, tuning, mapping_iterations, die
        )
        if stored_digest != expected:
            raise StoreCorruption("sha256 mismatch")
        programmed = ProgrammedWeights(
            ideal=ideal,
            realized=realized,
            scale=scale,
            tuning=tuning,
            mapping_iterations=mapping_iterations,
        )
        return programmed, die

    def load(self, key: str) -> ProgrammedWeights | None:
        """The record under ``key``, or ``None`` (absent or corrupt).

        A corrupt entry is counted, logged and removed so the caller's
        reprogramming pass can write a fresh one back — corruption
        degrades to a cold start, never an exception.
        """
        path = self._path(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            programmed, _die = self._read(path)
        except StoreCorruption as error:
            self.stats.corrupt += 1
            _LOG.warning(
                "program store entry %s corrupt (%s); reprogramming",
                key,
                error,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return programmed

    # ------------------------------------------------------------------
    # Inventory / maintenance
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Keys of every current-schema entry on disk, sorted."""
        found = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            match = _ENTRY_RE.match(name)
            if match and int(match.group(2)) == STORE_SCHEMA_VERSION:
                found.append(match.group(1))
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def total_bytes(self) -> int:
        """On-disk bytes across current-schema entries."""
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:  # pragma: no cover - racing delete
                pass
        return total

    def verify(self) -> dict[str, list[str]]:
        """Integrity-check every entry without mutating the store.

        Returns ``{"ok": [...], "corrupt": [...]}`` key lists.  Unlike
        :meth:`load`, corrupt entries are *kept* so an operator can
        inspect them (``repro cache purge`` removes everything).
        """
        report: dict[str, list[str]] = {"ok": [], "corrupt": []}
        for key in self.keys():
            try:
                self._read(self._path(key))
            except StoreCorruption:
                report["corrupt"].append(key)
            else:
                report["ok"].append(key)
        return report

    def invalidate(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            os.remove(self._path(key))
        except OSError:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_die(self, seed: int | None) -> int:
        """Remove every entry programmed on the die with ``seed``.

        The health layer's recalibration hook
        (:meth:`~repro.engine.cache.WeightProgramCache.invalidate_die`)
        forwards here so a tripped die's stale programs disappear from
        *both* layers.  Entries whose die field cannot be read are
        treated as corrupt and removed too.  Returns entries removed.
        """
        removed = 0
        for key in self.keys():
            path = self._path(key)
            try:
                _programmed, die = self._read(path)
            except StoreCorruption:
                self.stats.corrupt += 1
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            if die == seed:
                if self.invalidate(key):
                    removed += 1
        return removed

    def purge(self) -> int:
        """Remove every current-schema entry; returns how many."""
        removed = 0
        for key in self.keys():
            if self.invalidate(key):
                removed += 1
        return removed


__all__ = [
    "ProgramStore",
    "STORE_SCHEMA_VERSION",
    "StoreCorruption",
    "StoreStats",
]
