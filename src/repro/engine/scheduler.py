"""Event-driven frame scheduler with pluggable multi-tenant policies.

This module is the simulated-time half of the serving engine split out of
the old monolithic ``FrameServer.serve`` loop.  A :class:`FrameScheduler`
walks one event queue — frame arrivals plus node-free completions — and a
:class:`SchedulingPolicy` decides what runs where:

* :class:`GreedyFifoPolicy` (``"greedy"``) — the historical behaviour,
  transcribed verbatim: frames are considered in arrival order, a free
  node is picked with model affinity (else longest-idle), and a frame
  with no free node is dropped on the spot.  No queueing.  The default
  server configuration routes through this policy and is **bit-identical**
  to the pre-split engine (pinned by ``tests/goldens/serve_default.json``).
* :class:`EarliestDeadlinePolicy` (``"edf"``) — frames whose
  :class:`~repro.engine.admission.SloClass` allows queueing wait for a
  node and dispatch in absolute-deadline order (FIFO among equal
  deadlines); queued frames whose deadline passes before they can start
  are dropped as *expired*.
* :class:`SloAwarePolicy` (``"slo"``) — priority tiers with per-tenant
  weighted fair queuing inside each tier: the highest-priority non-empty
  tenant queues are served in proportion to their classes' WFQ weights
  (frame-count WFQ — deterministic, no service-time estimate needed),
  FIFO within a tenant.  Combined with admission backpressure this is
  the policy that protects interactive tenants through bursts.

Determinism contract: the event queue orders by (time, kind, sequence)
with node-free completions ahead of arrivals at the same instant; every
tie-break is explicit (request index, enqueue sequence, tenant name), so
a fixed (seed, scenario, policy) triple reproduces the same
``ServeReport`` bit-for-bit — there is no wall-clock dependence in any
simulated quantity.  The emitted schedule — ``(request idx, node, model,
degradation tag)`` in dispatch order — is also the compute-mode-agnostic
contract of the host compute step: the server's vectorized batched warm
path and its retained per-chunk reference loop both consume it verbatim,
which is what lets ``tests/test_engine_batched.py`` pin the two paths
bit-identical without touching scheduling.

Units: all event times in *simulated* seconds (the ``StreamEvent``
clock); ``wall_clock_s`` in the result is host time spent building
pipelines/timing tables, kept separate by design.
"""

from __future__ import annotations

import heapq
import math
import time
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.engine.admission import (
    PASS_THROUGH,
    AdmissionController,
    SloClass,
)
from repro.sim.stream import StreamEvent, StreamReport

#: Busy/free float tolerance — same constant the pre-split engine used.
_EPS = 1e-12

#: Event kinds, ordered so completions process before arrivals that land
#: on the same instant (a freed node should take a queued earlier frame
#: before a brand-new arrival claims it), and retries after both (a
#: re-dispatch never jumps ahead of same-instant fresh traffic).
_NODE_FREE = 0
_ARRIVAL = 1
_RETRY = 2


@dataclass(frozen=True)
class QueuedFrame:
    """One admitted-but-waiting frame in a policy queue."""

    index: int
    model_key: str
    tenant: str
    arrival_s: float
    slo: SloClass
    #: Absolute completion deadline on the stream clock (``inf`` = none).
    deadline_s: float
    #: Re-dispatch count (0 = first dispatch); bumped by the failover
    #: layer when a node loss kills the frame in flight.
    attempt: int = 0


class SchedulingPolicy:
    """Node selection + (optional) queue discipline.

    Subclasses with ``queueing = False`` only ever implement
    :meth:`select_node`; queueing policies additionally buffer frames via
    :meth:`enqueue` and surface them in policy order via :meth:`pop_next`.
    A policy instance holds per-serve queue state — :meth:`reset` runs at
    the start of every ``serve`` call.
    """

    #: Registry key / display name.
    name: str = "policy"
    #: Whether frames may wait for a node instead of dropping.
    queueing: bool = False

    def reset(self) -> None:
        """Clear per-stream queue state (start of a ``serve`` call)."""

    def select_node(self, nodes, arrival_s: float, model_key: str):
        """Free node with model affinity, else the longest-idle free node.

        Verbatim the pre-split ``FrameServer._pick_node`` — every policy
        shares it so placement stays bit-identical on the greedy path.
        """
        free = [n for n in nodes if arrival_s >= n.free_at - _EPS]
        if not free:
            return None
        for node in free:
            if node.active_model == model_key:
                return node
        return min(free, key=lambda node: node.free_at)

    # -- queue surface (queueing policies only) ------------------------
    def enqueue(self, item: QueuedFrame) -> None:
        raise NotImplementedError(f"{self.name} does not queue")

    def requeue(self, item: QueuedFrame) -> None:
        """Put a popped frame back (dispatch aborted, e.g. node went busy)."""
        raise NotImplementedError(f"{self.name} does not queue")

    def pop_next(self, now_s: float) -> QueuedFrame | None:
        """Next frame in policy order, or ``None`` when the queue is empty."""
        raise NotImplementedError(f"{self.name} does not queue")

    def on_dispatched(self, item: QueuedFrame) -> None:
        """Fairness bookkeeping hook; called once per dispatched frame."""

    def queue_depth(self, min_priority: int | None = None) -> int:
        """Queued frames (optionally only those at ``>= min_priority``)."""
        return 0

    def drain(self):
        """Yield every still-queued frame (end-of-stream accounting)."""
        return ()


class GreedyFifoPolicy(SchedulingPolicy):
    """Arrival-ordered, drop-if-busy — the historical engine behaviour."""

    name = "greedy"
    queueing = False


class EarliestDeadlinePolicy(SchedulingPolicy):
    """Queue frames and dispatch by earliest absolute deadline.

    Frames without a deadline sort last (``inf``) and act as FIFO
    background traffic; ties break on enqueue order.
    """

    name = "edf"
    queueing = True

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, QueuedFrame]] = []
        self._sequence = 0

    def reset(self) -> None:
        self._heap = []
        self._sequence = 0

    def enqueue(self, item: QueuedFrame) -> None:
        heapq.heappush(self._heap, (item.deadline_s, self._sequence, item))
        self._sequence += 1

    def requeue(self, item: QueuedFrame) -> None:
        # Re-inserting with a fresh sequence keeps deadline order exact;
        # only equal-deadline FIFO order can rotate, and only when a
        # dispatch was aborted by a health recalibration.
        self.enqueue(item)

    def pop_next(self, now_s: float) -> QueuedFrame | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def queue_depth(self, min_priority: int | None = None) -> int:
        if min_priority is None:
            return len(self._heap)
        return sum(
            1 for _, _, item in self._heap if item.slo.priority >= min_priority
        )

    def drain(self):
        while self._heap:
            yield heapq.heappop(self._heap)[2]


class SloAwarePolicy(SchedulingPolicy):
    """Priority tiers + per-tenant weighted fair queuing within a tier.

    Tenants accumulate normalized service (``1/weight`` per dispatched
    frame); among the non-empty tenants whose head frames sit in the
    highest priority tier, the one with the least normalized service goes
    next (ties: lexicographic tenant name).  FIFO within a tenant.
    """

    name = "slo"
    queueing = True

    def __init__(self) -> None:
        self._queues: dict[str, deque[QueuedFrame]] = {}
        self._vwork: dict[str, float] = {}

    def reset(self) -> None:
        self._queues = {}
        self._vwork = {}

    def enqueue(self, item: QueuedFrame) -> None:
        self._queues.setdefault(item.tenant, deque()).append(item)

    def requeue(self, item: QueuedFrame) -> None:
        self._queues.setdefault(item.tenant, deque()).appendleft(item)

    def pop_next(self, now_s: float) -> QueuedFrame | None:
        candidates = [
            (queue[0], tenant)
            for tenant, queue in self._queues.items()
            if queue
        ]
        if not candidates:
            return None
        top = max(head.slo.priority for head, _ in candidates)
        tenant = min(
            (
                (self._vwork.get(name, 0.0), name)
                for head, name in candidates
                if head.slo.priority == top
            )
        )[1]
        return self._queues[tenant].popleft()

    def on_dispatched(self, item: QueuedFrame) -> None:
        self._vwork[item.tenant] = (
            self._vwork.get(item.tenant, 0.0) + 1.0 / item.slo.weight
        )

    def queue_depth(self, min_priority: int | None = None) -> int:
        items = (
            item for queue in self._queues.values() for item in queue
        )
        if min_priority is None:
            return sum(1 for _ in items)
        return sum(1 for item in items if item.slo.priority >= min_priority)

    def drain(self):
        for tenant in sorted(self._queues):
            queue = self._queues[tenant]
            while queue:
                yield queue.popleft()


#: Policy registry for the CLI / workloads layer.
POLICIES: dict[str, type[SchedulingPolicy]] = {
    GreedyFifoPolicy.name: GreedyFifoPolicy,
    EarliestDeadlinePolicy.name: EarliestDeadlinePolicy,
    SloAwarePolicy.name: SloAwarePolicy,
}


def scheduling_policy(spec: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy name or pass an instance through."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    cls = POLICIES.get(str(spec).strip().lower())
    if cls is None:
        raise ValueError(
            f"unknown scheduling policy {spec!r}; known: "
            f"{', '.join(sorted(POLICIES))}"
        )
    return cls()


@dataclass
class SchedulingResult:
    """What one scheduler run decided (compute happens afterwards)."""

    stream: StreamReport
    #: (request idx, node id, model key, degradation tag) per admitted frame,
    #: in dispatch order — the compute phase batches over this.
    schedule: list[tuple[int, int, str, int]] = field(default_factory=list)
    #: request idx -> (node id, event, tag); node id -1 for drops.
    placements: dict[int, tuple[int, StreamEvent, int]] = field(
        default_factory=dict
    )
    #: Indices rejected by admission backpressure.
    shed: set[int] = field(default_factory=set)
    #: Indices queued but never dispatched (deadline passed / stream end).
    expired: set[int] = field(default_factory=set)
    #: Indices killed in flight by a node loss and never delivered
    #: (retries disabled, refused or exhausted).
    lost: set[int] = field(default_factory=set)
    #: request idx -> model key actually dispatched, recorded only when it
    #: differs from the requested key (brownout reduced-bits variants).
    served: dict[int, str] = field(default_factory=dict)
    #: Host time spent on pipeline builds + timing tables.
    wall_clock_s: float = 0.0


class FrameScheduler:
    """One ``serve`` call's simulated-time admission + placement engine.

    Parameters
    ----------
    nodes:
        The server's ``_Node`` list (mutated: ``free_at``, ``frames``,
        ``active_model``).
    models:
        ``{model_key: _ModelEntry}`` — pipeline/timing factories.
    policy:
        A :class:`SchedulingPolicy` instance (reset per run).
    admission:
        The :class:`~repro.engine.admission.AdmissionController`.
    monitor:
        Optional :class:`~repro.engine.health.HealthMonitor`; advanced on
        every arrival (and, for queueing policies, on completions).  A
        monitor carrying a chaos timeline additionally calls back into
        this scheduler when a loss event takes a node out, so in-flight
        frames on it are reaped (and retried when a failover layer is
        attached).
    failover:
        Optional :class:`~repro.engine.failover.FailoverCoordinator` —
        retry decisions, spare activation and brownout admission tiers.
        ``None`` keeps every failover branch cold (the default path stays
        byte-identical to the pre-resilience engine).
    """

    def __init__(
        self,
        nodes,
        models,
        policy: SchedulingPolicy,
        admission: AdmissionController | None = None,
        monitor=None,
        failover=None,
    ) -> None:
        self.nodes = nodes
        self.models = models
        self.policy = policy
        self.admission = admission if admission is not None else PASS_THROUGH
        self.monitor = monitor
        self.failover = failover
        #: Rolling service-time hint [s] for the backpressure wait estimate
        #: (last dispatched frame's pipelined service time).
        self._service_hint_s = 0.0

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------
    def run(self, requests, arrivals: list[float]) -> SchedulingResult:
        """Admit and place every request; returns the scheduling decisions.

        ``arrivals`` is the resolved arrival time per request index.  The
        result's ``stream.events`` are ordered by (arrival, index) — the
        same order the pre-split engine appended them in — regardless of
        dispatch order, and ``total_energy_j`` accumulates in dispatch
        order (identical to arrival order on the non-queueing path).
        """
        self.policy.reset()
        result = SchedulingResult(stream=StreamReport())
        self._result = result
        self._requests = requests
        self._arrivals = arrivals
        #: Node ids with a completion event currently in the heap — one
        #: pending event per node keeps the heap linear in dispatches.
        self._free_event_pending: set[int] = set()
        #: In-flight tracking only exists when something can kill a frame
        #: mid-run (a chaos timeline) or re-dispatch one (a failover
        #: layer) — the default path allocates nothing.
        self._track_inflight = self.failover is not None or (
            self.monitor is not None
            and getattr(self.monitor, "chaos", None) is not None
        )
        #: node id -> {request idx: (finish time, item)} for dispatched,
        #: not-yet-finished frames.
        self._in_flight: dict[int, dict[int, tuple[float, QueuedFrame]]] = {}
        #: request idx -> (schedule position, dispatch energy [J]) of its
        #: latest dispatch, so a loss can revoke it.
        self._dispatch_meta: dict[int, tuple[int, float]] = {}
        #: Schedule positions revoked by node losses (filtered at the end).
        self._revoked: set[int] = set()
        #: Indices that were killed in flight at least once.
        self._lost_once: set[int] = set()
        self._retry_items: dict[int, QueuedFrame] = {}
        self._retry_serial = 0
        if (
            self.monitor is not None
            and getattr(self.monitor, "chaos", None) is not None
        ):
            self.monitor.on_node_lost = self._on_node_lost

        order = sorted(range(len(requests)), key=arrivals.__getitem__)
        heap: list[tuple[float, int, int]] = [
            (arrivals[index], _ARRIVAL, index) for index in order
        ]
        heapq.heapify(heap)
        self._heap = heap
        while heap:
            time_s, kind, key = heapq.heappop(heap)
            if kind == _NODE_FREE:
                self._on_node_free(time_s, key)
            elif kind == _RETRY:
                self._on_retry(time_s, key)
            else:
                self._on_arrival(time_s, key)
        for item in self.policy.drain():
            self._drop(item.index, item.arrival_s, expired=True)

        if self._revoked:
            result.schedule = [
                entry
                for position, entry in enumerate(result.schedule)
                if position not in self._revoked
            ]
        if self.failover is not None:
            self.failover.report.frames_abandoned = len(result.lost)
            self.failover.report.frames_recovered = sum(
                1
                for index in self._lost_once
                if not result.placements[index][1].dropped
            )

        # Rebuild the event list in (arrival, index) order — bit-identical
        # to the old single-loop append order on the greedy path, and a
        # stable convention for queueing policies.
        result.stream.events = [
            result.placements[index][1] for index in order
        ]
        return result

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now_s: float, index: int) -> None:
        clock = time.perf_counter
        started = clock()
        if self.monitor is not None:
            self.monitor.advance(now_s)
        request = self._requests[index]
        model_key = request.model_key
        slo = self.admission.slo_for(model_key)
        tenant = getattr(request, "tenant", None) or model_key
        item = QueuedFrame(
            index=index,
            model_key=model_key,
            tenant=tenant,
            arrival_s=now_s,
            slo=slo,
            deadline_s=slo.absolute_deadline_s(now_s),
        )
        if self.failover is not None:
            self.failover.record_offered(slo.name)
        brownout = (
            self.failover.brownout if self.failover is not None else None
        )
        if brownout is not None:
            wait = self._wait_estimate(now_s, slo)
            unavailable = (
                self.monitor.unavailable_fraction(now_s)
                if self.monitor is not None
                else 0.0
            )
            brownout.observe(now_s, wait, unavailable)
            if not brownout.admits(slo):
                brownout.report.shed_frames += 1
                self._result.wall_clock_s += clock() - started
                self._drop(index, now_s, shed=True)
                return
            limit = brownout.effective_max_queue_s(slo)
            if limit is not None and wait > limit:
                if slo.max_queue_s is None or wait <= slo.max_queue_s:
                    # Only the tightened bound sheds it — bill brownout.
                    brownout.report.shed_frames += 1
                self._result.wall_clock_s += clock() - started
                self._drop(index, now_s, shed=True)
                return
        elif slo.max_queue_s is not None and self.admission.sheds(
            model_key, self._wait_estimate(now_s, slo)
        ):
            self._result.wall_clock_s += clock() - started
            self._drop(index, now_s, shed=True)
            return
        node = self.policy.select_node(self.nodes, now_s, model_key)
        if node is None:
            if not self.policy.queueing or slo.drop_policy == "busy":
                self._result.wall_clock_s += clock() - started
                self._drop(index, now_s)
                return
            self.policy.enqueue(item)
            # Every busy node needs a completion event on the heap, or
            # this frame can strand: a health recalibration extends
            # ``free_at`` *outside* a dispatch (even on an idle node), so
            # the dispatch-time push alone does not cover it.
            for candidate in self.nodes:
                self._push_free_event(candidate)
            self._result.wall_clock_s += clock() - started
            return
        self._dispatch(item, node, now_s, started)

    def _push_free_event(self, node) -> None:
        """Schedule ``node``'s next completion (at most one pending)."""
        if not math.isfinite(node.free_at):
            return  # dead node: it will never complete
        if node.node_id in self._free_event_pending:
            return
        self._free_event_pending.add(node.node_id)
        heapq.heappush(self._heap, (node.free_at, _NODE_FREE, node.node_id))

    def _on_node_free(self, now_s: float, node_id: int) -> None:
        self._free_event_pending.discard(node_id)
        node = self.nodes[node_id]
        if not math.isfinite(node.free_at):
            return  # node died (health) — nothing will ever dispatch here
        if now_s < node.free_at - _EPS:
            # Stale completion: the node's busy window was extended (e.g.
            # a health recalibration) after this event was scheduled.
            self._push_free_event(node)
            return
        item = self._pop_live(now_s)
        if item is None:
            return
        clock = time.perf_counter
        started = clock()
        if self.monitor is not None:
            self.monitor.advance(now_s)
            if now_s < node.free_at - _EPS or not math.isfinite(node.free_at):
                # The monitor just took this node offline; put the frame
                # back and wait for the node's next completion.
                self.policy.requeue(item)
                self._result.wall_clock_s += clock() - started
                self._push_free_event(node)
                return
        self._dispatch(item, node, now_s, started)

    def _pop_live(self, now_s: float) -> QueuedFrame | None:
        """Next queued frame whose deadline can still be met (expired
        frames drop on the way)."""
        while True:
            item = self.policy.pop_next(now_s)
            if item is None:
                return None
            if item.deadline_s < now_s - _EPS:
                self._drop(item.index, item.arrival_s, expired=True)
                continue
            return item

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def _drop(
        self,
        index: int,
        arrival_s: float,
        shed: bool = False,
        expired: bool = False,
        lost: bool = False,
    ) -> None:
        event = StreamEvent(index, arrival_s, arrival_s, arrival_s, True, False)
        self._result.placements[index] = (-1, event, 0)
        if shed:
            self._result.shed.add(index)
        elif expired:
            self._result.expired.add(index)
        elif lost:
            self._result.lost.add(index)

    # ------------------------------------------------------------------
    # Failover: node loss reaping + retry events
    # ------------------------------------------------------------------
    def _on_node_lost(self, node, now_s: float, until_s: float) -> None:
        """Chaos loss callback: reap the node's in-flight frames and, when
        a failover layer is attached, retry them / activate a spare.

        Reaping revokes the dispatch (schedule entry filtered, per-node
        frame count decremented) but keeps its already-spent energy in the
        stream total — the work happened; the waste is itemised in the
        resilience report.
        """
        entries = self._in_flight.get(node.node_id)
        if entries:
            victims = sorted(
                index
                for index, (finish_s, _) in entries.items()
                if finish_s > now_s + _EPS
            )
            for index in victims:
                _, item = entries.pop(index)
                self._revoke_dispatch(node, item, now_s)
        if self.failover is not None:
            spare = self.failover.request_spare(node, now_s)
            if spare is not None:
                # The spare's bring-up completion must be an event, or
                # queued frames strand until the next organic completion.
                self._push_free_event(spare)

    def _revoke_dispatch(self, node, item: QueuedFrame, now_s: float) -> None:
        position, energy_j = self._dispatch_meta.pop(item.index)
        self._revoked.add(position)
        node.frames -= 1
        self._lost_once.add(item.index)
        retry_at = None
        if self.failover is not None:
            self.failover.report.frames_lost_in_flight += 1
            self.failover.report.wasted_energy_j += energy_j
            retry_at = self.failover.retry_after_loss(
                item, now_s, self._service_hint_s
            )
        if retry_at is None:
            self._drop(item.index, item.arrival_s, lost=True)
        else:
            self._schedule_retry(
                retry_at, replace(item, attempt=item.attempt + 1)
            )

    def _schedule_retry(self, retry_at_s: float, item: QueuedFrame) -> None:
        serial = self._retry_serial
        self._retry_serial += 1
        self._retry_items[serial] = item
        heapq.heappush(self._heap, (retry_at_s, _RETRY, serial))

    def _on_retry(self, now_s: float, serial: int) -> None:
        """One retry event: re-dispatch, re-queue, back off, or abandon."""
        item = self._retry_items.pop(serial)
        clock = time.perf_counter
        started = clock()
        if self.monitor is not None:
            self.monitor.advance(now_s)
        if item.deadline_s < now_s - _EPS:
            self._result.wall_clock_s += clock() - started
            self._drop(item.index, item.arrival_s, lost=True)
            return
        node = self.policy.select_node(self.nodes, now_s, item.model_key)
        if node is None:
            if self.policy.queueing and item.slo.drop_policy != "busy":
                self.policy.enqueue(item)
                for candidate in self.nodes:
                    self._push_free_event(candidate)
                self._result.wall_clock_s += clock() - started
                return
            retry_at = (
                self.failover.retry_after_busy(
                    item, now_s, self._service_hint_s
                )
                if self.failover is not None
                else None
            )
            self._result.wall_clock_s += clock() - started
            if retry_at is None:
                self._drop(item.index, item.arrival_s, lost=True)
            else:
                self._schedule_retry(
                    retry_at, replace(item, attempt=item.attempt + 1)
                )
            return
        self._dispatch(item, node, now_s, started)

    def _dispatch(
        self, item: QueuedFrame, node, start_s: float, started_clock: float
    ) -> None:
        clock = time.perf_counter
        entry = self.models[item.model_key]
        if self.failover is not None:
            effective = self.failover.effective_model_key(item.model_key)
            if effective != item.model_key:
                # Brownout reduced-bits tier: dispatch the reduced-
                # precision variant; SLO accounting stays on the
                # requested key, transport/energy on the served one.
                entry = self.models[effective]
                self._result.served[item.index] = effective
                self.failover.brownout.report.reduced_bits_frames += 1
            else:
                self._result.served.pop(item.index, None)
        # Building the pipeline (first sighting of a model on a node) and
        # the timing tables is host work; charge it to wall clock.
        pipeline = node.pipeline_for(entry)
        steady, remap, steady_j, remap_j = entry.timing_for(
            pipeline, np.shape(self._requests[item.index].frame)
        )
        self._result.wall_clock_s += clock() - started_clock

        tag = (
            self.monitor.degradation_tag(node)
            if self.monitor is not None
            else 0
        )
        remapped = node.active_model != entry.key
        timing = remap if remapped else steady
        sequential_s = timing.sequential_s
        pipelined_s = timing.pipelined_s
        if self.monitor is not None:
            # Chaos latency spikes stretch the dispatch service window;
            # outside a spike the factor is exactly 1.0 and the untouched
            # timings keep the no-chaos path bit-identical.
            factor = self.monitor.latency_factor(start_s)
            if factor != 1.0:
                sequential_s *= factor
                pipelined_s *= factor
        finish = start_s + sequential_s
        node.free_at = start_s + pipelined_s
        self._service_hint_s = pipelined_s
        node.active_model = entry.key
        node.frames += 1
        event = StreamEvent(
            item.index, item.arrival_s, start_s, finish, False, remapped
        )
        energy_j = remap_j if remapped else steady_j
        self._result.stream.total_energy_j += energy_j
        self._result.placements[item.index] = (node.node_id, event, tag)
        self._result.schedule.append(
            (item.index, node.node_id, entry.key, tag)
        )
        if self._track_inflight:
            self._in_flight.setdefault(node.node_id, {})[item.index] = (
                finish,
                item,
            )
            self._dispatch_meta[item.index] = (
                len(self._result.schedule) - 1,
                energy_j,
            )
        if self.failover is not None and item.attempt > 0:
            self.failover.report.retries_dispatched += 1
        self.policy.on_dispatched(item)
        if self.monitor is not None:
            self.monitor.record_frame(tag > 0)
        if self.policy.queueing:
            self._push_free_event(node)

    # ------------------------------------------------------------------
    # Backpressure estimate
    # ------------------------------------------------------------------
    def _wait_estimate(self, now_s: float, slo: SloClass) -> float:
        """Rough queue delay a new arrival of ``slo`` would see [s].

        Earliest node availability plus the competing backlog (queued
        frames at equal-or-higher priority) spread across the fleet at the
        last observed service time.  Deterministic and cheap — admission
        sheds on this, it never affects the default pass-through path.
        """
        soonest = min(node.free_at for node in self.nodes)
        wait = max(0.0, soonest - now_s) if math.isfinite(soonest) else math.inf
        ahead = self.policy.queue_depth(min_priority=slo.priority)
        if ahead and self._service_hint_s > 0.0:
            wait += ahead * self._service_hint_s / max(len(self.nodes), 1)
        return wait


__all__ = [
    "POLICIES",
    "EarliestDeadlinePolicy",
    "FrameScheduler",
    "GreedyFifoPolicy",
    "QueuedFrame",
    "SchedulingPolicy",
    "SchedulingResult",
    "SloAwarePolicy",
    "scheduling_policy",
]
