"""Warm-path vectorization contracts: batched-vs-reference bit-identity,
zero-delivered SLO accounting, deterministic stream merging, and strict
bench JSON.

The serving engine's ``compute_mode="batched"`` path (fleet-wide frame
staging + whole-run :meth:`~repro.core.pipeline.HardwareFirstLayerPipeline.
forward_batched`) must reproduce the retained per-chunk reference loop
byte-for-byte — same floats, same per-die read-noise RNG consumption,
same cache hit/miss counters.  These tests pin that claim over the
scenario zoo and per-stem at every weight bit width, plus the NaN and
tie-break bug fixes that rode along in the same change.
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.perf import (
    sanitize_bench_payload,
    would_clobber_full_bench,
    write_bench,
)
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.engine import FrameRequest, FrameServer
from repro.engine.admission import SloClass
from repro.engine.workloads import (
    ModelSpec,
    _interleave,
    build_scenario,
    scenario_registry,
)
from repro.sim.stream import StreamEvent, StreamReport


def _reject_constant(name):
    raise AssertionError(f"non-JSON constant {name!r} leaked into payload")


# ----------------------------------------------------------------------
# Batched vs reference bit-identity
# ----------------------------------------------------------------------
def _serve_scenario(mode: str, key: str, policy: str = "greedy"):
    server = FrameServer(
        num_nodes=2, micro_batch=8, seed=0, policy=policy, compute_mode=mode
    )
    scenario = build_scenario(key, frames=48, offered_fps=1500.0, seed=0)
    return server.serve_scenario(scenario)


def _assert_reports_identical(batched, reference):
    assert len(batched.responses) == len(reference.responses)
    for ours, theirs in zip(batched.responses, reference.responses):
        assert ours.node_id == theirs.node_id
        assert ours.event == theirs.event
        assert (ours.output is None) == (theirs.output is None)
        if ours.output is not None:
            assert np.array_equal(ours.output, theirs.output)
    assert batched.cache_hits == reference.cache_hits
    assert batched.cache_misses == reference.cache_misses
    assert batched.node_frames == reference.node_frames


@pytest.mark.parametrize("key", scenario_registry())
def test_batched_serving_bit_identical_over_scenario_zoo(key):
    """Every registered scenario serves identically in both modes."""
    _assert_reports_identical(
        _serve_scenario("batched", key), _serve_scenario("reference", key)
    )


def test_batched_serving_bit_identical_under_slo_policy():
    """Bit-identity holds under the queueing policy too (the schedule is
    mode-independent; only the compute path differs)."""
    _assert_reports_identical(
        _serve_scenario("batched", "mixed-tenants", policy="slo"),
        _serve_scenario("reference", "mixed-tenants", policy="slo"),
    )


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
@pytest.mark.parametrize("family", ["vgg16", "mlp", "lenet"])
def test_forward_batched_matches_forward_per_stem(family, bits):
    """Pipeline-level equality at every bit width, conv and dense stems.

    Two same-seed cores (so both paths consume identical read-noise
    streams) run the same frames through ``forward`` and
    ``forward_batched`` at a batch size that forces chunking.
    """
    spec = ModelSpec(family, bits)
    frames = np.random.default_rng(3).uniform(0.0, 1.0, (20,) + spec.frame_shape)
    logits = {}
    for path in ("forward", "forward_batched"):
        pipeline = HardwareFirstLayerPipeline(
            spec.build(seed=7), OpticalProcessingCore(seed=5)
        )
        logits[path] = getattr(pipeline, path)(frames, batch_size=8)
    assert np.array_equal(logits["forward"], logits["forward_batched"])


def test_forward_batched_accepts_preencoded_ternary():
    """The serving engine's staging path: passing the ternary encode
    directly must equal encoding inside the call."""
    spec = ModelSpec("lenet", 4)
    frames = np.random.default_rng(4).uniform(0.0, 1.0, (12,) + spec.frame_shape)
    model = spec.build(seed=2)
    via_x = HardwareFirstLayerPipeline(model, OpticalProcessingCore(seed=9))
    via_ternary = HardwareFirstLayerPipeline(model, OpticalProcessingCore(seed=9))
    ternary = model.layers[0].forward(frames)
    assert np.array_equal(
        via_x.forward_batched(frames, batch_size=4),
        via_ternary.forward_batched(None, batch_size=4, ternary=ternary),
    )


def test_compute_mode_is_validated():
    with pytest.raises(ValueError, match="compute_mode"):
        FrameServer(compute_mode="vectorised")


# ----------------------------------------------------------------------
# Zero-delivered-frames edge
# ----------------------------------------------------------------------
def _starved_report(policy: str):
    """Serve a stream whose "starved" class delivers zero frames.

    One model-a frame occupies the single node; the model-b frames arrive
    during its service window with a microsecond deadline — greedy
    busy-drops them, the queueing policies expire them, and either way
    the class delivers nothing.
    """
    from repro.nn.models import build_lenet

    server = FrameServer(
        num_nodes=1,
        micro_batch=8,
        seed=0,
        policy=policy,
        slo_classes={
            "model-a": SloClass(name="served", deadline_s=1.0),
            "model-b": SloClass(
                name="starved", deadline_s=1e-6, drop_policy="deadline"
            ),
        },
    )
    server.register_model("model-a", build_lenet(seed=0))
    server.register_model("model-b", build_lenet(seed=1))
    frame = np.random.default_rng(1).uniform(0.0, 1.0, (1, 28, 28))
    requests = [FrameRequest(frame, "model-a", arrival_s=0.0)] + [
        FrameRequest(frame, "model-b", arrival_s=1e-5 * (i + 1))
        for i in range(4)
    ]
    return server.serve(requests, offered_fps=1000.0)


@pytest.mark.parametrize("policy", ["greedy", "edf", "slo"])
def test_zero_delivered_class_percentiles_and_hit_rates(policy):
    report = _starved_report(policy)
    stats = report.slo.classes["starved"]
    assert stats.offered == 4
    assert stats.delivered == 0
    assert stats.hit_rate == 0.0
    assert stats.delivered_rate == 0.0
    assert math.isnan(stats.p50_latency_s)
    assert math.isnan(stats.p99_latency_s)


@pytest.mark.parametrize("policy", ["greedy", "edf", "slo"])
def test_zero_delivered_class_bench_payload_round_trips(tmp_path, policy):
    """A bench payload built from a starved class must serialize the NaN
    percentiles as ``null`` and survive a strict ``json.loads``."""
    stats = _starved_report(policy).slo.classes["starved"]
    path = str(tmp_path / "BENCH_starved.json")
    write_bench(
        path,
        {
            "quick": False,
            "policy": policy,
            "starved": {
                "hit_rate": stats.hit_rate,
                "p50_latency_s": stats.p50_latency_s,
                "p99_latency_s": stats.p99_latency_s,
            },
        },
    )
    with open(path) as handle:
        loaded = json.load(handle, parse_constant=_reject_constant)
    assert loaded["starved"]["p50_latency_s"] is None
    assert loaded["starved"]["p99_latency_s"] is None
    assert loaded["starved"]["hit_rate"] == 0.0


def test_all_dropped_stream_report_statistics():
    """A stream that delivered nothing reports NaN latencies (rendered as
    ``n/a``), zero hit rate, and zero sustained FPS — never a crash."""
    report = StreamReport(
        events=[
            StreamEvent(
                index=i,
                arrival_s=i * 1e-3,
                start_s=0.0,
                finish_s=0.0,
                dropped=True,
                remapped=False,
            )
            for i in range(3)
        ]
    )
    assert math.isnan(report.mean_latency_s)
    assert math.isnan(report.latency_percentile(0.99))
    assert report.deadline_hit_rate(0.01) == 0.0
    assert report.drop_rate == 1.0

    from repro.cli import _na_if_nan

    assert _na_if_nan(report.mean_latency_s * 1e3, ".3f") == "n/a"
    assert _na_if_nan(1.5, ".3f") == "1.500"


def test_nan_p99_never_reads_as_sustainable():
    """The capacity probe's explicit NaN guard: a zero-delivered probe is
    not sustainable even though ``NaN <= deadline`` is falsy by accident
    (and ``NaN > deadline`` would be too)."""
    p99 = float("nan")
    assert not (not math.isnan(p99) and 1.0 >= 0.99 and p99 <= 0.006 + 1e-12)


# ----------------------------------------------------------------------
# Deterministic stream merging
# ----------------------------------------------------------------------
def test_interleave_breaks_arrival_ties_by_tenant_then_index():
    frame = np.zeros((1, 2, 2))
    beta = [
        FrameRequest(frame, "m-b", arrival_s=0.5, tenant="beta"),
        FrameRequest(frame, "m-b", arrival_s=0.5, tenant="beta"),
    ]
    alpha = [
        FrameRequest(frame, "m-a", arrival_s=0.5, tenant="alpha"),
        FrameRequest(frame, "m-a", arrival_s=0.0, tenant="alpha"),
    ]
    # Stream order presents beta first; the explicit key must still put
    # alpha's equal-arrival requests ahead, each stream in index order.
    merged = _interleave([beta, alpha])
    assert [(r.tenant, r.arrival_s) for r in merged] == [
        ("alpha", 0.0),
        ("alpha", 0.5),
        ("beta", 0.5),
        ("beta", 0.5),
    ]
    assert merged[2] is beta[0] and merged[3] is beta[1]


def test_interleave_falls_back_to_model_key_for_anonymous_tenants():
    frame = np.zeros((1, 2, 2))
    named = [FrameRequest(frame, "m-z", arrival_s=1.0, tenant="aardvark")]
    anonymous = [FrameRequest(frame, "m-a", arrival_s=1.0)]
    merged = _interleave([named, anonymous])
    assert [r.model_key for r in merged] == ["m-z", "m-a"]


# ----------------------------------------------------------------------
# Strict bench JSON
# ----------------------------------------------------------------------
def test_write_bench_serializes_non_finite_floats_as_null(tmp_path):
    path = str(tmp_path / "BENCH_nan.json")
    write_bench(
        path,
        {
            "quick": False,
            "p99": float("nan"),
            "bound": float("inf"),
            "nested": [{"p50": float("-inf")}, 1.0],
        },
    )
    text = open(path).read()
    assert "NaN" not in text and "Infinity" not in text
    loaded = json.loads(text, parse_constant=_reject_constant)
    assert loaded["p99"] is None
    assert loaded["bound"] is None
    assert loaded["nested"][0]["p50"] is None
    assert loaded["nested"][1] == 1.0


def test_sanitize_bench_payload_preserves_finite_values():
    payload = {"a": 1.5, "b": [0, "x", None], "c": {"d": True}}
    assert sanitize_bench_payload(payload) == payload


def test_would_clobber_tolerates_legacy_nan_payload(tmp_path, capsys):
    """A pre-fix full-mode entry containing literal ``NaN`` still blocks a
    quick smoke run from clobbering it — flagged, not crashed."""
    path = str(tmp_path / "BENCH_legacy.json")
    with open(path, "w") as handle:
        handle.write('{"quick": false, "p99_latency_s": NaN}\n')
    assert would_clobber_full_bench(path, {"quick": True}) is True
    assert "legacy payload" in capsys.readouterr().out
    # And an honest quick-over-quick overwrite still goes through.
    assert would_clobber_full_bench(path, {"quick": False}) is False
