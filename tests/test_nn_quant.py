"""Tests for repro.nn.quant — quantizers and STE."""

import numpy as np
import pytest

from repro.nn.quant import (
    QuantConv2D,
    TernaryActivation,
    UniformWeightQuantizer,
    ternarize,
)


def test_level_counts():
    assert UniformWeightQuantizer(1).num_positive_levels == 1
    assert UniformWeightQuantizer(2).num_positive_levels == 3
    assert UniformWeightQuantizer(3).num_positive_levels == 7
    assert UniformWeightQuantizer(4).num_positive_levels == 15


def test_binary_quantizer_signs():
    quantizer = UniformWeightQuantizer(1)
    weights = np.array([-0.5, -0.01, 0.0, 0.3])
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    np.testing.assert_allclose(np.abs(quantized), scale)
    np.testing.assert_array_equal(np.sign(quantized), [-1, -1, 1, 1])


def test_quantize_preserves_extremes():
    quantizer = UniformWeightQuantizer(4)
    weights = np.array([-1.0, 0.0, 1.0])
    quantized = quantizer.quantize(weights)
    np.testing.assert_allclose(quantized, weights, atol=1e-12)


def test_quantization_error_bounded_by_half_lsb():
    rng = np.random.default_rng(0)
    weights = rng.normal(size=1000)
    for bits in (2, 3, 4):
        quantizer = UniformWeightQuantizer(bits)
        quantized = quantizer.quantize(weights)
        lsb = quantizer.scale(weights)
        assert np.max(np.abs(quantized - weights)) <= lsb / 2 + 1e-12


def test_error_shrinks_with_bits():
    rng = np.random.default_rng(1)
    weights = rng.normal(size=5000)
    errors = {
        bits: np.abs(UniformWeightQuantizer(bits).quantize(weights) - weights).mean()
        for bits in (2, 3, 4)
    }
    assert errors[4] < errors[3] < errors[2]


def test_quantize_int_codes_in_range():
    rng = np.random.default_rng(2)
    weights = rng.normal(size=500)
    for bits in (1, 2, 3, 4):
        quantizer = UniformWeightQuantizer(bits)
        codes, scale = quantizer.quantize_int(weights)
        assert np.abs(codes).max() <= quantizer.num_positive_levels
        np.testing.assert_allclose(codes * scale, quantizer.quantize(weights))


def test_zero_weights_quantize_to_zero():
    quantizer = UniformWeightQuantizer(3)
    np.testing.assert_array_equal(quantizer.quantize(np.zeros(4)), np.zeros(4))


def test_ste_mask_all_ones_within_range():
    quantizer = UniformWeightQuantizer(4)
    weights = np.array([-1.0, 0.5, 1.0])
    np.testing.assert_array_equal(quantizer.ste_grad_mask(weights), 1.0)


def test_ternarize_levels():
    x = np.array([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
    np.testing.assert_array_equal(ternarize(x), [0, 0, 1, 1, 2, 2])


def test_ternarize_custom_thresholds():
    x = np.array([0.1, 0.3, 0.9])
    np.testing.assert_array_equal(ternarize(x, 0.2, 0.5), [0, 1, 2])
    with pytest.raises(ValueError):
        ternarize(x, 0.5, 0.2)


def test_ternary_activation_forward_levels():
    act = TernaryActivation()
    x = np.array([0.1, 0.5, 0.9])
    np.testing.assert_allclose(act.forward(x), [0.0, 0.5, 1.0])


def test_ternary_activation_ste_backward():
    act = TernaryActivation()
    x = np.array([-0.5, 0.5, 1.5])
    act.forward(x)
    grad = act.backward(np.ones(3))
    np.testing.assert_array_equal(grad, [0.0, 1.0, 0.0])


def test_quant_conv_forward_uses_quantized_weights():
    conv = QuantConv2D(1, 1, 3, bits=2, padding=1, seed=0)
    x = np.ones((1, 1, 4, 4))
    out_quant = conv.forward(x)
    effective = conv.effective_weight()
    levels = np.unique(np.round(effective / conv.quantizer.scale(conv.weight.data)))
    assert np.all(np.abs(levels) <= 3)
    assert out_quant.shape == (1, 1, 4, 4)


def test_quant_conv_weight_transform_hook():
    conv = QuantConv2D(1, 2, 3, bits=3, seed=1, weight_transform=lambda w: w * 0.5)
    base = conv.quantizer.quantize(conv.weight.data)
    np.testing.assert_allclose(conv.effective_weight(), base * 0.5)


def test_quant_conv_ste_gradient_flow():
    conv = QuantConv2D(1, 1, 3, bits=2, padding=1, seed=2)
    x = np.random.default_rng(3).normal(size=(2, 1, 4, 4))
    out = conv.forward(x)
    conv.zero_grad()
    conv.backward(np.ones_like(out))
    assert np.abs(conv.weight.grad).sum() > 0.0  # gradients pass through


def test_bits_bounds():
    with pytest.raises(ValueError):
        UniformWeightQuantizer(0)
    with pytest.raises(ValueError):
        UniformWeightQuantizer(9)
