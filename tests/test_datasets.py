"""Tests for repro.datasets — synthetic dataset substrate."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_PRESETS,
    SyntheticSpec,
    cifar100_like,
    generate_dataset,
    load_preset,
    mnist_like,
)
from repro.datasets.synthetic import make_class_templates


def _small_spec(**overrides):
    defaults = dict(
        name="test",
        num_classes=4,
        image_size=12,
        channels=1,
        train_size=64,
        test_size=32,
        seed=0,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


def test_shapes_and_range():
    spec = _small_spec()
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    assert x_train.shape == (64, 1, 12, 12)
    assert x_test.shape == (32, 1, 12, 12)
    assert y_train.shape == (64,)
    assert x_train.min() >= 0.0 and x_train.max() <= 1.0
    assert set(np.unique(y_train)) <= set(range(4))


def test_deterministic_generation():
    a = generate_dataset(_small_spec())
    b = generate_dataset(_small_spec())
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left, right)


def test_different_seed_different_data():
    a = generate_dataset(_small_spec(seed=0))[0]
    b = generate_dataset(_small_spec(seed=1))[0]
    assert not np.allclose(a, b)


def test_train_test_disjoint_streams():
    x_train, _, x_test, _ = generate_dataset(_small_spec())
    assert not np.allclose(x_train[:32], x_test)


def test_templates_per_class():
    spec = _small_spec()
    templates = make_class_templates(spec)
    assert templates.shape == (4, 1, 12, 12)
    # Templates are distinct between classes.
    assert not np.allclose(templates[0], templates[1])


def test_superclass_structure_squeezes_margins():
    flat = _small_spec(num_classes=8, name="flat")
    coarse = _small_spec(
        num_classes=8, name="coarse", num_superclasses=2, superclass_spread=0.3
    )
    t_flat = make_class_templates(flat)
    t_coarse = make_class_templates(coarse)

    def mean_pairwise_distance(templates):
        distances = []
        for i in range(len(templates)):
            for j in range(i + 1, len(templates)):
                distances.append(np.linalg.norm(templates[i] - templates[j]))
        return np.mean(distances)

    assert mean_pairwise_distance(t_coarse) < mean_pairwise_distance(t_flat)


def test_classes_learnable_by_nearest_template():
    # Sanity: the generated classes must be separable in principle.
    spec = _small_spec(train_size=200, noise_sigma=0.05, clutter=0.0, jitter_px=0)
    templates = make_class_templates(spec)
    x, y, _, _ = generate_dataset(spec)
    centered = x - x.mean(axis=(1, 2, 3), keepdims=True)
    flat_templates = templates.reshape(4, -1)
    flat_x = centered.reshape(len(x), -1)
    scores = flat_x @ flat_templates.T
    predictions = scores.argmax(axis=1)
    assert (predictions == y).mean() > 0.9


def test_presets_exist_and_match_paper_shapes():
    assert set(DATASET_PRESETS) == {"mnist", "svhn", "cifar10", "cifar100"}
    mnist = mnist_like(scale=0.1, seed=0)
    assert mnist.input_shape == (1, 28, 28)
    assert mnist.num_classes == 10
    assert mnist.paper_model == "LeNet"
    cifar100 = cifar100_like(scale=0.05, seed=0)
    assert cifar100.input_shape == (3, 32, 32)
    assert cifar100.num_classes == 100
    assert cifar100.paper_model == "VGG16"


def test_load_preset_lookup():
    dataset = load_preset("SVHN", scale=0.1)
    assert dataset.paper_model == "ResNet18"
    with pytest.raises(KeyError):
        load_preset("imagenet")


def test_spec_validation():
    with pytest.raises(ValueError):
        _small_spec(num_superclasses=10)  # more supers than classes
    with pytest.raises(ValueError):
        _small_spec(clutter=2.0)
