"""Tests for repro.sim.faults — fault injection on the optical core."""

import numpy as np
import pytest

from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.nn.quant import UniformWeightQuantizer
from repro.sim.faults import FaultSpec, FaultyOpticalCore


def _programmed_core(spec: FaultSpec, seed=0, fault_seed=1):
    opc = OpticalProcessingCore(OISAConfig(), seed=seed, enable_read_noise=False)
    faulty = FaultyOpticalCore(opc, spec, seed=fault_seed)
    rng = np.random.default_rng(2)
    weights = rng.normal(size=(8, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    faulty.program(quantizer.quantize(weights), quantizer.scale(weights))
    return faulty


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(dead_mr_rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(bpd_gain_sigma=-0.1)
    assert not FaultSpec().any_faults
    assert FaultSpec(dead_mr_rate=0.1).any_faults


def test_no_faults_matches_healthy_core():
    healthy = OpticalProcessingCore(OISAConfig(), seed=0, enable_read_noise=False)
    rng = np.random.default_rng(2)
    weights = rng.normal(size=(8, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    healthy.program(quantized, scale)
    x = rng.choice([0.0, 0.5, 1.0], size=(2, 3, 10, 10))
    expected = healthy.convolve(x, padding=1)

    faulty = _programmed_core(FaultSpec())
    out = faulty.convolve(x, padding=1)
    np.testing.assert_allclose(out, expected)


def test_dead_mrs_zero_weights():
    faulty = _programmed_core(FaultSpec(dead_mr_rate=0.3))
    mask = faulty._weight_mask
    dead_fraction = float((mask == 0).mean())
    assert 0.15 < dead_fraction < 0.45  # ~rate, binomial spread


def test_dead_vcsel_kills_channel_contribution():
    faulty = _programmed_core(FaultSpec(dead_vcsel_rate=1.0))
    x = np.random.default_rng(3).choice([0.5, 1.0], size=(1, 3, 8, 8))
    out = faulty.convolve(x, padding=1)
    np.testing.assert_allclose(out, 0.0)  # every input channel dark


def test_bpd_gain_drift_scales_outputs():
    spec = FaultSpec(bpd_gain_sigma=0.2)
    faulty = _programmed_core(spec)
    x = np.random.default_rng(4).choice([0.0, 0.5, 1.0], size=(1, 3, 8, 8))
    out_faulty = faulty.convolve(x, padding=1)
    healthy = _programmed_core(FaultSpec())
    out_healthy = healthy.convolve(x, padding=1)
    ratio = out_faulty / np.where(out_healthy == 0, 1.0, out_healthy)
    # Per-output-channel constant gain ratios, not identical to 1.
    assert not np.allclose(out_faulty, out_healthy)
    per_channel = ratio[0].reshape(8, -1)
    spread = np.nanstd(per_channel, axis=1)
    assert np.all(spread < 1e-6)  # constant within a channel


def test_fault_pattern_frozen_per_seed():
    a = _programmed_core(FaultSpec(dead_mr_rate=0.2), fault_seed=5)
    b = _programmed_core(FaultSpec(dead_mr_rate=0.2), fault_seed=5)
    np.testing.assert_array_equal(a._weight_mask, b._weight_mask)
    c = _programmed_core(FaultSpec(dead_mr_rate=0.2), fault_seed=6)
    assert not np.array_equal(a._weight_mask, c._weight_mask)


def test_convolve_requires_program():
    opc = OpticalProcessingCore(OISAConfig(), seed=0)
    faulty = FaultyOpticalCore(opc, FaultSpec(), seed=0)
    with pytest.raises(RuntimeError):
        faulty.convolve(np.zeros((1, 3, 8, 8)))


def test_accuracy_degrades_gracefully_with_fault_rate():
    # More dead MRs -> monotonically (on average) worse accuracy.
    from repro.core.pipeline import HardwareFirstLayerPipeline
    from repro.datasets.synthetic import SyntheticSpec, generate_dataset
    from repro.datasets.catalog import Dataset
    from repro.nn.models import FirstLayerConfig, build_lenet
    from repro.nn.optim import SGD, CosineLR
    from repro.nn.train import Trainer

    spec = SyntheticSpec(
        name="faults", num_classes=4, image_size=12, channels=1,
        train_size=160, test_size=80, noise_sigma=0.04, jitter_px=1,
        clutter=0.05, seed=3,
    )
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    dataset = Dataset("faults", x_train, y_train, x_test, y_test, 4, 12, 1, "LeNet")
    model = build_lenet(
        num_classes=4, input_size=12,
        first_layer=FirstLayerConfig(weight_bits=3), seed=0,
    )
    trainer = Trainer(
        model, SGD(model.parameters(), momentum=0.9), CosineLR(0.05, 1e-4), seed=0
    )
    trainer.fit(x_train, y_train, epochs=3, batch_size=32)

    accuracies = []
    for rate in (0.0, 0.5):
        opc = OpticalProcessingCore(
            OISAConfig().with_weight_bits(3), seed=7
        )
        faulty = FaultyOpticalCore(opc, FaultSpec(dead_mr_rate=rate), seed=9)
        pipeline = HardwareFirstLayerPipeline(model, faulty)
        accuracies.append(pipeline.evaluate(x_test, y_test))
    assert accuracies[0] > accuracies[1]  # losing half the MRs hurts
