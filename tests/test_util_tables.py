"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_table


def test_basic_alignment():
    text = format_table(("a", "bb"), [(1, 2), (33, 4)])
    lines = text.splitlines()
    assert len(lines) == 4
    header, rule, row1, row2 = lines
    assert len(header) == len(rule) == len(row1) == len(row2)
    assert "a" in header and "bb" in header


def test_title_included():
    text = format_table(("x",), [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_float_formatting():
    text = format_table(("v",), [(0.000123456,), (12345.678,), (1.5,), (0.0,)])
    assert "0.000123" in text
    assert "1.23e+04" in text or "12345" in text.replace(" ", "")
    assert "1.5" in text


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [(1,)])
