"""Tests for repro.analysis.sweeps — DSE and Pareto extraction."""

import pytest

from repro.analysis.sweeps import (
    DesignPoint,
    evaluate_design,
    pareto_front,
    sweep_design_space,
)


def test_evaluate_design_metrics_present():
    point = evaluate_design(80, 4)
    for name in (
        "throughput_tops",
        "efficiency_tops_per_watt",
        "area_mm2",
        "weight_rms_error",
        "peak_power_w",
    ):
        assert point.metric(name) > 0.0


def test_paper_point_values():
    point = evaluate_design(80, 4)
    assert point.metric("throughput_tops") == pytest.approx(7.17, rel=0.02)
    assert point.metric("area_mm2") == pytest.approx(1.92, rel=0.03)


def test_throughput_scales_with_banks():
    small = evaluate_design(20, 4)
    large = evaluate_design(160, 4)
    assert large.metric("throughput_tops") == pytest.approx(
        8 * small.metric("throughput_tops"), rel=1e-6
    )


def test_weight_error_falls_with_bits():
    coarse = evaluate_design(80, 1)
    fine = evaluate_design(80, 4)
    assert fine.metric("weight_rms_error") < coarse.metric("weight_rms_error")


def test_sweep_covers_cross_product():
    points = sweep_design_space(bank_options=(20, 40), bit_options=(2, 4))
    assert len(points) == 4
    combos = {(p.num_banks, p.weight_bits) for p in points}
    assert combos == {(20, 2), (20, 4), (40, 2), (40, 4)}


def test_pareto_front_nonempty_subset():
    points = sweep_design_space(bank_options=(20, 80), bit_options=(1, 4))
    front = pareto_front(points)
    assert 0 < len(front) <= len(points)
    assert all(point in points for point in front)


def test_pareto_dominated_point_excluded():
    # Construct synthetic points where domination is unambiguous.
    good = DesignPoint(80, 4, {"a": 2.0, "b": 1.0})
    bad = DesignPoint(20, 1, {"a": 1.0, "b": 2.0})
    front = pareto_front([good, bad], maximize=("a",), minimize=("b",))
    assert front == [good]


def test_pareto_empty_input():
    assert pareto_front([]) == []
