"""Tests for repro.circuits.vam — the Fig. 8 behaviour."""

import numpy as np
import pytest

from repro.circuits.vam import VamCircuit, VamDesign


@pytest.fixture
def vam():
    return VamCircuit()


def test_ternary_symbol_regions(vam):
    assert vam.ternary_symbol(0.05) == 0
    assert vam.ternary_symbol(0.25) == 1
    assert vam.ternary_symbol(0.5) == 2


def test_encode_frame_matches_scalar(vam):
    voltages = np.array([[0.05, 0.25], [0.5, 0.161]])
    symbols = vam.encode_frame(voltages)
    expected = np.array([[0, 1], [2, 1]], dtype=np.int8)
    np.testing.assert_array_equal(symbols, expected)


def test_optical_power_three_levels(vam):
    voltages = np.array([0.05, 0.25, 0.5])
    powers = vam.optical_power_w(voltages)
    assert powers[0] < powers[1] < powers[2]


def test_fig8_reproduction(vam):
    # Paper Fig. 8: Out1 above both thresholds, Out2 between, Out3 below.
    result = vam.threshold_transient()
    symbols = vam.classify_transient(result)
    assert symbols == [2, 1, 0]


def test_fig8_trace_inventory(vam):
    result = vam.threshold_transient()
    for name in ("Rst", "Dcharge", "Clk", "Out1", "Out1t1", "Out1t2", "I1"):
        assert name in result


def test_fig8_out2_between_references(vam):
    result = vam.threshold_transient()
    v = result.sample("Out2", 16.5e-9)
    assert vam.design.vref_low_v < v < vam.design.vref_high_v


def test_vcsel_current_never_below_bias(vam):
    # NRZ: the driver keeps the laser biased on at all times.
    result = vam.threshold_transient()
    for index in (1, 2, 3):
        current = result[f"I{index}"]
        assert np.all(current >= vam.encoder.bias_current_a * 0.999)


def test_symbol_energy_positive_and_scaling(vam):
    e1 = vam.symbol_energy_j(1e-9)
    e2 = vam.symbol_energy_j(2e-9)
    assert 0.0 < e1 < e2


def test_design_validation():
    with pytest.raises(ValueError):
        VamDesign(vref_low_v=0.4, vref_high_v=0.3)


def test_empty_illuminances_rejected(vam):
    with pytest.raises(ValueError):
        vam.threshold_transient(illuminances_lux=())
