"""Tests for repro.core.snr_budget — the effective-resolution chain."""

import pytest

from repro.core.snr_budget import SnrBudget


@pytest.fixture
def budget():
    return SnrBudget()


def test_detector_power_below_emitted(budget):
    report = budget.report()
    assert 0.0 < report.detector_power_w < report.laser_power_w
    assert report.path_loss_db > 0.0


def test_paper_claim_chain_supports_4_bits(budget):
    # Section III: the devices are tuned for 4-bit effective resolution.
    report = budget.report()
    assert report.supports_weight_bits(4)
    assert budget.max_weight_bits() >= 4


def test_snr_improves_with_brighter_symbols(budget):
    dim = budget.report(symbol=1)
    bright = budget.report(symbol=2)
    assert bright.snr_linear > dim.snr_linear
    assert bright.effective_bits >= dim.effective_bits


def test_more_rings_more_loss_less_snr():
    short_arm = SnrBudget(num_rings=2)
    long_arm = SnrBudget(num_rings=10)
    assert long_arm.report().path_loss_db > short_arm.report().path_loss_db
    assert long_arm.report().snr_linear < short_arm.report().snr_linear


def test_required_power_monotone_in_bits(budget):
    p3 = budget.required_laser_power_for_bits(3)
    p5 = budget.required_laser_power_for_bits(5)
    assert p5 > p3


def test_required_power_consistent_with_enob(budget):
    power = budget.required_laser_power_for_bits(4)
    transmission = budget.arm_loss.transmission(budget.num_rings)
    assert budget.bpd.effective_bits(power * transmission) == pytest.approx(
        4.0, abs=0.05
    )


def test_validation(budget):
    with pytest.raises(ValueError):
        budget.report().supports_weight_bits(0)
    with pytest.raises(ValueError):
        budget.required_laser_power_for_bits(0)
    with pytest.raises(ValueError):
        SnrBudget(num_rings=0)
