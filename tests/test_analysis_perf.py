"""Tests for the guarded perf-trajectory writer (repro.analysis.perf)."""

import json

import pytest

from repro.analysis.perf import would_clobber_full_bench, write_bench


def _read(path):
    with open(path) as handle:
        return json.load(handle)


@pytest.fixture
def bench_path(tmp_path):
    return str(tmp_path / "BENCH_test.json")


def test_full_mode_entry_survives_quick_overwrite(bench_path, capsys):
    """The footgun: CI smoke must not clobber the perf trajectory."""
    full = {"bench": "t", "quick": False, "speedup": 50.0}
    write_bench(bench_path, full)
    write_bench(bench_path, {"bench": "t", "quick": True, "speedup": 3.0})
    assert _read(bench_path) == full
    assert "refusing" in capsys.readouterr().out


def test_quick_then_quick_overwrites(bench_path):
    write_bench(bench_path, {"bench": "t", "quick": True, "run": 1})
    write_bench(bench_path, {"bench": "t", "quick": True, "run": 2})
    assert _read(bench_path)["run"] == 2


def test_full_mode_always_writes(bench_path):
    write_bench(bench_path, {"bench": "t", "quick": True, "run": 1})
    write_bench(bench_path, {"bench": "t", "quick": False, "run": 2})
    assert _read(bench_path)["run"] == 2
    write_bench(bench_path, {"bench": "t", "quick": False, "run": 3})
    assert _read(bench_path)["run"] == 3


def test_quick_writes_fresh_file(bench_path):
    result = {"bench": "t", "quick": True}
    assert write_bench(bench_path, result) == bench_path
    assert _read(bench_path) == result


def test_corrupt_existing_file_does_not_block(bench_path):
    with open(bench_path, "w") as handle:
        handle.write("not json{")
    quick = {"bench": "t", "quick": True}
    assert not would_clobber_full_bench(bench_path, quick)
    write_bench(bench_path, quick)
    assert _read(bench_path) == quick


def test_missing_quick_flag_counts_as_full(bench_path):
    """Legacy payloads without the flag are protected as full runs."""
    write_bench(bench_path, {"bench": "t"})
    assert would_clobber_full_bench(bench_path, {"bench": "t", "quick": True})
