"""Bit-identity of every fan-out layer under serial/thread/process backends.

The ordered-merge contract of :mod:`repro.util.parallel` promises that a
parallel run is **byte-identical** to the serial one — not statistically
close, identical.  This suite holds each wired fan-out to that promise:

* ``FrameServer.warmup`` — a process-warmed server must serve the pinned
  golden stream (``tests/goldens/serve_default.json``) exactly like a
  serially-warmed one, and exactly like the unwarmed golden on every
  field except the serve-time cache counters (warmup converts the first
  activations from misses to hits — that *is* its job);
* the capacity planner grid (:mod:`repro.analysis.capacity`);
* the registry sweeps (:mod:`repro.analysis.sweeps`,
  :mod:`repro.analysis.robustness_report`);
* the CLI flag mapping, including the ``--workers 1`` serial pin.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os

import pytest

from repro.util import ParallelConfig

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))

# The scheduler-golden helpers (_build_server/_mixed_requests/_serialize)
# define the pinned default stream; reuse them so this file cannot drift
# from the golden's serialization.
_spec = importlib.util.spec_from_file_location(
    "scheduler_golden", os.path.join(TESTS_DIR, "test_engine_scheduler.py")
)
scheduler_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(scheduler_golden)

#: Fields that legitimately change under a warmed server: the serve-time
#: cache counters (warmup turns cold programs into hits), and the stream
#: energy total (a hit pays install/re-trim energy where the unwarmed
#: golden pays the cold mapping chain).  Everything else — placements,
#: event times, outputs, payloads — must match the golden exactly.
WARMUP_SENSITIVE_FIELDS = ("cache_hits", "cache_misses", "total_energy_j")


def _warmed_serve(parallel):
    """The golden mixed stream served after a (possibly parallel) warmup."""
    server = scheduler_golden._build_server(num_nodes=2)
    stats = server.warmup(parallel=parallel)
    report = server.serve(
        scheduler_golden._mixed_requests(), offered_fps=1800.0
    )
    return scheduler_golden._serialize(report), stats, server


# --------------------------------------------------------------------------
# FrameServer.warmup
# --------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["process", "thread"])
def test_parallel_warmup_serves_golden_stream(backend):
    serial, _, serial_server = _warmed_serve(None)
    config = ParallelConfig(backend=backend, workers=2)
    parallel, stats, parallel_server = _warmed_serve(config)

    # Parallel-warmed == serially-warmed, byte for byte (counters included).
    assert parallel == serial
    assert stats["models"] == 2 and stats["nodes"] == 2
    assert (
        parallel_server.cache.stats.bytes_cached
        == serial_server.cache.stats.bytes_cached
    )

    # ... and both match the *unwarmed* golden on everything except the
    # serve-time cache counters (warmup turns those misses into hits).
    with open(scheduler_golden.GOLDEN_PATH) as handle:
        golden = json.load(handle)["mixed_two_nodes_1800fps"]
    for serialized in (serial, parallel):
        trimmed = {
            k: v for k, v in serialized.items() if k not in WARMUP_SENSITIVE_FIELDS
        }
        golden_trimmed = {
            k: v for k, v in golden.items() if k not in WARMUP_SENSITIVE_FIELDS
        }
        assert trimmed == golden_trimmed
        # The warmed server's serve does strictly fewer cold programs.
        assert serialized["cache_misses"] <= golden["cache_misses"]


def test_workers_one_warmup_is_the_serial_path():
    """``--workers 1``: same warmup stats shape as a plain serial warmup."""
    serial, serial_stats, _ = _warmed_serve(None)
    pinned, pinned_stats, _ = _warmed_serve(
        ParallelConfig(backend="process", workers=1)
    )
    assert pinned == serial
    # The serial pin skips the preload pass entirely, so even the warmup
    # cache-counter shape matches the serial run (preload would add hits).
    assert pinned_stats["cache_hits"] == serial_stats["cache_hits"]
    assert pinned_stats["cache_misses"] == serial_stats["cache_misses"]


def test_reused_pool_warmup_serves_golden_stream():
    """The second warmup on a persistent pool is as bit-exact as the first."""
    from repro.util import pool_scope

    serial, _, _ = _warmed_serve(None)
    config = ParallelConfig(backend="process", workers=2)
    with pool_scope():
        first, _, _ = _warmed_serve(config)
        second, _, _ = _warmed_serve(config)  # same spawned workers
    assert first == serial
    assert second == serial


def test_forced_shm_warmup_serves_golden_stream():
    """shm transport forced onto every array: still byte-identical."""
    serial, _, _ = _warmed_serve(None)
    forced, _, _ = _warmed_serve(
        ParallelConfig(backend="process", workers=2, shm_min_bytes=1)
    )
    disabled, _, _ = _warmed_serve(
        ParallelConfig(backend="process", workers=2, shm_min_bytes=None)
    )
    assert forced == serial
    assert disabled == serial


# --------------------------------------------------------------------------
# Program store round trips vs the pinned golden
# --------------------------------------------------------------------------
def _store_warmed_serve(store):
    """The golden mixed stream served after a store-backed serial warmup."""
    from repro.engine import ProgramStore

    server = scheduler_golden._build_server(num_nodes=2)
    server.cache.attach_store(
        store if isinstance(store, ProgramStore) else ProgramStore(store)
    )
    server.warmup()
    report = server.serve(
        scheduler_golden._mixed_requests(), offered_fps=1800.0
    )
    return scheduler_golden._serialize(report), server


def test_store_restored_serve_matches_golden_stream(tmp_path):
    """Cold-run, warm-run and store-less servers serve identical bytes."""
    serial, _, _ = _warmed_serve(None)
    cold, cold_server = _store_warmed_serve(tmp_path / "store")
    warm, warm_server = _store_warmed_serve(tmp_path / "store")
    assert cold == serial
    assert warm == serial  # restored programs serve the exact golden
    assert cold_server.cache.stats.misses > 0
    assert warm_server.cache.stats.misses == 0  # second run programs nothing
    assert (
        warm_server.cache.stats.store_hits == cold_server.cache.stats.misses
    )


def test_store_backed_parallel_warmup_matches_golden_stream(tmp_path):
    """Store write-behind through process workers, then a warm restore."""
    from repro.engine import ProgramStore

    serial, _, _ = _warmed_serve(None)
    config = ParallelConfig(backend="process", workers=2)

    server = scheduler_golden._build_server(num_nodes=2)
    server.cache.attach_store(ProgramStore(tmp_path / "store"))
    server.warmup(parallel=config)
    report = server.serve(
        scheduler_golden._mixed_requests(), offered_fps=1800.0
    )
    assert scheduler_golden._serialize(report) == serial
    # Worker-programmed records were persisted by the main process...
    assert len(server.cache.store) > 0
    # ... so a second (serial) run restores instead of programming.
    warm, warm_server = _store_warmed_serve(tmp_path / "store")
    assert warm == serial
    assert warm_server.cache.stats.misses == 0


# --------------------------------------------------------------------------
# Capacity planner grid
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def capacity_settings():
    from repro.analysis.capacity import CapacitySettings

    return CapacitySettings(
        scenario="diurnal",
        policies=("greedy",),
        node_counts=(1, 2),
        frames=24,
        search_iterations=2,
    )


def test_capacity_grid_backend_equality(capacity_settings):
    from repro.analysis.capacity import build_capacity_report

    serial = build_capacity_report(capacity_settings)
    for backend in ("process", "thread"):
        config = ParallelConfig(backend=backend, workers=2)
        report = build_capacity_report(capacity_settings, parallel=config)
        assert repr(report.points) == repr(serial.points)


# --------------------------------------------------------------------------
# Registry sweeps
# --------------------------------------------------------------------------
def test_platform_sweep_backend_equality():
    from repro.analysis.sweeps import sweep_platforms

    bit_configs = ((4, 2),)
    serial = sweep_platforms(bit_configs=bit_configs)
    for backend in ("process", "thread"):
        config = ParallelConfig(backend=backend, workers=2)
        points = sweep_platforms(bit_configs=bit_configs, parallel=config)
        assert repr(points) == repr(serial)


def test_robustness_report_backend_equality():
    from repro.analysis.robustness_report import (
        RobustnessSettings,
        build_robustness_report,
    )

    settings = RobustnessSettings.fast()
    serial = build_robustness_report(settings)
    parallel = build_robustness_report(
        settings, parallel=ParallelConfig(backend="process", workers=2)
    )
    assert repr(parallel.cells) == repr(serial.cells)


# --------------------------------------------------------------------------
# CLI flag mapping
# --------------------------------------------------------------------------
def _args(backend="serial", workers=None):
    return argparse.Namespace(backend=backend, workers=workers)


def test_cli_defaults_map_to_no_parallelism():
    from repro.cli import _parallel_from_args

    assert _parallel_from_args(_args()) is None


def test_cli_workers_alone_defaults_to_process():
    from repro.cli import _parallel_from_args

    config = _parallel_from_args(_args(workers=4))
    assert config == ParallelConfig(backend="process", workers=4)


def test_cli_workers_one_pins_serial():
    from repro.cli import _parallel_from_args

    config = _parallel_from_args(_args(backend="process", workers=1))
    assert config is not None and config.is_serial


def test_cli_explicit_backend_passthrough():
    from repro.cli import _parallel_from_args

    config = _parallel_from_args(_args(backend="thread", workers=2))
    assert config == ParallelConfig(backend="thread", workers=2)
