"""Tests for repro.core.calibration — AWC code pre-distortion."""

import numpy as np
import pytest

from repro.circuits.awc import AwcDesign
from repro.core.awc import AwcWeightMapper
from repro.core.calibration import CalibratedAwcMapper


@pytest.fixture
def noisy_mapper():
    design = AwcDesign(num_bits=4, mismatch_sigma=0.06, offset_sigma_a=6e-6)
    return AwcWeightMapper(design, num_units=10, seed=0)


def test_calibration_reduces_level_error(noisy_mapper):
    calibrated = CalibratedAwcMapper(noisy_mapper)
    assert calibrated.residual_error_lsb() <= noisy_mapper.mean_level_error_lsb()
    assert calibrated.improvement_ratio() >= 1.0


def test_calibration_no_op_on_ideal_converter():
    design = AwcDesign(mismatch_sigma=0.0, offset_sigma_a=0.0, compression_alpha=0.0)
    mapper = AwcWeightMapper(design, num_units=4, seed=0)
    calibrated = CalibratedAwcMapper(mapper)
    codes = np.arange(-15, 16)
    units = np.zeros_like(codes)
    np.testing.assert_allclose(
        calibrated.realize_codes(codes, units),
        mapper.realize_codes(codes, units),
    )


def test_predistortion_preserves_sign(noisy_mapper):
    calibrated = CalibratedAwcMapper(noisy_mapper)
    codes = np.array([-7, -1, 0, 1, 7])
    units = np.zeros_like(codes)
    realized = calibrated.realize_codes(codes, units)
    assert np.all(np.sign(realized) == np.sign(codes))


def test_zero_code_stays_zero(noisy_mapper):
    calibrated = CalibratedAwcMapper(noisy_mapper)
    realized = calibrated.realize_codes(np.zeros(5, dtype=int))
    np.testing.assert_allclose(realized, 0.0)


def test_calibrated_weights_closer_than_raw(noisy_mapper):
    rng = np.random.default_rng(1)
    weights = rng.normal(size=(8, 3, 3, 3)) * 0.1
    from repro.nn.quant import UniformWeightQuantizer

    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    raw = noisy_mapper.realize_quantized_weights(quantized, scale)
    calibrated = CalibratedAwcMapper(noisy_mapper).realize_quantized_weights(
        quantized, scale
    )
    raw_err = np.sqrt(np.mean((raw - quantized) ** 2))
    cal_err = np.sqrt(np.mean((calibrated - quantized) ** 2))
    assert cal_err <= raw_err


def test_measurement_noise_limits_gain(noisy_mapper):
    perfect = CalibratedAwcMapper(noisy_mapper)
    noisy_bench = CalibratedAwcMapper(
        noisy_mapper, measurement_noise_lsb=1.0, seed=2
    )
    assert noisy_bench.residual_error_lsb() >= perfect.residual_error_lsb()


def test_negative_measurement_noise_rejected(noisy_mapper):
    with pytest.raises(ValueError):
        CalibratedAwcMapper(noisy_mapper, measurement_noise_lsb=-0.1)
