"""Tests for repro.sim.platforms — the platform registry."""

import pytest

from repro.core.energy import resnet18_first_layer_workload
from repro.core.mapping import ConvWorkload, MlpWorkload
from repro.sim import platforms as platforms_module
from repro.sim.platforms import (
    Platform,
    get_platform,
    iter_platforms,
    platform_registry,
    register_platform,
)
from repro.sim.simulator import InHouseSimulator


@pytest.fixture
def workload():
    return ConvWorkload(3, 64, 3, 128, 128, padding=1)


def test_registry_canonical_order():
    assert platform_registry() == ("oisa", "crosslight", "appcip", "asic")


def test_get_platform_unknown_key_rejected():
    with pytest.raises(ValueError):
        get_platform("tpu")


def test_adapter_names_and_capabilities():
    adapters = {p.key: p for p in iter_platforms()}
    assert adapters["oisa"].name == "OISA"
    assert adapters["oisa"].supports_mlp
    assert adapters["oisa"].in_sensor
    assert adapters["appcip"].in_sensor
    assert not adapters["crosslight"].in_sensor
    for adapter in adapters.values():
        assert adapter.supports_conv


def test_parameters_metadata_present():
    for adapter in iter_platforms():
        parameters = adapter.parameters()
        assert parameters["key"] == adapter.key
        assert parameters["name"] == adapter.name
        assert "technology_nm" in parameters


def test_registry_reproduces_simulator_reports_bit_identically(workload):
    """The acceptance loop: iterating the registry == the facade's answers."""
    simulator = InHouseSimulator()
    expected = {r.platform: r for r in simulator.compare_all(workload, weight_bits=4)}
    for adapter in iter_platforms():
        report = adapter.simulate_conv(workload, weight_bits=4, activation_bits=2)
        reference = expected[adapter.name]
        assert report.frame_energy_j == reference.frame_energy_j
        assert report.average_power_w == reference.average_power_w
        assert report.efficiency_tops_per_watt == reference.efficiency_tops_per_watt
        assert report.compute_cycles == reference.compute_cycles
        assert report.breakdown.components == reference.breakdown.components


def test_oisa_table1_row_matches_analysis():
    from repro.analysis.table1 import build_oisa_row

    assert get_platform("oisa").table1_row() == build_oisa_row()


def test_baselines_reject_mlp():
    workload = MlpWorkload(784, 100)
    for key in ("crosslight", "appcip", "asic"):
        with pytest.raises(NotImplementedError):
            get_platform(key).simulate_mlp(workload)


def test_oisa_mlp_through_registry():
    report = get_platform("oisa").simulate_mlp(MlpWorkload(784, 100))
    assert report.compute_cycles == 20
    assert report.frame_energy_j > 0.0
    assert set(report.breakdown.components) == {"compute", "vom"}


def test_registering_new_platform_is_one_file():
    """A decorated subclass shows up in every registry consumer."""

    @register_platform("toy")
    class ToyPlatform(Platform):
        name = "Toy"
        supports_conv = True

        def simulate_conv(self, workload, **kwargs):
            raise RuntimeError("not exercised here")

    try:
        assert "toy" in platform_registry()
        assert isinstance(get_platform("toy"), ToyPlatform)
        assert any(p.key == "toy" for p in iter_platforms())
    finally:
        del platforms_module._REGISTRY["toy"]
    assert "toy" not in platform_registry()


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):

        @register_platform("oisa")
        class Impostor(Platform):
            name = "Impostor"


def test_fig9_consumes_registry(workload):
    """Fig. 9's platform set is whatever the registry holds."""
    from repro.analysis.fig9 import build_fig9

    data = build_fig9()
    expected_names = {p.name for p in iter_platforms()}
    assert set(data.power_w) == expected_names


def test_fig9_skips_conv_incapable_platforms():
    """Registering an MLP-only platform must not break the conv sweep."""
    from repro.analysis.fig9 import build_fig9

    @register_platform("mlponly")
    class MlpOnly(Platform):
        name = "MlpOnly"
        supports_mlp = True

    try:
        data = build_fig9()
        assert "MlpOnly" not in data.power_w
    finally:
        del platforms_module._REGISTRY["mlponly"]


def test_platform_sweep_consumes_registry():
    from repro.analysis.sweeps import render_platform_sweep, sweep_platforms

    points = sweep_platforms(bit_configs=((4, 2),))
    names = [point.platform for point in points]
    assert names == [p.name for p in iter_platforms() if p.supports_conv]
    text = render_platform_sweep(points)
    assert "OISA" in text and "Crosslight" in text


def test_table1_platform_rows_cover_baselines():
    from repro.analysis.table1 import build_platform_rows

    rows = dict(build_platform_rows())
    assert set(rows) == {"Crosslight (rebuilt)", "AppCip (rebuilt)", "ASIC (rebuilt)"}
    for row in rows.values():
        assert float(row["power_mw"]) > 0.0


def test_reference_workload_reductions_sane(workload):
    """Registry-driven fig9 keeps OISA cheapest on the paper workload."""
    adapters = list(iter_platforms())
    reference = resnet18_first_layer_workload()
    powers = {
        a.name: a.simulate_conv(reference, weight_bits=4).average_power_w
        for a in adapters
    }
    for name, power in powers.items():
        if name != "OISA":
            assert power > powers["OISA"]
