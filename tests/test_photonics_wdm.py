"""Tests for repro.photonics.wdm — grids and crosstalk."""

import numpy as np
import pytest

from repro.photonics.microring import MicroringDesign, MicroringResonator
from repro.photonics.wdm import WdmGrid, crosstalk_matrix, effective_arm_transmission


def test_grid_wavelengths_centred_and_spaced():
    grid = WdmGrid(num_channels=10)
    wavelengths = grid.wavelengths_m()
    assert len(wavelengths) == 10
    assert np.mean(wavelengths) == pytest.approx(grid.center_wavelength_m)
    np.testing.assert_allclose(np.diff(wavelengths), grid.channel_spacing_m)


def test_grid_span_within_fsr():
    grid = WdmGrid()
    ring = MicroringResonator()
    assert grid.span_m() < ring.fsr_m  # all channels inside one FSR


def test_channel_detunings():
    grid = WdmGrid(num_channels=4)
    detunings = grid.channel_detunings_m(0)
    assert detunings[0] == 0.0
    assert detunings[-1] == pytest.approx(3 * grid.channel_spacing_m)


def test_crosstalk_matrix_shape_and_diagonal():
    grid = WdmGrid(num_channels=5)
    matrix = crosstalk_matrix(grid)
    assert matrix.shape == (5, 5)
    ring = MicroringResonator()
    # On-channel rings at rest sit on resonance: diagonal ~ T_min.
    np.testing.assert_allclose(np.diag(matrix), ring.min_transmission, rtol=1e-6)
    # Off-diagonals are near-transparent.
    off = matrix[~np.eye(5, dtype=bool)]
    assert np.all(off > 0.95)


def test_crosstalk_decays_with_distance():
    grid = WdmGrid(num_channels=8)
    matrix = crosstalk_matrix(grid)
    # Attenuation of channel i by ring j weakens with |i - j|.
    assert matrix[1, 0] < matrix[4, 0] <= matrix[7, 0]


def test_weighted_crosstalk_diagonal_matches_weights():
    grid = WdmGrid(num_channels=6)
    weights = np.linspace(0.2, 0.9, 6)
    matrix = crosstalk_matrix(grid, weights=weights)
    np.testing.assert_allclose(np.diag(matrix), weights, rtol=1e-9)


def test_effective_arm_transmission_error_small():
    grid = WdmGrid()
    weights = np.linspace(0.1, 0.95, grid.num_channels)
    effective = effective_arm_transmission(grid, weights)
    rel_err = np.abs(effective - weights) / weights
    assert np.all(rel_err < 0.05)  # a few percent crosstalk
    assert np.all(rel_err > 0.0)  # but not zero — the effect exists


def test_wider_spacing_less_crosstalk():
    weights = np.full(5, 0.8)
    tight = WdmGrid(channel_spacing_m=0.8e-9, num_channels=5)
    loose = WdmGrid(channel_spacing_m=2.4e-9, num_channels=5)
    err_tight = np.abs(effective_arm_transmission(tight, weights) - weights).max()
    err_loose = np.abs(effective_arm_transmission(loose, weights) - weights).max()
    assert err_loose < err_tight


def test_weights_shape_validated():
    grid = WdmGrid(num_channels=4)
    with pytest.raises(ValueError):
        crosstalk_matrix(grid, weights=np.ones(3))


def test_grid_validation():
    with pytest.raises(ValueError):
        WdmGrid(num_channels=0)
    with pytest.raises(ValueError):
        WdmGrid(channel_spacing_m=-1.0)
