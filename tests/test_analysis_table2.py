"""Tests for repro.analysis.table2 helpers (no training — synthetic cells)."""

import pytest

from repro.analysis.table2 import Table2Data, ordering_checks, render_table2
from repro.sim.accuracy import PAPER_ACCURACY_ROWS, AccuracyResult, Table2Settings


def _cell(dataset, label, bits, software, hardware):
    return AccuracyResult(
        dataset=dataset,
        config_label=label,
        weight_bits=bits,
        software_accuracy=software,
        hardware_accuracy=hardware,
        weight_relative_error=0.02 if bits is not None else None,
        epochs=2,
        seed=0,
    )


@pytest.fixture
def synthetic_data():
    results = []
    for dataset, base in (("mnist-like", 0.98), ("svhn-like", 0.95)):
        results.append(_cell(dataset, "baseline", None, base, None))
        results.append(_cell(dataset, "[4:2]", 4, base - 0.02, base - 0.045))
        results.append(_cell(dataset, "[3:2]", 3, base - 0.02, base - 0.04))
        results.append(_cell(dataset, "[2:2]", 2, base - 0.03, base - 0.05))
        results.append(_cell(dataset, "[1:2]", 1, base - 0.05, base - 0.07))
    return Table2Data(
        results=results,
        paper_rows=PAPER_ACCURACY_ROWS,
        settings=Table2Settings.fast(),
    )


def test_cell_lookup(synthetic_data):
    cell = synthetic_data.cell("mnist", "[3:2]")
    assert cell is not None
    assert cell.weight_bits == 3
    assert synthetic_data.cell("mnist", "[9:9]") is None


def test_accuracy_matrix_uses_hardware_for_quantized(synthetic_data):
    matrix = synthetic_data.accuracy_matrix()
    # baseline cells report software; quantized cells report hardware.
    assert matrix["baseline"]["mnist"] == pytest.approx(98.0)
    assert matrix["[3:2]"]["mnist"] == pytest.approx(94.0)


def test_render_includes_measured_and_paper_rows(synthetic_data):
    text = render_table2(synthetic_data)
    assert "baseline (measured)" in text
    assert "OISA[4:2] (measured)" in text
    assert "PISA (paper)" in text
    assert "FBNA (paper)" in text


def test_ordering_checks_pass_on_paper_shaped_data(synthetic_data):
    checks = ordering_checks(synthetic_data)
    assert checks["quantized_below_baseline"]
    assert checks["no_meaningful_gain_from_4bit"]
    assert checks["configs_retain_half_of_baseline"]


def test_ordering_checks_detect_violations():
    # Fabricate a table where 4-bit wildly beats 3-bit and 2-bit collapses.
    results = [
        _cell("mnist-like", "baseline", None, 0.9, None),
        _cell("mnist-like", "[4:2]", 4, 0.95, 0.95),
        _cell("mnist-like", "[3:2]", 3, 0.7, 0.7),
        _cell("mnist-like", "[2:2]", 2, 0.2, 0.2),
        _cell("mnist-like", "[1:2]", 1, 0.72, 0.72),
    ]
    data = Table2Data(results, PAPER_ACCURACY_ROWS, Table2Settings.fast())
    checks = ordering_checks(data)
    assert not checks["no_meaningful_gain_from_4bit"]
    assert not checks["configs_retain_half_of_baseline"]


def test_paper_rows_match_publication():
    # Spot-check the transcription of the paper's Table II.
    assert PAPER_ACCURACY_ROWS["OISA[3:2]"]["mnist"] == 96.18
    assert PAPER_ACCURACY_ROWS["OISA[4:2]"]["cifar100"] == 61.38
    assert PAPER_ACCURACY_ROWS["paper-baseline"]["cifar10"] == 91.37
    assert "mnist" not in PAPER_ACCURACY_ROWS["FBNA"]  # dash in the paper
