"""Integration tests: the full sensor-to-decision path at small scale."""

import numpy as np
import pytest

from repro.core.accelerator import OISAAccelerator
from repro.core.config import OISAConfig
from repro.core.opc import OpticalProcessingCore
from repro.core.pipeline import HardwareFirstLayerPipeline
from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.datasets.catalog import Dataset
from repro.nn.models import FirstLayerConfig, build_lenet
from repro.nn.optim import SGD, CosineLR
from repro.nn.train import Trainer


@pytest.fixture(scope="module")
def tiny_dataset():
    spec = SyntheticSpec(
        name="integration",
        num_classes=4,
        image_size=16,
        channels=1,
        train_size=240,
        test_size=120,
        noise_sigma=0.06,
        jitter_px=1,
        clutter=0.1,
        seed=1,
    )
    x_train, y_train, x_test, y_test = generate_dataset(spec)
    return Dataset(
        name="integration",
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=4,
        image_size=16,
        channels=1,
        paper_model="LeNet",
    )


@pytest.fixture(scope="module")
def trained_qat(tiny_dataset):
    model = build_lenet(
        num_classes=4,
        input_size=16,
        first_layer=FirstLayerConfig(weight_bits=3),
        seed=0,
    )
    trainer = Trainer(
        model,
        SGD(model.parameters(), momentum=0.9, weight_decay=1e-4),
        CosineLR(0.05, 1e-4),
        seed=0,
    )
    trainer.fit(tiny_dataset.x_train, tiny_dataset.y_train, epochs=4, batch_size=32)
    software = trainer.evaluate(tiny_dataset.x_test, tiny_dataset.y_test)
    return model, software


def test_qat_training_reaches_useful_accuracy(trained_qat):
    _, software = trained_qat
    assert software > 0.7  # 4-class problem, chance = 0.25


def test_hardware_inference_tracks_software(trained_qat, tiny_dataset):
    model, software = trained_qat
    opc = OpticalProcessingCore(OISAConfig().with_weight_bits(3), seed=11)
    pipeline = HardwareFirstLayerPipeline(model, opc)
    hardware = pipeline.evaluate(tiny_dataset.x_test, tiny_dataset.y_test)
    assert hardware > software - 0.15  # optics cost a few points at most


def test_end_to_end_frame_path_consistency(trained_qat):
    # The accelerator facade and the pipeline agree on the first layer.
    model, _ = trained_qat
    conv = model[1]
    oisa = OISAAccelerator(OISAConfig().with_weight_bits(3), seed=11)
    quantized = conv.quantizer.quantize(conv.weight.data)
    scale = conv.quantizer.scale(conv.weight.data)
    oisa.opc.program(quantized, scale)

    opc = OpticalProcessingCore(OISAConfig().with_weight_bits(3), seed=11)
    opc.program(quantized, scale)
    np.testing.assert_allclose(
        oisa.opc.programmed.realized, opc.programmed.realized
    )


def test_paper_configuration_full_frame_throughput():
    # One full ResNet18-style first layer on the real frame size, checking
    # the headline performance counters along the way.
    oisa = OISAAccelerator(seed=0)
    weights = np.random.default_rng(0).normal(size=(64, 3, 3, 3)) * 0.1
    oisa.program_conv(weights, padding=1)
    frame = np.random.default_rng(1).uniform(0, 1, (3, 128, 128))
    oisa.process_frame(frame)
    steady = oisa.process_frame(frame)
    assert steady.timing.pipelined_fps == pytest.approx(1000.0, rel=0.01)
    summary = oisa.performance_summary()
    assert summary["macs_per_cycle"] == 3600
    assert summary["compute_cycles_per_frame"] == 128 * 128
    assert summary["efficiency_tops_per_watt"] == pytest.approx(6.68, rel=0.03)
