"""Tier-1 guard for the paper-to-code documentation layer.

Runs the same checks as the CI docs job (``tools/check_docs.py``): every
``repro.*`` pointer in ``docs/architecture.md``/``README.md`` must import,
every referenced file must exist, and every ``src/repro`` package must
have a paper-to-code row.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER_PATH = os.path.join(REPO_ROOT, "tools", "check_docs.py")


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_checker_script_exists():
    assert os.path.isfile(CHECKER_PATH)


def test_architecture_doc_exists():
    assert os.path.isfile(os.path.join(REPO_ROOT, "docs", "architecture.md"))


def test_module_references_import():
    checker = _load_checker()
    assert checker.check_module_references() == []


def test_path_references_exist():
    checker = _load_checker()
    assert checker.check_path_references() == []


def test_every_package_has_a_paper_to_code_row():
    checker = _load_checker()
    assert checker.check_package_coverage() == []


def test_checker_catches_broken_pointers(tmp_path, monkeypatch):
    """The checker is not vacuous: a bad pointer must fail."""
    checker = _load_checker()
    docs_dir = tmp_path / "docs"
    docs_dir.mkdir()
    (docs_dir / "architecture.md").write_text(
        "`repro.engine.health` is real but `repro.engine.telepathy` and "
        "`src/repro/engine/telepathy.py` are not.\n"
    )
    monkeypatch.setattr(checker, "REPO_ROOT", str(tmp_path))
    docs = ("docs/architecture.md",)
    module_failures = checker.check_module_references(doc_files=docs)
    path_failures = checker.check_path_references(doc_files=docs)
    assert any("telepathy" in failure for failure in module_failures)
    assert any("telepathy" in failure for failure in path_failures)
