"""Smoke tests: the fast example scripts must stay runnable.

(The training-heavy examples — first_layer_offload, table2_full — are
exercised through their library entry points in test_sim_accuracy.py; the
scripts here finish in seconds.)
"""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def _run_example(path: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = _run_example(f"{EXAMPLES}/quickstart.py", [], capsys)
    assert "performance summary" in out
    assert "efficiency_tops_per_watt" in out
    assert "sustained FPS" in out


def test_multi_node_example(capsys):
    out = _run_example(f"{EXAMPLES}/multi_node_iot.py", ["2"], capsys)
    assert "Multi-node IoT deployment" in out
    assert "reduction" in out


def test_design_space_exploration_example(capsys):
    out = _run_example(f"{EXAMPLES}/design_space_exploration.py", [], capsys)
    assert "Bank-count sweep" in out
    assert "Q-factor sweep" in out
    assert "Weight-bit sweep" in out
    assert "Arm-size sweep" in out
    assert "Cross-platform sweep" in out


def test_frame_serving_example(capsys):
    out = _run_example(f"{EXAMPLES}/frame_serving.py", ["2"], capsys)
    assert "Frame serving on 2 simulated node(s)" in out
    assert "drop rate" in out
    assert "cache hits/misses" in out
    assert "Multi-tenant SLOs" in out
    assert "interactive hit rate" in out
