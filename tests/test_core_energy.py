"""Tests for repro.core.energy — headline metric calibration."""

import pytest

from repro.core.config import OISAConfig
from repro.core.energy import (
    OISAEnergyModel,
    PowerBreakdown,
    default_plan,
    resnet18_first_layer_workload,
)


@pytest.fixture
def model():
    return OISAEnergyModel(OISAConfig())


def test_power_breakdown_helpers():
    breakdown = PowerBreakdown({"a": 1.0, "b": 3.0})
    assert breakdown.total == 4.0
    assert breakdown.fraction("b") == pytest.approx(0.75)
    assert breakdown.scaled(2.0).total == 8.0
    merged = breakdown.merged(PowerBreakdown({"b": 1.0, "c": 1.0}))
    assert merged.components == {"a": 1.0, "b": 4.0, "c": 1.0}


def test_peak_throughput_matches_paper(model):
    # 400 arms / 55.8 ps = ~7.1 TOp/s (the paper's op definition).
    assert model.peak_throughput_ops() / 1e12 == pytest.approx(7.1, rel=0.02)


def test_scalar_mac_throughput(model):
    # 3600 scalar MACs per 55.8 ps cycle.
    assert model.peak_throughput_scalar_macs(3) == pytest.approx(
        3600 / 55.8e-12
    )


def test_efficiency_matches_paper(model):
    assert model.efficiency_tops_per_watt() == pytest.approx(6.68, rel=0.03)


def test_area_matches_paper(model):
    assert model.area_mm2().total == pytest.approx(1.92, rel=0.03)
    # The MR array dominates the layout.
    assert model.area_mm2().components["mr_array"] > 1.0


def test_pixel_array_area(model):
    # 16384 pixels at 4.5 um pitch ~ 0.33 mm^2.
    assert model.pixel_array_area_mm2() == pytest.approx(0.332, rel=0.02)


def test_peak_power_components_present(model):
    peak = model.peak_power_w()
    for name in ("vcsel", "ted", "bpd", "sense_amp", "awc", "control"):
        assert name in peak.components
    assert peak.components["vcsel"] > peak.components["awc"]


def test_vcsel_count_scales_with_kernel(model):
    assert model.active_vcsels_per_cycle(3) == 80 * 9
    assert model.active_vcsels_per_cycle(5) == 80 * 25


def test_frame_energy_microjoule_scale(model):
    plan = default_plan()
    energy = model.frame_energy_j(plan)
    assert 0.3e-6 < energy.total < 5e-6


def test_average_power_milliwatt_scale(model):
    plan = default_plan()
    average = model.average_power_w(plan)
    assert 0.5e-3 < average.total < 3e-3


def test_electronics_power_in_paper_band(model):
    # Table I: 0.12 - 0.34 mW.
    plan = default_plan()
    power_mw = model.electronics_power_w(plan) * 1e3
    assert 0.1 < power_mw < 0.4


def test_mapping_energy_included_when_requested(model):
    plan = default_plan()
    steady = model.frame_energy_j(plan, include_mapping=False)
    first = model.frame_energy_j(plan, include_mapping=True, mapping_energy_j=1e-9)
    assert first.total > steady.total
    assert "mapping" in first.components


def test_frame_budget_violation_detected(model):
    plan = default_plan()
    with pytest.raises(ValueError):
        model.average_power_w(plan, frame_rate_hz=2e9)


def test_resnet_workload_definition():
    workload = resnet18_first_layer_workload()
    assert workload.kernel_size == 3
    assert workload.num_kernels == 64
    assert workload.in_channels == 3
    assert workload.image_height == 128
