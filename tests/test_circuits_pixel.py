"""Tests for repro.circuits.pixel — 3T1PD behaviour."""

import numpy as np
import pytest

from repro.circuits.pixel import PixelDesign, ThreeTransistorPixel


@pytest.fixture
def pixel():
    return ThreeTransistorPixel()


def test_photocurrent_linear(pixel):
    dark = pixel.photocurrent_a(0.0)
    bright = pixel.photocurrent_a(1000.0)
    assert dark == pytest.approx(pixel.design.dark_current_a)
    assert bright > dark


def test_drop_monotone_in_light(pixel):
    exposure = 10e-9
    drops = [pixel.exposure_drop_v(lux, exposure) for lux in (0, 2000, 6500, 13000)]
    assert all(b >= a for a, b in zip(drops, drops[1:]))


def test_drop_saturates_at_reset_voltage(pixel):
    drop = pixel.exposure_drop_v(1e9, 1e-3)
    assert drop == pytest.approx(pixel.design.reset_voltage_v)


def test_output_voltage_follows_gain(pixel):
    drop = pixel.exposure_drop_v(6500, 13.5e-9)
    out = pixel.output_voltage_v(6500, 13.5e-9)
    assert out == pytest.approx(pixel.design.source_follower_gain * drop)


def test_fig8_three_regions(pixel):
    # The three default Fig. 8 illuminations land in the three VAM regions.
    exposure = 13.5e-9
    bright = pixel.output_voltage_v(13000, exposure)
    mid = pixel.output_voltage_v(6500, exposure)
    dark = pixel.output_voltage_v(2000, exposure)
    assert bright > 0.32
    assert 0.16 < mid < 0.32
    assert dark < 0.16


def test_transient_phases(pixel):
    result = pixel.transient(6500)
    vpd = result["Vpd"]
    times = result.times_s
    # Reset charges the node close to the reset voltage.
    at_reset_end = result.sample("Vpd", 3e-9)
    assert at_reset_end == pytest.approx(pixel.design.reset_voltage_v, rel=0.01)
    # Exposure discharges it monotonically until the discharge pulse.
    window = (times > 3.2e-9) & (times < 33e-9)
    assert np.all(np.diff(vpd[window]) <= 1e-12)
    # Discharge empties the node.
    assert result.sample("Vpd", 39.5e-9) < 0.05


def test_transient_output_zero_outside_exposure(pixel):
    result = pixel.transient(6500)
    assert result.sample("Out", 0.5e-9) == 0.0
    assert result.sample("Out", 39.5e-9) == 0.0


def test_saturation_illuminance_consistent(pixel):
    exposure = 10e-9
    lux = pixel.saturation_illuminance_lux(exposure)
    assert pixel.exposure_drop_v(lux * 1.01, exposure) == pytest.approx(
        pixel.design.reset_voltage_v
    )
    assert pixel.exposure_drop_v(lux * 0.9, exposure) < pixel.design.reset_voltage_v


def test_design_validation():
    with pytest.raises(ValueError):
        PixelDesign(reset_voltage_v=2.0)  # above VDD
    with pytest.raises(ValueError):
        PixelDesign(pd_capacitance_f=0.0)
