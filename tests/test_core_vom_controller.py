"""Tests for repro.core.vom and repro.core.controller."""

import numpy as np
import pytest

from repro.core.config import OISAConfig
from repro.core.controller import TimingController
from repro.core.mapping import ConvWorkload, plan_convolution
from repro.core.vom import OutputModulator


# --------------------------------------------------------------------------
# OutputModulator
# --------------------------------------------------------------------------
def test_combine_exact_when_noiseless():
    vom = OutputModulator(remodulation_sigma=0.0)
    partials = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
    np.testing.assert_allclose(vom.combine(partials), [6.0, 15.0])


def test_combine_noise_small():
    vom = OutputModulator(remodulation_sigma=0.002, seed=0)
    partials = np.ones((1000, 4))
    combined = vom.combine(partials)
    assert combined.mean() == pytest.approx(4.0, rel=1e-3)
    assert combined.std() < 0.02


def test_combine_energy():
    vom = OutputModulator()
    assert vom.combine_energy_j(1, 100) == 0.0  # nothing to combine
    assert vom.combine_energy_j(3, 100) == pytest.approx(
        200 * vom.energy_per_combine_j
    )


def test_combine_latency_log_depth():
    vom = OutputModulator()
    assert vom.combine_latency(1) == 0.0
    assert vom.combine_latency(2) == pytest.approx(vom.combine_latency_s)
    assert vom.combine_latency(8) == pytest.approx(3 * vom.combine_latency_s)


def test_split_dot_product_covers_vector():
    vom = OutputModulator()
    chunks = vom.split_dot_product(123, 50)
    assert chunks[0] == (0, 50)
    assert chunks[-1] == (100, 123)
    covered = sum(stop - start for start, stop in chunks)
    assert covered == 123


def test_split_validation():
    with pytest.raises(ValueError):
        OutputModulator().split_dot_product(0, 50)


# --------------------------------------------------------------------------
# TimingController
# --------------------------------------------------------------------------
@pytest.fixture
def controller():
    return TimingController(OISAConfig())


@pytest.fixture
def plan():
    cfg = OISAConfig()
    return plan_convolution(cfg, ConvWorkload(3, 64, 3, 128, 128, padding=1))


def test_exposure_budget(controller):
    assert controller.exposure_time_s() == pytest.approx(1e-3)
    assert controller.exposure_time_s(500.0) == pytest.approx(2e-3)


def test_compute_time(controller, plan):
    expected = plan.compute_cycles * 55.8e-12
    assert controller.compute_time_s(plan) == pytest.approx(expected)


def test_mapping_time_scales_with_iterations(controller):
    base = controller.mapping_time_s()
    assert base == pytest.approx(100 * 5 * 0.18e-9)
    with_tuning = controller.mapping_time_s(tuning_latency_s=4e-6)
    assert with_tuning == pytest.approx(base + 4e-6)


def test_frame_timing_sequential_vs_pipelined(controller, plan):
    timing = controller.frame_timing(plan)
    assert timing.sequential_s > timing.pipelined_s * 0.99
    assert timing.pipelined_s == pytest.approx(1e-3)  # exposure-dominated
    assert timing.pipelined_fps == pytest.approx(1000.0)


def test_paper_frame_rate_holds_with_remap(controller, plan):
    # Even paying a full weight remap, OISA sustains 1000 FPS.
    timing = controller.frame_timing(plan, remap_weights=True, tuning_latency_s=4e-6)
    assert timing.pipelined_fps >= 999.0


def test_compute_duty_small(controller, plan):
    timing = controller.frame_timing(plan)
    assert timing.compute_duty < 0.002  # ~1 us of a 1 ms frame


def test_transmit_time(controller, plan):
    outputs = plan.workload.windows_per_channel * plan.workload.num_kernels
    expected = outputs * controller.OUTPUT_BITS_PER_VALUE / controller.TRANSMIT_RATE_BPS
    assert controller.transmit_time_s(plan) == pytest.approx(expected)
