"""Tests for repro.photonics.tuning — TO/EO hybrid costs."""

import pytest

from repro.photonics.tuning import HybridTuning, TuningBudget


@pytest.fixture
def tuner():
    return HybridTuning()


def test_small_shift_is_eo_only(tuner):
    to, eo = tuner.split_shift(tuner.eo_range_m / 2.0)
    assert to == 0.0
    assert eo == pytest.approx(tuner.eo_range_m / 2.0)


def test_large_shift_spills_to_to(tuner):
    shift = 0.5e-9  # well beyond EO range
    to, eo = tuner.split_shift(shift)
    assert eo == pytest.approx(tuner.eo_range_m)
    assert to == pytest.approx(shift - tuner.eo_range_m)


def test_sign_preserved(tuner):
    to, eo = tuner.split_shift(-0.3e-9)
    assert to <= 0.0 and eo <= 0.0


def test_eo_retune_fast_and_cheap(tuner):
    budget = tuner.retune(tuner.eo_range_m / 2.0)
    assert budget.latency_s == pytest.approx(tuner.eo_settle_time_s)
    assert budget.energy_j == pytest.approx(tuner.eo_energy_per_shift_j)


def test_to_retune_slow_and_hot(tuner):
    budget = tuner.retune(0.5e-9)
    assert budget.latency_s == pytest.approx(tuner.to_settle_time_s)
    assert budget.holding_power_w > 0.0
    assert budget.energy_j > tuner.eo_energy_per_shift_j


def test_zero_shift_free(tuner):
    budget = tuner.retune(0.0)
    assert budget.energy_j == 0.0
    assert budget.holding_power_w == 0.0


def test_holding_power_scales_with_shift(tuner):
    small = tuner.retune(0.2e-9).holding_power_w
    large = tuner.retune(0.6e-9).holding_power_w
    assert large > small


def test_mapping_cost_parallel_latency(tuner):
    shifts = [0.4e-9, 0.02e-9, 0.5e-9]
    total = tuner.mapping_cost(shifts)
    slowest = max(tuner.retune(s).latency_s for s in shifts)
    assert total.latency_s == pytest.approx(slowest)
    assert total.energy_j == pytest.approx(
        sum(tuner.retune(s).energy_j for s in shifts)
    )


def test_mapping_cost_empty():
    budget = HybridTuning().mapping_cost([])
    assert budget == TuningBudget(0.0, 0.0, 0.0)


def test_budget_validation():
    with pytest.raises(ValueError):
        TuningBudget(energy_j=-1.0, latency_s=0.0, holding_power_w=0.0)
