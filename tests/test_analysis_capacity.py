"""Tests for repro.analysis.capacity — capacity-planning curves."""

import pytest

from repro.analysis.capacity import (
    CapacitySettings,
    build_capacity_report,
    render_capacity_report,
)


@pytest.fixture(scope="module")
def fast_report():
    return build_capacity_report(CapacitySettings.fast())


def test_fast_report_covers_the_grid(fast_report):
    settings = fast_report.settings
    assert len(fast_report.points) == len(settings.policies) * len(
        settings.node_counts
    )
    assert fast_report.analytic_node_fps > 0.0
    assert fast_report.point("greedy", 1) is not None
    assert fast_report.point("slo", 99) is None


def test_capacity_scales_with_nodes(fast_report):
    one = fast_report.point("greedy", 1)
    two = fast_report.point("greedy", 2)
    assert one.sustainable_fps > 0.0
    ratio = two.sustainable_fps / one.sustainable_fps
    # Two nodes buy roughly double the sustainable rate (search is coarse
    # in the fast preset, so leave slack).
    assert 1.5 <= ratio <= 2.5


def test_measured_knee_respects_the_analytic_bound(fast_report):
    # The diurnal ramp peaks at 1.6x the mean rate, so the drop-free knee
    # of a drop-if-busy policy must sit below the steady-state ceiling.
    point = fast_report.point("greedy", 1)
    assert point.sustainable_fps < fast_report.analytic_node_fps
    assert point.drop_rate <= fast_report.settings.max_drop_rate


def test_report_is_deterministic():
    first = build_capacity_report(CapacitySettings.fast())
    second = build_capacity_report(CapacitySettings.fast())
    assert first.points == second.points
    assert first.analytic_node_fps == second.analytic_node_fps


def test_render_capacity_report(fast_report):
    text = render_capacity_report(fast_report)
    assert "Capacity planning" in text
    assert "sustainable FPS" in text
    assert "diurnal" in text


def test_unclosed_bracket_is_flagged_as_lower_bound():
    # A 95% drop tolerance can never fail a 16-frame stream (at most
    # 15/16 = 93.75% of frames can drop), so the expansion cap is hit:
    # the search must flag the result as a bound (>=), not fabricate a
    # bisected knee against an unprobed upper edge.
    settings = CapacitySettings(
        scenario="diurnal",
        policies=("greedy",),
        node_counts=(1,),
        frames=16,
        search_iterations=2,
        max_drop_rate=0.95,
    )
    report = build_capacity_report(settings)
    point = report.point("greedy", 1)
    assert not point.bracketed
    assert point.sustainable_fps > 0.0
    assert ">=" in render_capacity_report(report)


def test_sweep_scenarios_runs_one_report_per_scenario():
    from dataclasses import replace

    from repro.analysis.capacity import sweep_scenarios

    settings = replace(
        CapacitySettings.fast(), node_counts=(1,), search_iterations=2
    )
    reports = sweep_scenarios(("diurnal", "zoo"), settings)
    assert [r.settings.scenario for r in reports] == ["diurnal", "zoo"]
    assert all(r.points for r in reports)


def test_settings_validation():
    with pytest.raises(ValueError):
        CapacitySettings(frames=0)
    with pytest.raises(ValueError):
        CapacitySettings(search_iterations=0)
