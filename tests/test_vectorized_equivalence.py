"""Scalar-vs-batched bit-identity of the weight-programming hot path.

The vectorized chain (array ``detuning_for_transmission``, batched
crosstalk tensors, ndarray ``mapping_cost``, batched OPC crosstalk/tuning)
must produce **exactly** the floats the original scalar loops produced —
``np.testing.assert_array_equal``, no tolerance.  The scalar loops are
retained verbatim in :mod:`repro.core.reference`; every test here pits the
live implementation against that reference over random inputs, including
the edge lanes (T exactly 1.0 parks the ring, T_min sits on the range
floor, zero weights, EO-only vs TO+EO shifts).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.opc import OpticalProcessingCore
from repro.nn.quant import UniformWeightQuantizer
from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import HybridTuning
from repro.photonics.wdm import (
    WdmGrid,
    crosstalk_matrices,
    crosstalk_matrix,
    effective_arm_transmission,
    effective_arm_transmissions,
)

RING = MicroringResonator()
GRID = WdmGrid()


def _random_transmissions(rng, shape):
    t_min = RING.min_transmission
    values = rng.uniform(t_min, 1.0, size=shape)
    # Sprinkle in the edges: exact floor and exact parking target.
    flat = values.reshape(-1)
    if flat.size >= 2:
        flat[0] = t_min
        flat[1] = 1.0
    return values


# --------------------------------------------------------------------------
# detuning_for_transmission
# --------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_detuning_array_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    targets = _random_transmissions(rng, (257,))
    batched = RING.detuning_for_transmission(targets)
    scalar = np.array(
        [
            reference.detuning_for_transmission_scalar(RING, float(t))
            for t in targets
        ]
    )
    np.testing.assert_array_equal(batched, scalar)


def test_detuning_scalar_input_returns_float():
    target = 0.5 * (RING.min_transmission + 1.0)
    result = RING.detuning_for_transmission(target)
    assert isinstance(result, float)
    assert result == reference.detuning_for_transmission_scalar(RING, target)


def test_detuning_parked_branch():
    assert RING.detuning_for_transmission(1.0) == 0.5 * RING.fsr_m
    parked = RING.detuning_for_transmission(np.array([1.0, 1.0]))
    np.testing.assert_array_equal(parked, np.full(2, 0.5 * RING.fsr_m))


def test_detuning_range_checks_preserved():
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(RING.min_transmission / 2.0)
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(1.5)
    good = 0.9
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(np.array([good, 1.5]))
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(
            np.array([good, RING.min_transmission / 2.0])
        )


def test_detuning_rejects_nan_like_scalar():
    # The scalar chained comparison raised on NaN; the batched check must
    # not let NaN slide through into the tuning budgets.
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(float("nan"))
    with pytest.raises(ValueError):
        RING.detuning_for_transmission(np.array([0.9, float("nan")]))


def test_detuning_preserves_input_shape():
    rng = np.random.default_rng(3)
    targets = _random_transmissions(rng, (4, 5, 6))
    assert RING.detuning_for_transmission(targets).shape == (4, 5, 6)


# --------------------------------------------------------------------------
# crosstalk matrices
# --------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 5])
def test_crosstalk_matrix_weighted_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    weights = _random_transmissions(rng, (GRID.num_channels,))
    np.testing.assert_array_equal(
        crosstalk_matrix(GRID, ring=RING, weights=weights),
        reference.crosstalk_matrix_scalar(GRID, ring=RING, weights=weights),
    )


def test_crosstalk_matrix_unweighted_matches_scalar():
    np.testing.assert_array_equal(
        crosstalk_matrix(GRID, ring=RING),
        reference.crosstalk_matrix_scalar(GRID, ring=RING),
    )


@pytest.mark.parametrize("arms", [1, 7, 40])
def test_crosstalk_matrices_match_per_arm_loop(arms):
    rng = np.random.default_rng(arms)
    weights = _random_transmissions(rng, (arms, GRID.num_channels))
    batched = crosstalk_matrices(GRID, weights, ring=RING)
    assert batched.shape == (arms, GRID.num_channels, GRID.num_channels)
    for index in range(arms):
        np.testing.assert_array_equal(
            batched[index],
            reference.crosstalk_matrix_scalar(
                GRID, ring=RING, weights=weights[index]
            ),
        )


def test_effective_arm_transmissions_match_per_arm_loop():
    rng = np.random.default_rng(9)
    weights = _random_transmissions(rng, (23, GRID.num_channels))
    batched = effective_arm_transmissions(GRID, weights, ring=RING)
    assert batched.shape == weights.shape
    for index in range(weights.shape[0]):
        np.testing.assert_array_equal(
            batched[index],
            reference.effective_arm_transmission_scalar(
                GRID, weights[index], ring=RING
            ),
        )
        np.testing.assert_array_equal(
            batched[index],
            effective_arm_transmission(GRID, weights[index], ring=RING),
        )


def test_crosstalk_matrices_rejects_wrong_channel_count():
    with pytest.raises(ValueError):
        crosstalk_matrices(GRID, np.ones((4, GRID.num_channels + 1)))


# --------------------------------------------------------------------------
# mapping_cost
# --------------------------------------------------------------------------
@given(
    shifts=st.lists(
        st.floats(
            min_value=-2e-9, max_value=2e-9, allow_nan=False, allow_infinity=False
        ),
        min_size=0,
        max_size=64,
    )
)
@settings(max_examples=80, deadline=None)
def test_mapping_cost_ndarray_matches_scalar(shifts):
    tuner = HybridTuning()
    batched = tuner.mapping_cost(np.asarray(shifts))
    scalar = reference.mapping_cost_scalar(tuner, shifts)
    assert batched.energy_j == scalar.energy_j
    assert batched.latency_s == scalar.latency_s
    assert batched.holding_power_w == scalar.holding_power_w


def test_mapping_cost_edge_shifts():
    tuner = HybridTuning()
    # Zero, EO-only (inside the 50 pm range), exactly at range, TO+EO.
    shifts = [0.0, 1e-12, -1e-12, tuner.eo_range_m, -tuner.eo_range_m, 1e-9, -1e-9]
    batched = tuner.mapping_cost(np.asarray(shifts))
    scalar = reference.mapping_cost_scalar(tuner, shifts)
    assert batched == scalar


def test_mapping_cost_still_accepts_lists():
    tuner = HybridTuning()
    shifts = [1e-10, 5e-10]
    assert tuner.mapping_cost(shifts) == reference.mapping_cost_scalar(
        tuner, shifts
    )
    assert tuner.mapping_cost([]).energy_j == 0.0


# --------------------------------------------------------------------------
# Full OPC program chain
# --------------------------------------------------------------------------
def _program_pair(shape, bits, seed, enable_crosstalk=True):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=shape) * 0.1
    quantizer = UniformWeightQuantizer(bits)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    opc = OpticalProcessingCore(
        seed=seed, enable_crosstalk=enable_crosstalk, enable_read_noise=False
    )
    return opc.program(quantized, scale), reference.program_scalar(
        opc, quantized, scale
    )


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
def test_program_conv_bit_identical_all_bit_widths(bits):
    programmed, scalar = _program_pair((8, 3, 3, 3), bits, seed=bits)
    np.testing.assert_array_equal(programmed.realized, scalar.realized)
    np.testing.assert_array_equal(programmed.ideal, scalar.ideal)
    assert programmed.tuning == scalar.tuning


@pytest.mark.parametrize("bits", [1, 2, 3, 4])
def test_program_dense_bit_identical_all_bit_widths(bits):
    programmed, scalar = _program_pair((16, 100), bits, seed=10 + bits)
    np.testing.assert_array_equal(programmed.realized, scalar.realized)
    assert programmed.tuning == scalar.tuning


def test_program_bit_identical_without_crosstalk():
    programmed, scalar = _program_pair(
        (4, 3, 3, 3), 4, seed=42, enable_crosstalk=False
    )
    np.testing.assert_array_equal(programmed.realized, scalar.realized)
    assert programmed.tuning == scalar.tuning


def test_program_ragged_arm_padding_bit_identical():
    # 75 weights do not tile the 10-MR arms evenly; the padded tail lanes
    # must still match the scalar loop.
    programmed, scalar = _program_pair((3, 1, 5, 5), 4, seed=21)
    np.testing.assert_array_equal(programmed.realized, scalar.realized)
    assert programmed.tuning == scalar.tuning


def test_weight_transform_uses_shared_realize_chain():
    rng = np.random.default_rng(33)
    weights = rng.normal(size=(4, 3, 3, 3)) * 0.1
    quantizer = UniformWeightQuantizer(4)
    quantized = quantizer.quantize(weights)
    scale = quantizer.scale(weights)
    opc = OpticalProcessingCore(seed=33, enable_read_noise=False)
    realized_hook = opc.weight_transform(scale_hint=scale)(quantized)
    scalar = reference.program_scalar(opc, quantized, scale)
    np.testing.assert_array_equal(realized_hook, scalar.realized)
