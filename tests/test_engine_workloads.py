"""Tests for repro.engine.workloads — the scenario/zoo layer."""

import numpy as np
import pytest

from repro.engine.workloads import (
    ModelSpec,
    build_scenario,
    models_scenario,
    parse_model_specs,
    scenario_description,
    scenario_registry,
)


# ----------------------------------------------------------------------
# ModelSpec / zoo
# ----------------------------------------------------------------------
def test_model_spec_keys_and_shapes():
    assert ModelSpec("lenet", 4).key == "lenet-4b"
    assert ModelSpec("mlp", 2).frame_shape == (1, 28, 28)
    assert ModelSpec("vgg16", 1).frame_shape == (3, 32, 32)
    assert ModelSpec("resnet18").weight_bits == 4


def test_model_spec_validation():
    with pytest.raises(ValueError, match="unknown model family"):
        ModelSpec("alexnet")
    with pytest.raises(ValueError, match="weight_bits"):
        ModelSpec("lenet", 7)


def test_first_layer_stems_are_servable():
    """VGG/ResNet entries are first-layer pipelines the engine can run."""
    from repro.engine import FrameServer

    server = FrameServer(num_nodes=1, micro_batch=4, seed=0)
    spec = ModelSpec("vgg16", 4)
    server.register_model(spec.key, spec.build(seed=0))
    frames = np.random.default_rng(0).uniform(0.0, 1.0, (4, 3, 32, 32))
    report = server.serve_frames(frames, spec.key, offered_fps=200.0)
    assert report.delivered == 4
    # First-layer offload ships the stem's feature map, not logits.
    assert report.responses[0].output.shape == (64, 32, 32)


def test_parse_model_specs():
    specs = parse_model_specs("lenet:4, mlp:2 ,vgg16")
    assert [s.key for s in specs] == ["lenet-4b", "mlp-2b", "vgg16-4b"]
    with pytest.raises(ValueError):
        parse_model_specs("  ,  ")


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
EXPECTED_SCENARIOS = (
    "default",
    "poisson",
    "poisson-burst",
    "diurnal",
    "mixed-tenants",
    "zoo",
)


def test_registry_contains_the_documented_scenarios():
    keys = scenario_registry()
    for name in EXPECTED_SCENARIOS:
        assert name in keys
        assert scenario_description(name)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario("rush-hour")


@pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
def test_scenarios_generate_consistent_streams(name):
    scenario = build_scenario(name, frames=24, offered_fps=800.0, seed=1)
    assert scenario.name == name
    assert len(scenario.requests) == 24
    assert scenario.models
    for request in scenario.requests:
        assert request.model_key in scenario.models
    # Explicit arrivals (all scenarios except the historical default)
    # must be sorted — the response order equals the request order.
    arrivals = [r.arrival_s for r in scenario.requests]
    if name != "default":
        assert all(a is not None for a in arrivals)
        assert arrivals == sorted(arrivals)


@pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
def test_scenarios_are_seed_deterministic(name):
    first = build_scenario(name, frames=16, offered_fps=500.0, seed=7)
    second = build_scenario(name, frames=16, offered_fps=500.0, seed=7)
    other = build_scenario(name, frames=16, offered_fps=500.0, seed=8)
    for a, b in zip(first.requests, second.requests):
        assert a.model_key == b.model_key
        assert a.arrival_s == b.arrival_s
        np.testing.assert_array_equal(a.frame, b.frame)
    assert any(
        not np.array_equal(a.frame, b.frame)
        for a, b in zip(first.requests, other.requests)
    )


def test_default_scenario_reproduces_the_historical_demo():
    """Same rng stream, model keys and split as the old hard-coded demo."""
    from repro.nn.models import build_lenet

    scenario = build_scenario("default", frames=10, offered_fps=1000.0, seed=5)
    rng = np.random.default_rng(5)
    stack = rng.uniform(0.0, 1.0, (10, 1, 28, 28))
    for i, request in enumerate(scenario.requests):
        np.testing.assert_array_equal(request.frame, stack[i])
        assert request.model_key == ("model-a" if i < 5 else "model-b")
        assert request.arrival_s is None  # server derives from the rate
    reference = build_lenet(seed=5)
    model = scenario.models["model-a"]
    np.testing.assert_array_equal(
        model[1].weight.data, reference[1].weight.data
    )


def test_zoo_scenario_covers_every_family_and_several_bit_widths():
    scenario = build_scenario("zoo", frames=16, offered_fps=500.0, seed=0)
    families = {key.rsplit("-", 1)[0] for key in scenario.models}
    assert families == {"lenet", "mlp", "vgg16", "resnet18"}
    bit_widths = {key.rsplit("-", 1)[1] for key in scenario.models}
    assert len(bit_widths) >= 2


def test_mixed_tenants_scenario_defines_slo_classes():
    scenario = build_scenario(
        "mixed-tenants", frames=20, offered_fps=1000.0, seed=0
    )
    classes = scenario.slo_classes
    assert classes["lenet-4b"].name == "interactive"
    assert classes["lenet-4b"].priority > classes["mlp-2b"].priority
    assert classes["mlp-2b"].max_queue_s is not None
    tenants = {r.tenant for r in scenario.requests}
    assert tenants == {"interactive", "batch"}


def test_models_scenario_round_robins_uniformly():
    scenario = models_scenario(
        "lenet:4,mlp:2", frames=8, offered_fps=400.0, seed=0
    )
    keys = [r.model_key for r in scenario.requests]
    assert keys == ["lenet-4b", "mlp-2b"] * 4
    assert scenario.requests[1].arrival_s == pytest.approx(1.0 / 400.0)


def test_scenarios_serve_end_to_end():
    """Three distinct generators run through the full engine."""
    from repro.engine import FrameServer

    for name in ("poisson", "diurnal", "zoo"):
        scenario = build_scenario(name, frames=12, offered_fps=600.0, seed=0)
        server = FrameServer(num_nodes=2, micro_batch=4, seed=0)
        report = server.serve_scenario(scenario)
        assert report.stream.frames == 12
        delivered = [r for r in report.responses if not r.dropped]
        assert delivered
        assert all(r.output is not None for r in delivered)
