"""Differential tests: a trivial control plane IS the plain frame server.

The sharded control plane earns its complexity budget only if the
degenerate configuration — one shard, autoscaling off — delegates
wholesale to the underlying :class:`~repro.engine.server.FrameServer`
and changes **nothing**: same floats, same per-die read-noise RNG
consumption, same cache hit/miss counters, same SLO accounting.  These
tests pin that claim differentially over the whole scenario zoo under
every scheduling policy, and then pin the absolute anchor: the 1-shard
plane must reproduce the committed ``serve_default.json`` golden byte
for byte.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.engine import ControlPlane, FrameRequest, FrameServer
from repro.engine.workloads import build_scenario, scenario_registry
from repro.nn.models import build_lenet

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "goldens", "serve_default.json"
)


def _assert_reports_identical(plane_report, server_report):
    assert len(plane_report.responses) == len(server_report.responses)
    for ours, theirs in zip(plane_report.responses, server_report.responses):
        assert ours.index == theirs.index
        assert ours.model_key == theirs.model_key
        assert ours.node_id == theirs.node_id
        assert ours.event == theirs.event
        assert ours.degraded == theirs.degraded
        assert (ours.output is None) == (theirs.output is None)
        if ours.output is not None:
            assert np.array_equal(ours.output, theirs.output)
    assert repr(plane_report.stream.total_energy_j) == repr(
        server_report.stream.total_energy_j
    )
    assert plane_report.stream.frames == server_report.stream.frames
    assert plane_report.stream.dropped == server_report.stream.dropped
    assert repr(plane_report.wall_clock_s) != ""  # host-time: present, not pinned
    assert plane_report.cache_hits == server_report.cache_hits
    assert plane_report.cache_misses == server_report.cache_misses
    assert plane_report.payload_bytes == server_report.payload_bytes
    assert repr(plane_report.radio_energy_j) == repr(
        server_report.radio_energy_j
    )
    assert plane_report.node_frames == server_report.node_frames
    assert (plane_report.slo is None) == (server_report.slo is None)
    if plane_report.slo is not None:
        assert plane_report.slo == server_report.slo


# ----------------------------------------------------------------------
# Differential equivalence over the scenario zoo
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["greedy", "edf", "slo"])
@pytest.mark.parametrize("key", scenario_registry())
def test_one_shard_plane_matches_plain_server(key, policy):
    scenario = build_scenario(key, frames=36, offered_fps=1500.0, seed=0)
    plane = ControlPlane(
        shards=1, nodes_per_shard=2, micro_batch=8, seed=0, policy=policy
    )
    plane_report = plane.serve_scenario(scenario)

    scenario_again = build_scenario(key, frames=36, offered_fps=1500.0, seed=0)
    server = FrameServer(num_nodes=2, micro_batch=8, seed=0, policy=policy)
    server_report = server.serve_scenario(scenario_again)

    _assert_reports_identical(plane_report, server_report)
    # The plane annotates its report but never autoscales here.
    assert plane_report.controlplane is not None
    assert plane_report.controlplane.autoscaled is False
    assert list(plane_report.controlplane.decisions) == []


def test_one_shard_plane_matches_explicit_request_stream():
    """Raw ``serve`` (no scenario wrapper) is equally a pure delegation."""
    frames = np.random.default_rng(7).uniform(0.0, 1.0, (24, 1, 28, 28))
    model = build_lenet(seed=3)

    plane = ControlPlane(shards=1, nodes_per_shard=2, micro_batch=8, seed=0)
    plane.register_model("m", model)
    plane_report = plane.serve(
        [FrameRequest(frame, "m") for frame in frames], offered_fps=1200.0
    )

    server = FrameServer(num_nodes=2, micro_batch=8, seed=0)
    server.register_model("m", build_lenet(seed=3))
    server_report = server.serve(
        [FrameRequest(frame, "m") for frame in frames], offered_fps=1200.0
    )
    _assert_reports_identical(plane_report, server_report)


# ----------------------------------------------------------------------
# Absolute anchor: the committed serving golden
# ----------------------------------------------------------------------
def test_one_shard_plane_reproduces_serve_default_golden():
    """Byte-for-byte identity with ``tests/goldens/serve_default.json``.

    Same serialization as ``tests/test_engine_scheduler.py`` writes, but
    the stream runs through a 1-shard, autoscale-off control plane: the
    control plane may not perturb the pinned default path even by one
    ULP, one cache counter, or one payload byte.
    """
    plane = ControlPlane(shards=1, nodes_per_shard=2, micro_batch=8, seed=0)
    plane.register_model("model-a", build_lenet(seed=0))
    plane.register_model("model-b", build_lenet(seed=1))
    frames = np.random.default_rng(42).uniform(0.0, 1.0, (48, 1, 28, 28))
    requests = [
        FrameRequest(frames[i], "model-a" if (i // 6) % 2 == 0 else "model-b")
        for i in range(48)
    ]
    report = plane.serve(requests, offered_fps=1800.0)

    responses = []
    for resp in report.responses:
        output = resp.output
        responses.append(
            {
                "index": resp.index,
                "model_key": resp.model_key,
                "node_id": resp.node_id,
                "arrival_s": repr(resp.event.arrival_s),
                "start_s": repr(resp.event.start_s),
                "finish_s": repr(resp.event.finish_s),
                "dropped": resp.event.dropped,
                "remapped": resp.event.remapped,
                "degraded": resp.degraded,
                "output_sha256": (
                    None
                    if output is None
                    else hashlib.sha256(
                        np.ascontiguousarray(output, dtype=float).tobytes()
                    ).hexdigest()
                ),
            }
        )
    actual = {
        "responses": responses,
        "total_energy_j": repr(report.stream.total_energy_j),
        "frames": report.stream.frames,
        "dropped": report.stream.dropped,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "payload_bytes": report.payload_bytes,
        "radio_energy_j": repr(report.radio_energy_j),
        "node_frames": {
            str(node): count
            for node, count in sorted(report.node_frames.items())
        },
        "health": report.health is not None,
    }
    with open(GOLDEN_PATH) as handle:
        expected = json.load(handle)
    assert actual == expected["mixed_two_nodes_1800fps"]
