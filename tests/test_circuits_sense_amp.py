"""Tests for repro.circuits.sense_amp — clocked comparator."""

import numpy as np
import pytest

from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.transient import clock_wave, time_grid


def test_decide_threshold():
    sa = SenseAmplifier(reference_v=0.16)
    assert sa.decide(0.2) == 1
    assert sa.decide(0.1) == 0
    assert sa.decide(0.16) == 0  # strict comparison


def test_offset_shifts_threshold():
    sa = SenseAmplifier(reference_v=0.16, offset_v=0.05)
    assert sa.decide(0.2) == 0
    assert sa.decide(0.22) == 1


def test_latch_trace_evaluates_on_clk_low():
    sa = SenseAmplifier(reference_v=0.5)
    times = time_grid(40e-9, 0.05e-9)
    clk = clock_wave(times, 8e-9, duty=0.5)
    vin = np.full_like(times, 0.8)
    out = sa.latch_trace(times, vin, clk)
    # After the first evaluation window the output latches high and holds.
    assert out[-1] == sa.vdd_v
    assert out[0] == 0.0  # before any evaluation


def test_latch_holds_between_evaluations():
    sa = SenseAmplifier(reference_v=0.5)
    times = time_grid(40e-9, 0.05e-9)
    clk = clock_wave(times, 8e-9, duty=0.5)
    # Input high only during the first low phase; later drops.
    vin = np.where(times < 10e-9, 0.8, 0.2)
    out = sa.latch_trace(times, vin, clk)
    index_hold = np.abs(times - 10.5e-9).argmin()  # clk high: hold phase
    assert out[index_hold] == sa.vdd_v  # still holding the latched 1
    # Next evaluation window re-latches low.
    assert out[-1] == 0.0


def test_regeneration_delay():
    sa = SenseAmplifier(reference_v=0.5, regeneration_time_s=1e-9)
    times = time_grid(20e-9, 0.05e-9)
    clk = np.where(times < 10e-9, 1.0, 0.0)  # falls at 10 ns
    vin = np.full_like(times, 0.9)
    out = sa.latch_trace(times, vin, clk)
    just_after_edge = np.abs(times - 10.4e-9).argmin()
    after_regen = np.abs(times - 11.5e-9).argmin()
    assert out[just_after_edge] == 0.0
    assert out[after_regen] == sa.vdd_v


def test_shape_mismatch_rejected():
    sa = SenseAmplifier(reference_v=0.5)
    times = time_grid(1e-9, 0.1e-9)
    with pytest.raises(ValueError):
        sa.latch_trace(times, np.zeros(3), np.zeros_like(times))


def test_power_scales_with_rate():
    sa = SenseAmplifier(reference_v=0.5, energy_per_decision_j=4e-15)
    assert sa.decisions_per_second_power_w(1e9) == pytest.approx(4e-6)
    assert sa.decisions_per_second_power_w(0.0) == 0.0
