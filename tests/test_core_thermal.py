"""Tests for repro.core.thermal — drift and compensation."""

import numpy as np
import pytest

from repro.core.thermal import RESONANCE_DRIFT_M_PER_K, ThermalModel
from repro.photonics.microring import MicroringResonator
from repro.photonics.tuning import HybridTuning


@pytest.fixture
def thermal():
    return ThermalModel(ring=MicroringResonator(), tuning=HybridTuning())


@pytest.fixture
def weights():
    return np.linspace(0.1, 0.9, 12)


def test_resonance_shift_linear(thermal):
    assert thermal.resonance_shift_m(1.0) == pytest.approx(RESONANCE_DRIFT_M_PER_K)
    assert thermal.resonance_shift_m(10.0) == pytest.approx(
        10 * RESONANCE_DRIFT_M_PER_K
    )


def test_open_loop_error_grows_with_temperature(thermal, weights):
    errors = [thermal.open_loop_error(weights, dt) for dt in (0.5, 2.0, 5.0)]
    assert errors[0] < errors[1] < errors[2]


def test_zero_drift_zero_error(thermal, weights):
    assert thermal.open_loop_error(weights, 0.0) == pytest.approx(0.0, abs=1e-12)


def test_drifted_weights_stay_physical(thermal, weights):
    drifted = thermal.drifted_weights(weights, 5.0)
    assert np.all(drifted >= 0.0) and np.all(drifted <= 1.0)


def test_closed_loop_beats_open_loop(thermal, weights):
    delta_t = 3.0
    open_loop = thermal.open_loop_error(weights, delta_t)
    closed = thermal.closed_loop_error(weights, delta_t)
    assert closed < open_loop


def test_compensable_range(thermal):
    # EO range 50 pm at 75 pm/K -> ~0.67 K of fast compensation.
    expected = thermal.tuning.eo_range_m / thermal.drift_m_per_k
    assert thermal.compensable_range_k() == pytest.approx(expected)


def test_compensation_power_scales(thermal):
    small = thermal.compensation_power_w(1.0, num_mrs=4000)
    large = thermal.compensation_power_w(5.0, num_mrs=4000)
    assert large > small
    with pytest.raises(ValueError):
        thermal.compensation_power_w(1.0, num_mrs=0)


def test_low_q_design_is_drift_tolerant(weights):
    # The paper's argument for Q ~ 5000: for the same drift, the broad
    # (low-Q) resonance loses far less weight fidelity than a sharp one.
    from repro.photonics.microring import MicroringDesign, solve_coupling_for_q

    low_loss = MicroringDesign(round_trip_loss_db=0.06)
    low_q = ThermalModel(
        ring=MicroringResonator(
            MicroringDesign(
                round_trip_loss_db=0.06,
                self_coupling=solve_coupling_for_q(5000, design=low_loss),
            )
        ),
        tuning=HybridTuning(),
    )
    high_q = ThermalModel(
        ring=MicroringResonator(
            MicroringDesign(
                round_trip_loss_db=0.06,
                self_coupling=solve_coupling_for_q(20000, design=low_loss),
            )
        ),
        tuning=HybridTuning(),
    )
    drift_k = 0.3
    low_weights = np.clip(weights, low_q.ring.min_transmission + 1e-6, 1.0)
    high_weights = np.clip(weights, high_q.ring.min_transmission + 1e-6, 1.0)
    assert low_q.open_loop_error(low_weights, drift_k) < high_q.open_loop_error(
        high_weights, drift_k
    )
    # And the closed loop holds the residual down regardless.
    assert low_q.closed_loop_error(low_weights, 1.0) < 0.02
