"""Tests for repro.photonics.microring — the paper's MR device targets."""

import numpy as np
import pytest

from repro.photonics.microring import (
    MicroringDesign,
    MicroringResonator,
    solve_coupling_for_q,
)


@pytest.fixture
def ring():
    return MicroringResonator()


def test_paper_design_targets(ring):
    # Section III: r = 5 um, 760 nm waveguide, Q ~ 5000.
    assert ring.design.radius_m == pytest.approx(5e-6)
    assert ring.design.waveguide_width_m == pytest.approx(760e-9)
    assert ring.quality_factor == pytest.approx(5000, rel=0.02)


def test_fsr_formula(ring):
    expected = (1550e-9) ** 2 / (ring.design.n_g * ring.design.circumference_m)
    assert ring.fsr_m == pytest.approx(expected)
    # ~18 nm for the 5 um ring.
    assert 15e-9 < ring.fsr_m < 22e-9


def test_fwhm_q_consistency(ring):
    assert ring.quality_factor == pytest.approx(
        ring.design.resonance_wavelength_m / ring.fwhm_m
    )


def test_on_resonance_extinction(ring):
    on_res = float(ring.through_transmission(ring.design.resonance_wavelength_m))
    assert on_res == pytest.approx(ring.min_transmission, abs=1e-6)
    assert on_res < 0.05  # deep notch
    far = float(ring.through_transmission(ring.design.resonance_wavelength_m + 5e-9))
    assert far > 0.9


def test_transmission_bounded(ring):
    wavelengths = np.linspace(1545e-9, 1555e-9, 2001)
    t = ring.through_transmission(wavelengths)
    assert np.all(t >= 0.0) and np.all(t <= 1.0)


def test_half_depth_at_half_fwhm(ring):
    # Lorentzian: at detuning FWHM/2 the dip is half depth.
    t_half = float(ring.lorentzian_transmission(ring.fwhm_m / 2.0))
    depth = 1.0 - ring.min_transmission
    assert t_half == pytest.approx(1.0 - depth / 2.0, rel=1e-9)


def test_detuning_inversion_roundtrip(ring):
    for target in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99):
        if target < ring.min_transmission:
            continue
        shift = ring.detuning_for_transmission(target)
        recovered = float(ring.lorentzian_transmission(shift))
        assert recovered == pytest.approx(target, abs=1e-9)


def test_detuning_rejects_unreachable(ring):
    with pytest.raises(ValueError):
        ring.detuning_for_transmission(ring.min_transmission / 2.0)
    with pytest.raises(ValueError):
        ring.detuning_for_transmission(1.5)


def test_set_weight_moves_resonance(ring):
    shift = ring.set_weight(0.5)
    assert shift > 0.0
    assert ring.carrier_transmission() == pytest.approx(0.5, abs=1e-9)


def test_solve_coupling_for_q_matches():
    r = solve_coupling_for_q(5000)
    design = MicroringDesign(self_coupling=r)
    assert MicroringResonator(design).quality_factor == pytest.approx(5000, rel=1e-3)


def test_solve_coupling_unreachable_q():
    with pytest.raises(ValueError):
        solve_coupling_for_q(1e9)


def test_higher_coupling_higher_q():
    low = MicroringResonator(MicroringDesign(self_coupling=0.90))
    high = MicroringResonator(MicroringDesign(self_coupling=0.98))
    assert high.quality_factor > low.quality_factor


def test_design_validation():
    with pytest.raises(ValueError):
        MicroringDesign(radius_m=-1.0)
    with pytest.raises(ValueError):
        MicroringDesign(self_coupling=1.5)
