"""Tests for repro.photonics.noise — composable noise injectors."""

import numpy as np
import pytest

from repro.photonics.noise import (
    CompositeNoise,
    CrosstalkNoise,
    FixedPatternNoise,
    GaussianReadNoise,
)


def test_gaussian_noise_statistics():
    model = GaussianReadNoise(sigma=0.1, seed=0)
    values = np.zeros(20000)
    noisy = model.apply(values)
    assert noisy.std() == pytest.approx(0.1, rel=0.05)
    assert noisy.mean() == pytest.approx(0.0, abs=0.01)


def test_gaussian_zero_sigma_identity():
    model = GaussianReadNoise(sigma=0.0)
    values = np.arange(5.0)
    np.testing.assert_array_equal(model.apply(values), values)


def test_gaussian_does_not_mutate_input():
    model = GaussianReadNoise(sigma=0.5, seed=1)
    values = np.ones(10)
    model.apply(values)
    np.testing.assert_array_equal(values, np.ones(10))


def test_fixed_pattern_frozen_per_instance():
    model = FixedPatternNoise(gain_sigma=0.05, num_devices=8, seed=2)
    values = np.ones(8)
    a = model.apply(values)
    b = model.apply(values)
    np.testing.assert_array_equal(a, b)  # static, not re-sampled


def test_fixed_pattern_same_seed_same_device():
    a = FixedPatternNoise(0.05, 8, seed=3).gains
    b = FixedPatternNoise(0.05, 8, seed=3).gains
    np.testing.assert_array_equal(a, b)


def test_fixed_pattern_tiles_over_multiples():
    model = FixedPatternNoise(gain_sigma=0.1, num_devices=4, seed=4)
    out = model.apply(np.ones(8))
    np.testing.assert_allclose(out[:4], out[4:])


def test_fixed_pattern_shape_mismatch():
    model = FixedPatternNoise(0.1, 4, seed=0)
    with pytest.raises(ValueError):
        model.apply(np.ones(6))


def test_crosstalk_effective_weights_close():
    model = CrosstalkNoise()
    weights = np.linspace(0.2, 0.9, model.grid.num_channels)
    effective = model.effective_weights(weights)
    assert np.all(np.abs(effective - weights) / weights < 0.06)


def test_crosstalk_mean_error_positive():
    model = CrosstalkNoise()
    weights = np.full(model.grid.num_channels, 0.8)
    assert 0.0 < model.mean_relative_error(weights) < 0.1


def test_composite_applies_in_order():
    fixed = FixedPatternNoise(gain_sigma=0.0, num_devices=2, seed=0)
    gaussian = GaussianReadNoise(sigma=0.0)
    composite = CompositeNoise([fixed, gaussian])
    values = np.array([1.0, 2.0])
    np.testing.assert_allclose(composite.apply(values), values)


def test_composite_empty_is_identity():
    values = np.array([3.0, 4.0])
    np.testing.assert_array_equal(CompositeNoise().apply(values), values)
