"""Tests for repro.cli — the artifact-regeneration command line."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_summary_command(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "efficiency_tops_per_watt" in out
    assert "macs_per_cycle" in out


def test_fig4_command(capsys):
    assert main(["fig4"]) == 0
    assert '"1111"' in capsys.readouterr().out


def test_fig8_command(capsys):
    assert main(["fig8"]) == 0
    assert "Out2" in capsys.readouterr().out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "OISA (measured)" in out


def test_compare_command(capsys):
    assert main(["compare"]) == 0
    out = capsys.readouterr().out
    assert "Crosslight" in out and "ASIC" in out


def test_claims_command_exit_code(capsys):
    # All claims hold on the default configuration -> exit 0.
    assert main(["claims"]) == 0
    assert "MACs/cycle K=3" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["sweep", "--platforms"]) == 0
    out = capsys.readouterr().out
    assert "Cross-platform sweep" in out
    assert "registered platforms:" in out
    for key in ("oisa", "crosslight", "appcip", "asic"):
        assert key in out


def test_serve_command(capsys):
    assert main(
        ["serve", "--frames", "16", "--nodes", "2", "--batch", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "FrameServer" in out
    assert "cache hits / misses" in out
    assert "frames on node 1" in out
