"""Tests for repro.cli — the artifact-regeneration command line."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_summary_command(capsys):
    assert main(["summary"]) == 0
    out = capsys.readouterr().out
    assert "efficiency_tops_per_watt" in out
    assert "macs_per_cycle" in out


def test_fig4_command(capsys):
    assert main(["fig4"]) == 0
    assert '"1111"' in capsys.readouterr().out


def test_fig8_command(capsys):
    assert main(["fig8"]) == 0
    assert "Out2" in capsys.readouterr().out


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "OISA (measured)" in out


def test_compare_command(capsys):
    assert main(["compare"]) == 0
    out = capsys.readouterr().out
    assert "Crosslight" in out and "ASIC" in out


def test_claims_command_exit_code(capsys):
    # All claims hold on the default configuration -> exit 0.
    assert main(["claims"]) == 0
    assert "MACs/cycle K=3" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["sweep", "--platforms"]) == 0
    out = capsys.readouterr().out
    assert "Cross-platform sweep" in out
    assert "registered platforms:" in out
    for key in ("oisa", "crosslight", "appcip", "asic"):
        assert key in out


def test_serve_command(capsys):
    assert main(
        ["serve", "--frames", "16", "--nodes", "2", "--batch", "8"]
    ) == 0
    out = capsys.readouterr().out
    assert "FrameServer" in out
    assert "cache hits / misses" in out
    assert "frames on node 1" in out
    # The default scenario keeps the historical two-LeNet demo.
    assert "model-a, model-b" in out
    assert "SLO outcomes" not in out  # best-effort path stays bare


def test_serve_scenario_and_policy_flags(capsys):
    assert main(
        [
            "serve",
            "--scenario",
            "poisson",
            "--policy",
            "edf",
            "--frames",
            "16",
            "--nodes",
            "1",
            "--batch",
            "8",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "poisson" in out
    assert "lenet-4b, mlp-2b" in out
    assert "SLO outcomes — policy 'edf'" in out


def test_serve_models_flag_overrides_scenario(capsys):
    assert main(
        [
            "serve",
            "--models",
            "lenet:2,mlp:4",
            "--frames",
            "12",
            "--nodes",
            "1",
            "--batch",
            "8",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "lenet-2b, mlp-4b" in out


@pytest.mark.parametrize(
    "scenario", ["poisson-burst", "diurnal", "mixed-tenants", "chaos", "zoo"]
)
def test_serve_exercises_every_workload_generator(scenario, capsys):
    """`repro serve --scenario` runs each registered generator end-to-end."""
    assert main(
        [
            "serve",
            "--scenario",
            scenario,
            "--frames",
            "12",
            "--nodes",
            "1",
            "--batch",
            "8",
            "--fps",
            "600",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert scenario in out
    assert "frames delivered" in out


def test_serve_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        main(["serve", "--scenario", "nope", "--frames", "4"])


def test_sweep_capacity_command(capsys):
    assert main(["sweep", "--capacity", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Capacity planning" in out
    assert "sustainable FPS" in out


_CHAOS_SERVE = [
    "serve",
    "--scenario",
    "chaos",
    "--frames",
    "120",
    "--fps",
    "2400",
    "--nodes",
    "2",
    "--batch",
    "8",
    "--policy",
    "slo",
    "--chaos-plan",
    "node-loss",
]


def test_serve_chaos_failover_report(capsys):
    assert main(
        _CHAOS_SERVE + ["--retry-policy", "deadline", "--spares", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "chaos events fired" in out
    assert "retry policy" in out and "deadline" in out
    assert "spares activated / configured" in out
    assert "chaos-node-loss" in out


def test_serve_check_slo_exit_codes(capsys):
    # With failover the interactive class holds its deadline target...
    assert main(
        _CHAOS_SERVE
        + ["--retry-policy", "deadline", "--spares", "1", "--check-slo"]
    ) == 0
    assert "all classes meet the target" in capsys.readouterr().out
    # ...without it the node loss burns deadlines and the gate trips.
    assert main(_CHAOS_SERVE + ["--check-slo"]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_serve_brownout_report(capsys):
    assert main(
        [
            "serve",
            "--scenario",
            "chaos",
            "--frames",
            "160",
            "--fps",
            "2400",
            "--nodes",
            "2",
            "--batch",
            "8",
            "--policy",
            "slo",
            "--chaos-plan",
            "region-outage",
            "--brownout",
            "standard",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "brownout peak tier" in out


def test_sweep_resilience_command(capsys):
    assert main(["sweep", "--resilience", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Serving resilience" in out
    assert "no-failover" in out and "retry+spares" in out


# --------------------------------------------------------------------------
# Program store: serve --program-store and the cache subcommand
# --------------------------------------------------------------------------
def test_serve_program_store_cold_then_warm(tmp_path, capsys):
    store = str(tmp_path / "store")
    serve = ["serve", "--frames", "16", "--nodes", "2", "--program-store", store]
    assert main(serve) == 0
    cold = capsys.readouterr().out
    assert "program store (loads / writes / entries)" in cold

    import re

    def store_row(out):
        match = re.search(
            r"program store \(loads / writes / entries\)\s*\|\s*"
            r"(\d+) / (\d+) / (\d+)",
            out,
        )
        assert match, out
        return tuple(int(g) for g in match.groups())

    loads, writes, entries = store_row(cold)
    assert loads == 0 and writes > 0 and entries == writes

    assert main(serve) == 0
    warm_loads, warm_writes, warm_entries = store_row(capsys.readouterr().out)
    assert warm_writes == 0  # second run programs nothing
    assert warm_loads > 0
    assert warm_entries == entries


def test_serve_without_store_prints_no_store_row(capsys):
    assert main(["serve", "--frames", "16"]) == 0
    assert "program store" not in capsys.readouterr().out


def test_cache_stats_without_directory(tmp_path, capsys):
    missing = str(tmp_path / "nowhere")
    assert main(["cache", "stats", "--program-store", missing]) == 0
    assert "no store directory" in capsys.readouterr().out
    import os

    assert not os.path.exists(missing)  # stats never creates the dir


def test_cache_stats_verify_purge_cycle(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(
        ["serve", "--frames", "16", "--nodes", "2", "--program-store", store]
    ) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--program-store", store]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "schema version" in out

    assert main(["cache", "verify", "--program-store", store]) == 0
    out = capsys.readouterr().out
    assert "corrupt" in out

    assert main(["cache", "purge", "--program-store", store]) == 0
    assert "purged" in capsys.readouterr().out
    assert main(["cache", "stats", "--program-store", store]) == 0
    # The directory survives a purge; its entries do not.
    assert "0" in capsys.readouterr().out


def test_cache_verify_flags_corruption(tmp_path, capsys):
    import glob
    import os

    store = str(tmp_path / "store")
    assert main(
        ["serve", "--frames", "16", "--nodes", "2", "--program-store", store]
    ) == 0
    capsys.readouterr()
    victim = sorted(glob.glob(os.path.join(store, "*.npz")))[0]
    with open(victim, "wb") as handle:
        handle.write(b"garbage")
    assert main(["cache", "verify", "--program-store", store]) == 1
    assert "corrupt" in capsys.readouterr().out
