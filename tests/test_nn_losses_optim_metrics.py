"""Tests for repro.nn.losses / optim / metrics."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepLR


# --------------------------------------------------------------------------
# Losses
# --------------------------------------------------------------------------
def test_cross_entropy_uniform_logits():
    loss = SoftmaxCrossEntropy()
    logits = np.zeros((4, 10))
    labels = np.arange(4)
    assert loss.forward(logits, labels) == pytest.approx(np.log(10))


def test_cross_entropy_gradient_finite_difference():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(3, 5))
    labels = np.array([0, 2, 4])
    loss = SoftmaxCrossEntropy()
    base = loss.forward(logits, labels)
    grad = loss.backward()
    eps = 1e-6
    for index in ((0, 0), (1, 2), (2, 3)):
        logits[index] += eps
        plus = loss.forward(logits, labels)
        logits[index] -= eps
        numeric = (plus - base) / eps
        assert grad[index] == pytest.approx(numeric, abs=1e-5)
    # re-forward to restore internal cache consistency
    loss.forward(logits, labels)


def test_cross_entropy_label_smoothing_reduces_confidence_penalty():
    logits = np.array([[10.0, 0.0]])
    labels = np.array([0])
    plain = SoftmaxCrossEntropy().forward(logits, labels)
    smooth = SoftmaxCrossEntropy(label_smoothing=0.2).forward(logits, labels)
    assert smooth > plain  # smoothing penalises over-confidence


def test_cross_entropy_validation():
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ValueError):
        loss.forward(np.zeros((2, 3)), np.array([3, 0]))  # label out of range
    with pytest.raises(ValueError):
        loss.forward(np.zeros(3), np.array([0]))
    with pytest.raises(RuntimeError):
        SoftmaxCrossEntropy().backward()


# --------------------------------------------------------------------------
# Optimizers
# --------------------------------------------------------------------------
def _quadratic_param():
    return Parameter(np.array([5.0, -3.0]))


def test_sgd_converges_on_quadratic():
    p = _quadratic_param()
    opt = SGD([p], momentum=0.9)
    for _ in range(200):
        opt.zero_grad()
        p.grad += 2 * p.data  # d/dx x^2
        opt.step(0.05)
    np.testing.assert_allclose(p.data, 0.0, atol=1e-4)


def test_adam_converges_on_quadratic():
    p = _quadratic_param()
    opt = Adam([p])
    for _ in range(800):
        opt.zero_grad()
        p.grad += 2 * p.data
        opt.step(0.05)
    np.testing.assert_allclose(p.data, 0.0, atol=1e-3)


def test_weight_decay_shrinks_weights():
    p = Parameter(np.array([1.0]))
    opt = SGD([p], momentum=0.0, weight_decay=0.1)
    opt.step(0.1)  # no loss gradient, only decay
    assert p.data[0] < 1.0


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([0.0]))
    opt = SGD([p], momentum=0.9)
    p.grad[:] = 1.0
    opt.step(0.1)
    first = p.data.copy()
    p.grad[:] = 1.0
    opt.step(0.1)
    second_delta = p.data - first
    assert abs(second_delta[0]) > 0.1  # momentum adds to the raw step


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD([], momentum=0.9)
    with pytest.raises(ValueError):
        SGD([_quadratic_param()], momentum=1.5)


# --------------------------------------------------------------------------
# Schedules
# --------------------------------------------------------------------------
def test_constant_lr():
    assert ConstantLR(0.1).lr_at(5, 100) == 0.1


def test_step_lr():
    schedule = StepLR(1.0, step_size=10, gamma=0.1)
    assert schedule.lr_at(0, 100) == 1.0
    assert schedule.lr_at(10, 100) == pytest.approx(0.1)
    assert schedule.lr_at(25, 100) == pytest.approx(0.01)


def test_cosine_lr_endpoints():
    schedule = CosineLR(1.0, 0.1)
    assert schedule.lr_at(0, 100) == pytest.approx(1.0)
    assert schedule.lr_at(99, 100) == pytest.approx(0.1)
    mid = schedule.lr_at(49, 100)
    assert 0.1 < mid < 1.0


def test_cosine_validation():
    with pytest.raises(ValueError):
        CosineLR(0.1, 0.5)


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------
def test_accuracy():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    labels = np.array([0, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(2 / 3)


def test_top_k_accuracy():
    logits = np.array([[3.0, 2.0, 1.0, 0.0]])
    assert top_k_accuracy(logits, np.array([1]), k=2) == 1.0
    assert top_k_accuracy(logits, np.array([3]), k=2) == 0.0
    with pytest.raises(ValueError):
        top_k_accuracy(logits, np.array([0]), k=9)


def test_confusion_matrix():
    logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    labels = np.array([0, 1, 1])
    matrix = confusion_matrix(logits, labels)
    np.testing.assert_array_equal(matrix, [[1, 0], [1, 1]])
