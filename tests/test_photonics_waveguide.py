"""Tests for repro.photonics.waveguide — arm loss budget."""

import pytest

from repro.photonics.waveguide import ArmLossBudget, Waveguide


def test_propagation_loss_linear_in_length():
    wg = Waveguide(propagation_loss_db_per_cm=2.0)
    assert wg.propagation_loss_db(0.01) == pytest.approx(2.0)  # 1 cm
    assert wg.propagation_loss_db(0.02) == pytest.approx(4.0)


def test_transmission_below_one():
    wg = Waveguide()
    t = wg.transmission(1e-3, num_bends=4)
    assert 0.0 < t < 1.0


def test_zero_length_zero_bends_lossless():
    wg = Waveguide(bend_loss_db=0.0)
    assert wg.transmission(0.0) == pytest.approx(1.0)


def test_negative_bends_rejected():
    with pytest.raises(ValueError):
        Waveguide().transmission(1e-3, num_bends=-1)


def test_arm_loss_grows_with_rings():
    budget = ArmLossBudget()
    assert budget.total_loss_db(10) > budget.total_loss_db(0)
    delta = budget.total_loss_db(10) - budget.total_loss_db(0)
    assert delta == pytest.approx(10 * budget.per_ring_insertion_db)


def test_arm_transmission_inverse_of_loss():
    budget = ArmLossBudget()
    loss_db = budget.total_loss_db(10)
    assert budget.transmission(10) == pytest.approx(10 ** (-loss_db / 10.0))


def test_required_laser_power():
    budget = ArmLossBudget()
    detector = 10e-6
    laser = budget.required_laser_power_w(detector, 10)
    assert laser > detector
    assert laser * budget.transmission(10) == pytest.approx(detector)


def test_realistic_arm_budget_under_5db():
    # A 10-MR arm should lose only a few dB — otherwise the BPD SNR story
    # of the paper would not close.
    assert ArmLossBudget().total_loss_db(10) < 5.0
