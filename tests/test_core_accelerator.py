"""Tests for repro.core.accelerator — the OISA facade."""

import numpy as np
import pytest

from repro.core.accelerator import OISAAccelerator
from repro.core.config import OISAConfig


@pytest.fixture
def oisa():
    return OISAAccelerator(seed=0)


@pytest.fixture
def weights():
    return np.random.default_rng(0).normal(size=(16, 3, 3, 3)) * 0.1


@pytest.fixture
def frame():
    return np.random.default_rng(1).uniform(0, 1, (3, 128, 128))


def test_program_then_process(oisa, weights, frame):
    oisa.program_conv(weights, padding=1)
    result = oisa.process_frame(frame)
    assert result.features.shape == (16, 128, 128)
    assert result.symbols.shape == (3, 128, 128)
    assert set(np.unique(result.symbols)) <= {0, 1, 2}


def test_process_requires_programming(oisa, frame):
    with pytest.raises(RuntimeError):
        oisa.process_frame(frame)


def test_first_frame_pays_mapping(oisa, weights, frame):
    oisa.program_conv(weights, padding=1)
    first = oisa.process_frame(frame)
    second = oisa.process_frame(frame)
    assert first.timing.mapping_s > 0.0
    assert second.timing.mapping_s == 0.0
    assert first.energy.total > second.energy.total


def test_batch_frames(oisa, weights):
    oisa.program_conv(weights, padding=1)
    batch = np.random.default_rng(2).uniform(0, 1, (4, 3, 128, 128))
    result = oisa.process_frame(batch)
    assert result.features.shape == (4, 16, 128, 128)


def test_channel_mismatch_rejected(oisa, weights):
    oisa.program_conv(weights, padding=1)
    with pytest.raises(ValueError):
        oisa.process_frame(np.zeros((1, 128, 128)))


def test_weight_shape_validated(oisa):
    with pytest.raises(ValueError):
        oisa.program_conv(np.zeros((4, 3, 3)))
    with pytest.raises(ValueError):
        oisa.program_conv(np.zeros((4, 3, 3, 5)))


def test_performance_summary_keys(oisa, weights):
    oisa.program_conv(weights, padding=1)
    summary = oisa.performance_summary()
    assert summary["macs_per_cycle"] == 3600
    assert summary["efficiency_tops_per_watt"] == pytest.approx(6.68, rel=0.03)
    assert summary["frame_rate_fps"] == 1000
    assert summary["area_mm2"] == pytest.approx(1.92, rel=0.03)


def test_sustained_frame_rate(oisa, weights, frame):
    oisa.program_conv(weights, padding=1)
    oisa.process_frame(frame)
    steady = oisa.process_frame(frame)
    assert steady.timing.pipelined_fps >= 999.0
    assert steady.average_power_w < 3e-3


def test_same_seed_same_chip(weights, frame):
    a = OISAAccelerator(seed=5)
    b = OISAAccelerator(seed=5)
    a.program_conv(weights, padding=1)
    b.program_conv(weights, padding=1)
    np.testing.assert_array_equal(
        a.opc.programmed.realized, b.opc.programmed.realized
    )


def test_noise_disabled_mode(weights, frame):
    ideal = OISAAccelerator(seed=0, enable_noise=False)
    ideal.program_conv(weights, padding=1)
    a = ideal.process_frame(frame).features
    ideal2 = OISAAccelerator(seed=0, enable_noise=False)
    ideal2.program_conv(weights, padding=1)
    b = ideal2.process_frame(frame).features
    np.testing.assert_array_equal(a, b)


def test_custom_config_bit_width(weights):
    config = OISAConfig().with_weight_bits(2)
    oisa = OISAAccelerator(config, seed=0)
    programmed = oisa.program_conv(weights, padding=1)
    # Realized weights snap to the 2-bit grid (7 signed levels).
    codes = np.round(programmed.ideal / oisa.opc.programmed.scale)
    assert np.abs(codes).max() <= 3
